//! Criterion benchmarks for the anonymization cycle's moving parts:
//! maybe-match group statistics with growing null counts, local
//! suppression steps, and the heuristics ablation (tuple ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadalog::Value;
use vadasa_bench::{paper_cycle_config, run_paper_cycle};
use vadasa_core::cycle::TupleOrder;
use vadasa_core::maybe_match::{group_stats, NullSemantics};
use vadasa_core::prelude::*;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn bench_group_stats_with_nulls(c: &mut Criterion) {
    let mut group = c.benchmark_group("maybe-match/group-stats");
    group.sample_size(10);
    let n = 20_000usize;
    for nulled in [0usize, 100, 1_000] {
        let mut rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::Int((i % 50) as i64),
                    Value::Int((i % 20) as i64),
                    Value::Int((i % 7) as i64),
                ]
            })
            .collect();
        for (j, row) in rows.iter_mut().take(nulled).enumerate() {
            row[j % 3] = Value::Null(j as u64);
        }
        group.bench_with_input(BenchmarkId::from_parameter(nulled), &nulled, |b, _| {
            b.iter(|| group_stats(&rows, None, NullSemantics::MaybeMatch))
        });
    }
    group.finish();
}

fn bench_tuple_ordering_ablation(c: &mut Criterion) {
    let spec = DatasetSpec::new(4_000, 4, Regime::U);
    let (db, dict) = generate(&spec, 5);
    let mut group = c.benchmark_group("cycle/tuple-order");
    group.sample_size(10);
    for (name, order) in [
        ("less-significant-first", TupleOrder::LessSignificantFirst),
        ("most-risky-first", TupleOrder::MostRiskyFirst),
        ("fifo", TupleOrder::Fifo),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let risk = KAnonymity::new(2);
            let mut config = paper_cycle_config();
            config.tuple_order = order;
            b.iter(|| run_paper_cycle(&db, &dict, &risk, config.clone()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_group_stats_with_nulls,
    bench_tuple_ordering_ablation
);
criterion_main!(benches);
