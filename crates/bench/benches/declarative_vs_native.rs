//! Quantifies the engine-vs-native substitution documented in DESIGN.md:
//! the declarative k-anonymity program (Algorithm 2 reification +
//! Algorithm 4) against the native kernel on identical inputs. The
//! declarative path carries the reasoning overhead (reification into
//! set-valued facts, fixpoint machinery); the native path is the scalable
//! kernel the figures run on. Their *results* are equal by the
//! equivalence test suite — this bench shows the cost ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_core::programs::{alg4_kanonymity, run_risk_program};
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn bench_declarative_vs_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("kanonymity/declarative-vs-native");
    group.sample_size(10);
    for n in [200usize, 500, 1_000] {
        let (db, dict) = generate(&DatasetSpec::new(n, 4, Regime::U), 5);
        group.bench_with_input(BenchmarkId::new("declarative", n), &n, |b, _| {
            b.iter(|| run_risk_program(&alg4_kanonymity(2), &db, &dict).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            let view =
                MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
            b.iter(|| KAnonymity::new(2).evaluate(&view).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_declarative_vs_native);
criterion_main!(benches);
