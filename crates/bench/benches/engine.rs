//! Criterion micro-benchmarks for the vadalog reasoning engine: recursion
//! (transitive closure), monotonic aggregation, existential chase and the
//! declarative k-anonymity program at growing input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadalog::{parse_program, Database, Engine, Value};

fn chain_program(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("edge({}, {}).\n", i, i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
    src
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/transitive-closure");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let program = parse_program(&chain_program(n)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = Engine::new().run(&program, Database::new()).unwrap();
                assert_eq!(r.db.rows("path").len(), n * (n + 1) / 2);
            })
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/msum-grouping");
    group.sample_size(10);
    for n in [1_000usize, 5_000, 20_000] {
        let program = parse_program("out(G, R) :- t(G, I, W), R = msum(W, <I>).").unwrap();
        let mut db = Database::new();
        for i in 0..n {
            db.insert(
                "t",
                vec![
                    Value::Int((i % 100) as i64),
                    Value::Int(i as i64),
                    Value::Int((i % 7) as i64),
                ],
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = Engine::new().run(&program, db.clone()).unwrap();
                assert_eq!(r.db.rows("out").len(), 100);
            })
        });
    }
    group.finish();
}

fn bench_existential_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/existential-chase");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let program = parse_program("assigned(E, D) :- emp(E).").unwrap();
        let mut db = Database::new();
        for i in 0..n {
            db.insert("emp", vec![Value::Int(i as i64)]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = Engine::new().run(&program, db.clone()).unwrap();
                assert_eq!(r.stats.nulls_created, n as u64);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_aggregation,
    bench_existential_chase
);
criterion_main!(benches);
