//! Criterion benchmarks for the four native risk measures at growing
//! dataset sizes — the per-evaluation costs behind Figures 7e/7f.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn bench_measures(c: &mut Criterion) {
    for (label, n) in [("5k", 5_000usize), ("20k", 20_000)] {
        let spec = DatasetSpec::new(n, 4, Regime::U);
        let (db, dict) = generate(&spec, 1);
        let view =
            MicrodataView::from_db_with(&db, &dict, NullSemantics::MaybeMatch, None).unwrap();

        let mut group = c.benchmark_group(format!("risk/{label}"));
        group.sample_size(10);
        let measures: Vec<(&str, Box<dyn RiskMeasure>)> = vec![
            ("re-identification", Box::new(ReIdentification)),
            ("k-anonymity", Box::new(KAnonymity::new(2))),
            (
                "individual-risk",
                Box::new(IndividualRisk::new(IrEstimator::PosteriorMean)),
            ),
            (
                "suda",
                Box::new(Suda {
                    msu_threshold: 3,
                    max_msu_size: Some(3),
                }),
            ),
        ];
        for (name, measure) in measures {
            group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
                b.iter(|| measure.evaluate(&view).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
