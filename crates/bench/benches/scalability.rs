//! Criterion version of the Figure 7e/7f sweeps at CI-friendly sizes:
//! full-cycle cost by dataset size (7e) and by quasi-identifier count
//! (7f). The printed binaries `fig7e_scal_size` / `fig7f_scal_attrs`
//! regenerate the paper-scale series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vadasa_bench::{paper_cycle_config, run_paper_cycle};
use vadasa_core::prelude::*;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn bench_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7e/cycle-by-size");
    group.sample_size(10);
    for n in [2_000usize, 4_000, 8_000] {
        let spec = DatasetSpec::new(n, 4, Regime::U);
        let (db, dict) = generate(&spec, 20210323);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let risk = KAnonymity::new(2);
            b.iter(|| run_paper_cycle(&db, &dict, &risk, paper_cycle_config()))
        });
    }
    group.finish();
}

fn bench_by_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7f/cycle-by-width");
    group.sample_size(10);
    for w in [4usize, 6, 9] {
        let spec = DatasetSpec::new(4_000, w, Regime::W);
        let (db, dict) = generate(&spec, 20210323);
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            let risk = Suda {
                msu_threshold: 3,
                max_msu_size: Some(3),
            };
            b.iter(|| run_paper_cycle(&db, &dict, &risk, paper_cycle_config()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_by_size, bench_by_width);
criterion_main!(benches);
