//! Ablation study for the cycle's degrees of freedom (paper §4.4): which
//! violating tuple to anonymize first, which quasi-identifier to act on,
//! and how much work to do per iteration. Run on R25A4U with k-anonymity
//! (k = 2, T = 0.5) and local suppression.
//!
//! The paper argues for "less significant first" tuple routing and a
//! risk-informed "most risky first" attribute choice; this harness
//! quantifies what each heuristic buys over its baselines.

use vadasa_bench::{render_table, run_cycle_with, time_it};
use vadasa_core::anonymize::{AttributeOrder, LocalSuppression};
use vadasa_core::cycle::{CycleConfig, StepGranularity, TupleOrder};
use vadasa_core::prelude::KAnonymity;
use vadasa_datagen::catalog::by_name;

fn main() {
    let (db, dict) = by_name("R25A4U").expect("catalogue dataset");
    let risk = KAnonymity::new(2);

    let tuple_orders = [
        ("less-significant-first", TupleOrder::LessSignificantFirst),
        ("most-risky-first", TupleOrder::MostRiskyFirst),
        ("fifo", TupleOrder::Fifo),
    ];
    let attr_orders = [
        ("most-risky-first", AttributeOrder::MostRiskyFirst),
        ("most-selective-first", AttributeOrder::MostSelectiveFirst),
        ("schema-order", AttributeOrder::SchemaOrder),
    ];

    println!("Ablation — tuple routing × attribute choice (R25A4U, k-anonymity k=2, T=0.5)\n");
    let mut rows = Vec::new();
    for (tname, torder) in tuple_orders {
        for (aname, aorder) in attr_orders {
            let anonymizer = LocalSuppression::new(aorder);
            let config = CycleConfig {
                tuple_order: torder,
                ..CycleConfig::default()
            };
            let (out, secs) = time_it(|| run_cycle_with(&db, &dict, &risk, &anonymizer, config));
            rows.push(vec![
                tname.to_string(),
                aname.to_string(),
                out.nulls_injected.to_string(),
                format!("{:.1}%", out.information_loss * 100.0),
                out.iterations.to_string(),
                format!("{secs:.2}"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "tuple order",
                "attribute order",
                "nulls",
                "info loss",
                "iters",
                "secs"
            ],
            &rows
        )
    );

    println!("\nAblation — iteration granularity (same setup, most-risky-first attributes)\n");
    let mut rows = Vec::new();
    for (gname, granularity) in [
        (
            "all-risky-per-iteration",
            StepGranularity::AllRiskyPerIteration,
        ),
        (
            "one-tuple-per-iteration",
            StepGranularity::OneTuplePerIteration,
        ),
    ] {
        let anonymizer = LocalSuppression::default();
        let config = CycleConfig {
            granularity,
            ..CycleConfig::default()
        };
        let (out, secs) = time_it(|| run_cycle_with(&db, &dict, &risk, &anonymizer, config));
        rows.push(vec![
            gname.to_string(),
            out.nulls_injected.to_string(),
            format!("{:.1}%", out.information_loss * 100.0),
            out.iterations.to_string(),
            format!("{secs:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["granularity", "nulls", "info loss", "iters", "secs"],
            &rows
        )
    );
    println!("(one-tuple-per-iteration is maximally greedy — closest to the paper's");
    println!("per-binding activation — at the price of one risk evaluation per step)");
}
