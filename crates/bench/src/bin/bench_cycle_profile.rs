//! Cycle benchmark: cold-start vs warm-start medians for a multi-iteration
//! anonymization run, plus the telemetry event stream of one profiled
//! warm run, all written to `BENCH_cycle.json`.
//!
//! Usage: `bench_cycle_profile [--quick] [--out PATH] [--baseline PATH] [--obs-gate]`
//!
//! The workload runs the paper's standard cycle (k-anonymity `k = 2`,
//! local suppression, `T = 0.5`) at one-tuple-per-iteration granularity
//! over a `vadasa-datagen` fixture, capped at a fixed iteration budget so
//! both modes do identical anonymization work across ≥ 10 iterations:
//!
//! - **cold** — `warm_start: false`: every iteration rebuilds the
//!   `MicrodataView` and regroups the maybe-match statistics from scratch.
//! - **warm** — `warm_start: true` (the default): the view is patched in
//!   place and the group statistics are repaired incrementally.
//!
//! Warm and cold outcomes are asserted identical (table, report,
//! iteration count, termination) before any number is reported — a
//! benchmark over divergent semantics would be meaningless.
//!
//! The output file holds one JSON object per line: the `cycle.*`
//! telemetry spans of the profiled run (including the `cycle.warm.*`
//! counters), then `cycle.e2e` median lines ready for `jq` and for the
//! CI `cycle-perf-smoke` gate. With `--baseline PATH` the warm median is
//! compared against the committed baseline and the process exits non-zero
//! on a >25% regression.
//!
//! Two journal sections ride along (the `cycle.e2e` numbers themselves
//! stay unjournaled so the baseline gate is undisturbed):
//!
//! - `cycle.journal` — the same workload with the write-ahead journal
//!   off / fsync-every-record / fsync-every-8, quantifying the
//!   crash-safety overhead.
//! - `cycle.recovery` — the journal of a completed run truncated at
//!   mid-run, then resumed: recovery plus the remaining iterations,
//!   verified equivalent to the uninterrupted outcome before timing is
//!   reported.
//!
//! A `cycle.storage` section compares the pluggable storage backends on
//! the same journaled workload: the in-memory engine (`mem`, artifacts
//! never touch disk) against the file-backed engine (`file`, warm group
//! statistics persisted as a CRC-framed `cycle.warmstats.vart` artifact
//! at every snapshot), and then a resume cut just after the final
//! snapshot with the warm artifact present (`resume-warm-disk`, seeding
//! warm state straight from disk) against the same resume with the
//! artifact deleted (`resume-cold`, regrouping from scratch). Both
//! resumes are verified equivalent to the uninterrupted outcome, and the
//! warm-disk leg is required to actually report `disk_restores` — a
//! benchmark of a fallback path mislabeled as the fast path would be
//! meaningless.
//!
//! A third section, `cycle.obs_overhead`, times the same warm workload
//! with telemetry off, with an in-process `Recorder`, with a JSON-lines
//! file sink, and with full trace building (recorder + both exporters).
//! The four modes are interleaved within each repetition so clock drift
//! penalizes none of them, and the reported statistic is the *minimum*
//! over the repetitions (noise only ever adds time). With `--obs-gate`
//! the process exits non-zero if any telemetry mode costs more than 2%
//! over "off" *and* more than 15 ms absolute — observability must stay
//! near-free.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use vadalog::StorageEngine;
use vadasa_bench::{read_baseline_median, time_it};
use vadasa_core::journal::{record, JOURNAL_FILE};
use vadasa_core::obs::trace::TraceBuilder;
use vadasa_core::obs::{JsonLinesWriter, Recorder};
use vadasa_core::prelude::*;
use vadasa_core::report::render_profile;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

/// The regression threshold the CI perf-smoke gate enforces (same as
/// `bench_engine`).
const MAX_REGRESSION: f64 = 1.25;

/// The observability-overhead gate: telemetry may cost at most this
/// fraction over a bare run, unless the absolute difference is still
/// under [`MAX_OBS_OVERHEAD_ABS_S`] (short workloads drown in noise).
const MAX_OBS_OVERHEAD_FRAC: f64 = 0.02;

/// Absolute floor for the observability gate, in seconds.
const MAX_OBS_OVERHEAD_ABS_S: f64 = 0.015;

fn cycle_config(iteration_cap: usize, warm_start: bool) -> CycleConfig {
    CycleConfig {
        threshold: 0.5,
        tuple_order: TupleOrder::LessSignificantFirst,
        granularity: StepGranularity::OneTuplePerIteration,
        max_iterations: iteration_cap,
        warm_start,
        ..CycleConfig::default()
    }
}

/// Require two runs to be observably identical, or die loudly.
fn assert_equivalent(warm: &CycleOutcome, cold: &CycleOutcome) {
    let mut diffs: Vec<String> = Vec::new();
    if warm.iterations != cold.iterations {
        diffs.push(format!(
            "iterations {} vs {}",
            warm.iterations, cold.iterations
        ));
    }
    if warm.nulls_injected != cold.nulls_injected {
        diffs.push(format!(
            "nulls {} vs {}",
            warm.nulls_injected, cold.nulls_injected
        ));
    }
    if warm.final_risky != cold.final_risky {
        diffs.push(format!(
            "final risky {} vs {}",
            warm.final_risky, cold.final_risky
        ));
    }
    if warm.termination != cold.termination {
        diffs.push(format!(
            "termination {:?} vs {:?}",
            warm.termination, cold.termination
        ));
    }
    if warm.final_report.risks != cold.final_report.risks {
        diffs.push("final risk vectors differ".to_string());
    }
    for i in 0..warm.db.len() {
        if warm.db.row(i) != cold.db.row(i) {
            diffs.push(format!("anonymized row {i} differs"));
            break;
        }
    }
    if !diffs.is_empty() {
        eprintln!(
            "WARM/COLD DIVERGENCE — refusing to report timings: {}",
            diffs.join("; ")
        );
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let obs_gate = args.iter().any(|a| a == "--obs-gate");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_cycle.json".to_string());
    let baseline = flag("--baseline");

    // The workload is identical in both modes so the --baseline gate
    // always compares like with like; --quick only trims repetitions.
    let rows = 12_000;
    let runs = if quick { 3 } else { 5 };
    // One suppression per iteration; the cap keeps both modes on an
    // identical ≥10-iteration trajectory with a bounded wall clock.
    let iteration_cap = 40;
    let spec = DatasetSpec::new(rows, 4, Regime::U);
    let (db, dict) = generate(&spec, 20210323);

    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let run_once = |warm_start: bool| -> CycleOutcome {
        AnonymizationCycle::new(&risk, &anonymizer, cycle_config(iteration_cap, warm_start))
            .run(&db, &dict)
            .expect("cycle workload runs")
    };

    // --- correctness first: warm ≡ cold on this workload ---
    let warm_out = run_once(true);
    let cold_out = run_once(false);
    assert_equivalent(&warm_out, &cold_out);
    if warm_out.iterations < 10 {
        eprintln!(
            "workload too shallow: {} iteration(s), need >= 10 — grow the dataset",
            warm_out.iterations
        );
        std::process::exit(1);
    }

    // --- medians over `runs` repetitions per mode ---
    let median_of = |warm_start: bool| -> f64 {
        let mut times: Vec<f64> = (0..runs)
            .map(|_| time_it(|| run_once(warm_start)).1)
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let cold_s = median_of(false);
    let warm_s = median_of(true);
    let speedup = if warm_s == 0.0 {
        f64::INFINITY
    } else {
        cold_s / warm_s
    };

    // --- journal overhead: off vs every-record vs every-8 fsyncs ---
    let tmp_root =
        std::env::temp_dir().join(format!("vadasa-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp_root);
    let mut journal_seq = 0u32;
    let mut journaled_run = |sync: SyncPolicy| -> (CycleOutcome, f64, PathBuf) {
        journal_seq += 1;
        let dir = tmp_root.join(format!("j{journal_seq}"));
        let config = CycleConfig {
            journal: Some(JournalConfig {
                sync,
                snapshot_every: Some(8),
                ..JournalConfig::new(&dir)
            }),
            ..cycle_config(iteration_cap, true)
        };
        let (out, secs) = time_it(|| {
            AnonymizationCycle::new(&risk, &anonymizer, config.clone())
                .run(&db, &dict)
                .expect("journaled run")
        });
        (out, secs, dir)
    };
    let mut journal_medians: Vec<(&str, f64)> = vec![("off", warm_s)];
    let mut recovery_dir: Option<PathBuf> = None;
    for (mode, sync) in [
        ("every-record", SyncPolicy::EveryRecord),
        ("every-8", SyncPolicy::EveryN(8)),
    ] {
        let mut times: Vec<f64> = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (out, secs, dir) = journaled_run(sync);
            // crash safety is an observer, not an intervention
            assert_equivalent(&out, &warm_out);
            times.push(secs);
            if mode == "every-record" && recovery_dir.is_none() {
                recovery_dir = Some(dir);
            } else {
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        times.sort_by(f64::total_cmp);
        journal_medians.push((mode, times[times.len() / 2]));
    }

    // --- recovery: truncate the journal mid-run, resume, verify, time ---
    let full_dir = recovery_dir.expect("an every-record journal was kept");
    let bytes = std::fs::read(full_dir.join(JOURNAL_FILE)).expect("read journal");
    let bounds = record::frame_boundaries(&bytes);
    let cut = bounds
        .iter()
        .copied()
        .rfind(|b| *b <= bytes.len() / 2)
        .or_else(|| bounds.first().copied())
        .expect("journal has frames");
    let mut recovery_times: Vec<f64> = Vec::with_capacity(runs);
    let mut replayed = 0u64;
    for rep in 0..runs {
        let dir = tmp_root.join(format!("recover-{rep}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(JOURNAL_FILE), &bytes[..cut]).expect("write prefix");
        for entry in std::fs::read_dir(&full_dir).expect("read dir").flatten() {
            if entry.path().extension().is_some_and(|x| x == "vsnap") {
                std::fs::copy(entry.path(), dir.join(entry.file_name())).expect("copy snapshot");
            }
        }
        let config = CycleConfig {
            journal: Some(JournalConfig::new(&dir)),
            ..cycle_config(iteration_cap, true)
        };
        let (out, secs) = time_it(|| {
            AnonymizationCycle::new(&risk, &anonymizer, config.clone())
                .resume(&db, &dict)
                .expect("resumed run")
        });
        assert_equivalent(&out, &warm_out);
        replayed = out.profile.journal.replayed_actions;
        recovery_times.push(secs);
        let _ = std::fs::remove_dir_all(&dir);
    }
    recovery_times.sort_by(f64::total_cmp);
    let recovery_s = recovery_times[recovery_times.len() / 2];

    // --- storage backends: mem vs file, then warm-disk vs cold resume ---
    let mut storage_seq = 0u32;
    let mut storage_run = |engine: StorageEngine| -> (CycleOutcome, f64, PathBuf) {
        storage_seq += 1;
        let dir = tmp_root.join(format!("s{storage_seq}"));
        let config = CycleConfig {
            journal: Some(JournalConfig {
                sync: SyncPolicy::EveryN(8),
                snapshot_every: Some(8),
                ..JournalConfig::new(&dir)
            }),
            storage: StorageOptions {
                engine,
                ..StorageOptions::default()
            },
            ..cycle_config(iteration_cap, true)
        };
        let (out, secs) = time_it(|| {
            AnonymizationCycle::new(&risk, &anonymizer, config.clone())
                .run(&db, &dict)
                .expect("storage run")
        });
        (out, secs, dir)
    };
    let mut storage_medians: Vec<(&str, f64)> = Vec::new();
    let mut file_dir: Option<PathBuf> = None;
    for (mode, engine) in [("mem", StorageEngine::Mem), ("file", StorageEngine::File)] {
        let mut times: Vec<f64> = Vec::with_capacity(runs);
        for _ in 0..runs {
            let (out, secs, dir) = storage_run(engine);
            // the storage backend is an observer, not an intervention
            assert_equivalent(&out, &warm_out);
            times.push(secs);
            if mode == "file" && file_dir.is_none() {
                file_dir = Some(dir);
            } else {
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        times.sort_by(f64::total_cmp);
        storage_medians.push((mode, times[times.len() / 2]));
    }
    // Cut the kept file-backed journal just after its final Snapshot
    // record: recovery then lands exactly on the iteration the persisted
    // warm artifact covers, so a file-engine resume can seed its group
    // statistics from disk instead of regrouping cold.
    let file_dir = file_dir.expect("a file-backed journal was kept");
    let file_bytes = std::fs::read(file_dir.join(JOURNAL_FILE)).expect("read file journal");
    let mut cursor = record::MAGIC.len();
    let mut storage_cut = None;
    while cursor < file_bytes.len() {
        let Ok((rec, next)) = record::decode_frame(&file_bytes, cursor) else {
            break;
        };
        if matches!(rec, record::JournalRecord::Snapshot { .. }) {
            storage_cut = Some(next);
        }
        cursor = next;
    }
    let storage_cut = storage_cut.expect("file-backed journal has a snapshot");
    let mut storage_resume: Vec<(&str, f64, u64)> = Vec::new();
    for (mode, keep_artifact) in [("resume-warm-disk", true), ("resume-cold", false)] {
        let mut times: Vec<f64> = Vec::with_capacity(runs);
        let mut restores = 0u64;
        for rep in 0..runs {
            let dir = tmp_root.join(format!("{mode}-{rep}"));
            std::fs::create_dir_all(&dir).expect("mkdir");
            std::fs::write(dir.join(JOURNAL_FILE), &file_bytes[..storage_cut])
                .expect("write prefix");
            for entry in std::fs::read_dir(&file_dir).expect("read dir").flatten() {
                let p = entry.path();
                let snap = p.extension().is_some_and(|x| x == "vsnap");
                let art = p.extension().is_some_and(|x| x == "vart");
                if snap || (art && keep_artifact) {
                    std::fs::copy(&p, dir.join(entry.file_name())).expect("copy artifact");
                }
            }
            let config = CycleConfig {
                journal: Some(JournalConfig::new(&dir)),
                storage: StorageOptions {
                    engine: StorageEngine::File,
                    ..StorageOptions::default()
                },
                ..cycle_config(iteration_cap, true)
            };
            let (out, secs) = time_it(|| {
                AnonymizationCycle::new(&risk, &anonymizer, config.clone())
                    .resume(&db, &dict)
                    .expect("storage resume")
            });
            assert_equivalent(&out, &warm_out);
            restores += out.profile.warm.disk_restores;
            times.push(secs);
            let _ = std::fs::remove_dir_all(&dir);
        }
        times.sort_by(f64::total_cmp);
        storage_resume.push((mode, times[times.len() / 2], restores));
    }
    // The legs must exercise the paths their labels claim.
    let by_mode = |m: &str| storage_resume.iter().find(|(n, ..)| *n == m).unwrap().2;
    if by_mode("resume-warm-disk") == 0 || by_mode("resume-cold") != 0 {
        eprintln!(
            "STORAGE RESUME MISLABELED — warm-disk restored {} time(s), cold {} time(s)",
            by_mode("resume-warm-disk"),
            by_mode("resume-cold")
        );
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&tmp_root);

    // --- observability overhead: off vs recorder vs file vs trace ---
    const OBS_MODES: [&str; 4] = ["off", "recorder", "json-lines", "trace-building"];
    let obs_tmp =
        std::env::temp_dir().join(format!("vadasa-bench-obs-{}.jsonl", std::process::id()));
    let mut obs_times: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::with_capacity(runs));
    let build_cycle =
        || AnonymizationCycle::new(&risk, &anonymizer, cycle_config(iteration_cap, true));
    for _ in 0..runs {
        // interleaved within the repetition so clock drift is shared
        let (out, secs) = time_it(|| run_once(true));
        assert_equivalent(&out, &warm_out);
        obs_times[0].push(secs);

        let rec = Arc::new(Recorder::new());
        let (out, secs) = time_it(|| {
            build_cycle()
                .with_collector(rec.clone())
                .run(&db, &dict)
                .expect("recorder run")
        });
        assert_equivalent(&out, &warm_out);
        obs_times[1].push(secs);

        let sink = Arc::new(JsonLinesWriter::create(&obs_tmp).expect("create obs scratch file"));
        let (out, secs) = time_it(|| {
            let out = build_cycle()
                .with_collector(sink.clone())
                .run(&db, &dict)
                .expect("json-lines run");
            sink.flush().expect("flush obs scratch file");
            out
        });
        assert_equivalent(&out, &warm_out);
        obs_times[2].push(secs);

        let rec = Arc::new(Recorder::new());
        let (out, secs) = time_it(|| {
            let out = build_cycle()
                .with_collector(rec.clone())
                .run(&db, &dict)
                .expect("trace run");
            let tree = TraceBuilder::from_recorder(&rec);
            let _ = tree.chrome_trace_json();
            let _ = tree.collapsed_stacks();
            out
        });
        assert_equivalent(&out, &warm_out);
        obs_times[3].push(secs);
    }
    let _ = std::fs::remove_file(&obs_tmp);
    // Minimum over the repetitions, not the median: scheduler noise only
    // ever *adds* time, so the min isolates the cost of the code itself —
    // which is what an overhead gate needs to compare.
    let obs_mins: Vec<f64> = obs_times
        .iter()
        .map(|t| t.iter().copied().fold(f64::INFINITY, f64::min))
        .collect();
    let obs_off_s = obs_mins[0];

    // --- one profiled warm run feeds the telemetry stream ---
    let sink = match JsonLinesWriter::create(&out_path) {
        Ok(w) => Arc::new(w),
        Err(e) => {
            eprintln!("cannot create output file '{out_path}': {e}");
            std::process::exit(1);
        }
    };
    let profiled = AnonymizationCycle::new(&risk, &anonymizer, cycle_config(iteration_cap, true))
        .with_collector(sink.clone())
        .run(&db, &dict)
        .expect("profiled run evaluates");
    sink.flush().expect("flush telemetry");

    // --- append the e2e median lines the CI gate parses ---
    let append = std::fs::OpenOptions::new().append(true).open(&out_path);
    let mut file = match append {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot append bench lines to '{out_path}': {e}");
            std::process::exit(1);
        }
    };
    for (mode, secs) in [("cold", cold_s), ("warm", warm_s)] {
        writeln!(
            file,
            "{{\"bench\":\"cycle.e2e\",\"rows\":{},\"iterations\":{},\"mode\":\"{}\",\"median_s\":{:.6},\"runs\":{}}}",
            rows, warm_out.iterations, mode, secs, runs
        )
        .expect("write bench line");
    }
    writeln!(
        file,
        "{{\"bench\":\"cycle.e2e\",\"rows\":{},\"speedup\":{:.3}}}",
        rows, speedup
    )
    .expect("write bench line");
    for (sync, secs) in &journal_medians {
        writeln!(
            file,
            "{{\"bench\":\"cycle.journal\",\"rows\":{},\"iterations\":{},\"sync\":\"{}\",\"median_s\":{:.6},\"runs\":{}}}",
            rows, warm_out.iterations, sync, secs, runs
        )
        .expect("write bench line");
    }
    writeln!(
        file,
        "{{\"bench\":\"cycle.recovery\",\"rows\":{},\"replayed_actions\":{},\"median_s\":{:.6},\"runs\":{}}}",
        rows, replayed, recovery_s, runs
    )
    .expect("write bench line");
    for (mode, secs) in &storage_medians {
        writeln!(
            file,
            "{{\"bench\":\"cycle.storage\",\"rows\":{},\"iterations\":{},\"mode\":\"{}\",\"median_s\":{:.6},\"runs\":{}}}",
            rows, warm_out.iterations, mode, secs, runs
        )
        .expect("write bench line");
    }
    for (mode, secs, restores) in &storage_resume {
        writeln!(
            file,
            "{{\"bench\":\"cycle.storage\",\"rows\":{},\"mode\":\"{}\",\"median_s\":{:.6},\"disk_restores\":{},\"runs\":{}}}",
            rows, mode, secs, restores, runs
        )
        .expect("write bench line");
    }
    for (mode, secs) in OBS_MODES.iter().zip(&obs_mins) {
        writeln!(
            file,
            "{{\"bench\":\"cycle.obs_overhead\",\"rows\":{},\"iterations\":{},\"mode\":\"{}\",\"min_s\":{:.6},\"runs\":{}}}",
            rows, warm_out.iterations, mode, secs, runs
        )
        .expect("write bench line");
    }

    // --- report ---
    println!(
        "cycle bench — {} ({} rows, 4 QIs, k-anonymity k=2, T=0.5, one-tuple steps, {} iterations)",
        spec.name, rows, warm_out.iterations
    );
    println!(
        "  cycle.e2e: cold {:.3}s   warm {:.3}s   speedup {:.2}x   ({} run(s) per mode)",
        cold_s, warm_s, speedup, runs
    );
    let w = &profiled.profile.warm;
    println!(
        "  warm profile: {} warm / {} cold evaluation(s), {} fact(s) patched, {} fallback(s) to cold\n",
        w.warm_evals, w.cold_evals, w.patched_facts, w.fallback_to_cold
    );
    for (sync, secs) in &journal_medians {
        let overhead = if warm_s == 0.0 {
            0.0
        } else {
            100.0 * (secs / warm_s - 1.0)
        };
        println!(
            "  cycle.journal: sync={sync:<12} {secs:.3}s   ({overhead:+.1}% vs unjournaled warm)"
        );
    }
    println!(
        "  cycle.recovery: resume from mid-run journal {:.3}s ({} action(s) replayed)",
        recovery_s, replayed
    );
    for (mode, secs) in &storage_medians {
        println!("  cycle.storage: engine={mode:<16} {secs:.3}s");
    }
    for (mode, secs, restores) in &storage_resume {
        println!("  cycle.storage: {mode:<23} {secs:.3}s ({restores} disk restore(s))");
    }
    for (mode, secs) in OBS_MODES.iter().zip(&obs_mins) {
        let overhead = if obs_off_s == 0.0 {
            0.0
        } else {
            100.0 * (secs / obs_off_s - 1.0)
        };
        println!(
            "  cycle.obs_overhead: mode={mode:<15} min {secs:.3}s   ({overhead:+.1}% vs telemetry off)"
        );
    }
    print!("{}", render_profile(&profiled.profile));
    println!("\ntelemetry stream + cycle.e2e medians written to {out_path}");

    if obs_gate {
        for (mode, secs) in OBS_MODES.iter().zip(&obs_mins).skip(1) {
            let over = secs - obs_off_s;
            if over > obs_off_s * MAX_OBS_OVERHEAD_FRAC && over > MAX_OBS_OVERHEAD_ABS_S {
                eprintln!(
                    "OBS OVERHEAD: mode={mode} costs {over:.3}s over a bare run \
                     ({:.1}% > {:.0}% and > {:.0} ms)",
                    100.0 * over / obs_off_s,
                    100.0 * MAX_OBS_OVERHEAD_FRAC,
                    1000.0 * MAX_OBS_OVERHEAD_ABS_S
                );
                std::process::exit(1);
            }
        }
        println!(
            "obs overhead gate passed — every telemetry mode within {:.0}% or {:.0} ms of off",
            100.0 * MAX_OBS_OVERHEAD_FRAC,
            1000.0 * MAX_OBS_OVERHEAD_ABS_S
        );
    }

    if let Some(path) = baseline {
        match read_baseline_median(&path, "cycle.e2e", "warm") {
            Ok(base) => {
                let ratio = warm_s / base;
                println!(
                    "baseline check — warm median {:.3}s vs baseline {:.3}s ({:.2}x)",
                    warm_s, base, ratio
                );
                if ratio > MAX_REGRESSION {
                    eprintln!(
                        "PERF REGRESSION: warm cycle median {:.3}s exceeds baseline {:.3}s by more than {:.0}%",
                        warm_s,
                        base,
                        (MAX_REGRESSION - 1.0) * 100.0
                    );
                    std::process::exit(1);
                }
            }
            Err(msg) => {
                eprintln!("baseline check failed: {msg}");
                std::process::exit(1);
            }
        }
        let file_s = storage_medians
            .iter()
            .find(|(m, _)| *m == "file")
            .map(|(_, s)| *s)
            .unwrap_or(0.0);
        match read_baseline_median(&path, "cycle.storage", "file") {
            Ok(base) => {
                let ratio = file_s / base;
                println!(
                    "baseline check — file-backed median {:.3}s vs baseline {:.3}s ({:.2}x)",
                    file_s, base, ratio
                );
                if ratio > MAX_REGRESSION {
                    eprintln!(
                        "PERF REGRESSION: file-backed cycle median {:.3}s exceeds baseline {:.3}s by more than {:.0}%",
                        file_s,
                        base,
                        (MAX_REGRESSION - 1.0) * 100.0
                    );
                    std::process::exit(1);
                }
            }
            // A baseline that predates the storage series is not a
            // regression; the gate arms once the series is committed.
            Err(msg) if msg.contains("has no entry") => {
                println!("baseline note: {msg}");
            }
            Err(msg) => {
                eprintln!("baseline check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}
