//! Telemetry bench hook: run the paper's standard anonymization cycle on
//! a datagen fixture with a JSON-lines collector attached, write the
//! event stream to `BENCH_cycle.json`, and print the per-iteration
//! convergence table.
//!
//! Usage: `bench_cycle_profile [--quick] [--out PATH]`
//!
//! The output file holds one JSON object per line (`cycle.iteration`
//! spans with the full risk landscape, plus `cycle.risk_eval` and
//! `cycle.run` roll-ups) — ready for `jq` or a notebook.

use std::sync::Arc;
use vadasa_bench::{paper_cycle_config, time_it};
use vadasa_core::obs::JsonLinesWriter;
use vadasa_core::prelude::*;
use vadasa_core::report::render_profile;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_cycle.json".to_string());

    let rows = if quick { 2_000 } else { 12_000 };
    let spec = DatasetSpec::new(rows, 4, Regime::U);
    let (db, dict) = generate(&spec, 20210323);

    let sink = match JsonLinesWriter::create(&out_path) {
        Ok(w) => Arc::new(w),
        Err(e) => {
            eprintln!("cannot create {out_path}: {e}");
            std::process::exit(1);
        }
    };
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, paper_cycle_config())
        .with_collector(sink.clone());

    let (out, total) = time_it(|| cycle.run(&db, &dict).expect("cycle converges"));
    sink.flush().expect("flush telemetry");

    println!(
        "cycle bench — {} ({} rows, 4 QIs, k-anonymity k=2, T=0.5): {total:.2} s wall",
        spec.name, rows
    );
    println!(
        "nulls injected: {}   final risky: {}   information loss: {:.4}\n",
        out.nulls_injected, out.final_risky, out.information_loss
    );
    print!("{}", render_profile(&out.profile));
    println!("\ntelemetry stream written to {out_path}");
}
