//! Million-row cycle benchmark: batched + partitioned + columnar vs the
//! one-tuple hot path, written as `cycle.scale` lines.
//!
//! Usage: `bench_cycle_scale [--rows N] [--runs N] [--risk-threads N]
//! [--top-n N] [--out PATH] [--baseline PATH] [--min-speedup X]
//! [--batched-only]`
//!
//! The workload is the streaming scale regime of `vadasa-datagen`
//! (heavy-tailed classes, 256 risky sample-unique singletons, integer
//! weights so partitioned regrouping is bitwise-deterministic), run under
//! k-anonymity `k = 2`, local suppression in schema order, `T = 0.5`:
//!
//! - **one-tuple** — `BatchStrategy::OneTuple`, `risk_threads: 1`: one
//!   suppression per iteration, one risk evaluation per suppression;
//! - **batched** — `BatchStrategy::TopN(top_n)`, `risk_threads`
//!   partitioned evaluation: each iteration clears up to `top_n`
//!   equivalence classes, so the table converges in a handful of
//!   evaluations.
//!
//! Safety is asserted before any number is reported: both modes must end
//! with zero risky tuples, and the batched run may not suppress less than
//! the one-tuple run. Results append to the `--out` file (default
//! `BENCH_cycle.json`); `--baseline` gates the batched median against a
//! committed baseline with the standard >25% regression threshold, and
//! `--min-speedup` fails the run if one-tuple/batched falls below the
//! given ratio. `--batched-only` times only the batched mode (the CI
//! smoke profile) while still running one-tuple once for the safety
//! cross-check.

use std::io::Write;
use vadasa_bench::{read_baseline_median, time_it};
use vadasa_core::prelude::*;
use vadasa_datagen::scale::{generate_scale, ScaleSpec};

/// The regression threshold the CI scale-smoke gate enforces (same as
/// `bench_engine` and `bench_cycle_profile`).
const MAX_REGRESSION: f64 = 1.25;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let parse_usize = |name: &str, default: usize| -> usize {
        flag(name)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("{name} expects an integer, got '{v}'");
                    std::process::exit(2);
                })
            })
            .unwrap_or(default)
    };
    let rows = parse_usize("--rows", 1_000_000);
    let runs = parse_usize("--runs", 3).max(1);
    let risk_threads = parse_usize("--risk-threads", 4).max(1);
    let top_n = parse_usize("--top-n", 64).max(1);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_cycle.json".to_string());
    let baseline = flag("--baseline");
    let min_speedup: Option<f64> = flag("--min-speedup").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--min-speedup expects a number, got '{v}'");
            std::process::exit(2);
        })
    });
    let batched_only = args.iter().any(|a| a == "--batched-only");

    let spec = ScaleSpec::new(rows);
    let (db, dict) = generate_scale(&spec);
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::new(AttributeOrder::SchemaOrder);
    let config = |batch: BatchStrategy, threads: usize| CycleConfig {
        threshold: 0.5,
        tuple_order: TupleOrder::Fifo,
        batch: Some(batch),
        risk_threads: threads,
        ..CycleConfig::default()
    };
    let run_once = |batch: BatchStrategy, threads: usize| -> CycleOutcome {
        AnonymizationCycle::new(&risk, &anonymizer, config(batch, threads))
            .run(&db, &dict)
            .expect("scale workload runs")
    };

    // --- safety first: both modes converge, batched never less safe ---
    let one = run_once(BatchStrategy::OneTuple, 1);
    let batched = run_once(BatchStrategy::TopN(top_n), risk_threads);
    let mut violations: Vec<String> = Vec::new();
    if one.final_risky != 0 {
        violations.push(format!("one-tuple left {} risky tuple(s)", one.final_risky));
    }
    if batched.final_risky != 0 {
        violations.push(format!(
            "batched left {} risky tuple(s)",
            batched.final_risky
        ));
    }
    if batched.nulls_injected < one.nulls_injected {
        violations.push(format!(
            "batched suppressed less than one-tuple ({} vs {})",
            batched.nulls_injected, one.nulls_injected
        ));
    }
    if batched.iterations > one.iterations {
        violations.push(format!(
            "batched took more iterations than one-tuple ({} vs {})",
            batched.iterations, one.iterations
        ));
    }
    if !violations.is_empty() {
        eprintln!(
            "SAFETY VIOLATION — refusing to report timings: {}",
            violations.join("; ")
        );
        std::process::exit(1);
    }

    // --- medians ---
    let median_of = |batch: BatchStrategy, threads: usize| -> f64 {
        let mut times: Vec<f64> = (0..runs)
            .map(|_| time_it(|| run_once(batch, threads)).1)
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let batched_s = median_of(BatchStrategy::TopN(top_n), risk_threads);
    let one_s = if batched_only {
        None
    } else {
        Some(median_of(BatchStrategy::OneTuple, 1))
    };
    let speedup = one_s.map(|o| {
        if batched_s == 0.0 {
            f64::INFINITY
        } else {
            o / batched_s
        }
    });

    // --- append cycle.scale lines ---
    let append = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path);
    let mut file = match append {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot append bench lines to '{out_path}': {e}");
            std::process::exit(1);
        }
    };
    let k = rows / 1000;
    if let Some(o) = one_s {
        writeln!(
            file,
            "{{\"bench\":\"cycle.scale\",\"rows\":{},\"mode\":\"one-tuple@{}k\",\"median_s\":{:.6},\"runs\":{}}}",
            rows, k, o, runs
        )
        .expect("write bench line");
    }
    writeln!(
        file,
        "{{\"bench\":\"cycle.scale\",\"rows\":{},\"mode\":\"batched@{}k\",\"median_s\":{:.6},\"runs\":{}}}",
        rows, k, batched_s, runs
    )
    .expect("write bench line");
    if let Some(s) = speedup {
        writeln!(
            file,
            "{{\"bench\":\"cycle.scale\",\"rows\":{},\"speedup\":{:.3}}}",
            rows, s
        )
        .expect("write bench line");
    }

    // --- report ---
    println!(
        "cycle.scale — {} rows, {} risky singleton(s), k-anonymity k=2, T=0.5, {} run(s)/mode",
        rows, spec.risky, runs
    );
    println!(
        "  batched (TopN({top_n}), {risk_threads} risk thread(s)): {:.3}s   {} iteration(s), {} suppression(s)",
        batched_s, batched.iterations, batched.nulls_injected
    );
    if let (Some(o), Some(s)) = (one_s, speedup) {
        println!(
            "  one-tuple (1 thread): {:.3}s   {} iteration(s), {} suppression(s)",
            o, one.iterations, one.nulls_injected
        );
        println!("  speedup: {s:.2}x");
    }
    println!("cycle.scale lines appended to {out_path}");

    if let Some(floor) = min_speedup {
        match speedup {
            Some(s) if s < floor => {
                eprintln!("SPEEDUP BELOW FLOOR: {s:.2}x < required {floor:.2}x");
                std::process::exit(1);
            }
            Some(s) => println!("speedup gate passed: {s:.2}x >= {floor:.2}x"),
            None => {
                eprintln!("--min-speedup requires the one-tuple mode; drop --batched-only");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = baseline {
        let mode = format!("batched@{k}k");
        match read_baseline_median(&path, "cycle.scale", &mode) {
            Ok(base) => {
                let ratio = batched_s / base;
                println!(
                    "baseline check — batched median {:.3}s vs baseline {:.3}s ({:.2}x)",
                    batched_s, base, ratio
                );
                if ratio > MAX_REGRESSION {
                    eprintln!(
                        "PERF REGRESSION: batched scale median {:.3}s exceeds baseline {:.3}s by more than {:.0}%",
                        batched_s,
                        base,
                        (MAX_REGRESSION - 1.0) * 100.0
                    );
                    std::process::exit(1);
                }
            }
            Err(msg) => {
                eprintln!("baseline check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}
