//! Engine join-core benchmark: before/after medians for the planned,
//! hash-indexed executor ([`JoinMode::Indexed`], the default) against the
//! reference nested-loop evaluator ([`JoinMode::Reference`]).
//!
//! Usage: `bench_engine [--quick] [--out PATH] [--baseline PATH]`
//!
//! Workloads:
//!
//! - **tc64** — non-linear transitive closure
//!   (`path(X, Z) :- path(X, Y), path(Y, Z)`) over a 64-node cycle:
//!   the full 64×64 closure, dominated by the recursive self-join.
//! - **risk** — the paper's declarative household/individual risk program
//!   (Algorithm 2 tuple reification + Algorithm 5 individual risk) over a
//!   `vadasa-datagen` microdata fixture.
//!
//! Each workload runs both modes `runs` times; the output file gets one
//! JSON object per line (medians in seconds plus the speedup ratio),
//! ready for `jq` and for the CI perf-smoke gate. With `--baseline PATH`
//! the indexed tc64 median is compared against the committed baseline and
//! the process exits non-zero on a >25% regression.

use std::io::Write;
use vadalog::{parse_program, Database, Engine, EngineConfig, JoinMode, Program};
use vadasa_bench::{read_baseline_median, time_it};
use vadasa_core::programs::{microdata_to_facts, ALG2_TUPLE_REIFICATION, ALG5_INDIVIDUAL_RISK};
use vadasa_core::report::render_engine_profile;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

/// The regression threshold the CI perf-smoke gate enforces.
const MAX_REGRESSION: f64 = 1.25;

fn non_linear_tc(nodes: usize) -> String {
    let mut src = String::new();
    for i in 0..nodes {
        src.push_str(&format!("edge({}, {}).\n", i, (i + 1) % nodes));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).\n");
    src
}

fn engine(mode: JoinMode, threads: usize) -> Engine {
    Engine::with_config(EngineConfig {
        join_mode: mode,
        threads,
        ..EngineConfig::default()
    })
}

/// Median wall-clock seconds over `runs` evaluations of `program`.
fn median_secs(
    program: &Program,
    facts: &Database,
    mode: JoinMode,
    threads: usize,
    runs: usize,
    check: impl Fn(&vadalog::ReasoningResult),
) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let (r, secs) = time_it(|| {
                engine(mode, threads)
                    .run(program, facts.clone())
                    .expect("benchmark program evaluates")
            });
            check(&r);
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct WorkloadResult {
    name: &'static str,
    size: usize,
    reference_s: f64,
    indexed_s: f64,
    indexed_mt_s: f64,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        if self.indexed_s == 0.0 {
            f64::INFINITY
        } else {
            self.reference_s / self.indexed_s
        }
    }
}

fn emit(out: &mut impl Write, w: &WorkloadResult, runs: usize) {
    for (mode, secs) in [
        ("reference", w.reference_s),
        ("indexed", w.indexed_s),
        ("indexed-mt4", w.indexed_mt_s),
    ] {
        writeln!(
            out,
            "{{\"bench\":\"engine.{}\",\"size\":{},\"mode\":\"{}\",\"median_s\":{:.6},\"runs\":{}}}",
            w.name, w.size, mode, secs, runs
        )
        .expect("write bench line");
    }
    writeln!(
        out,
        "{{\"bench\":\"engine.{}\",\"size\":{},\"speedup\":{:.3}}}",
        w.name,
        w.size,
        w.speedup()
    )
    .expect("write bench line");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let baseline = flag("--baseline");

    let runs = if quick { 3 } else { 5 };
    let tc_nodes = 64; // the headline workload is identical in both modes
    let risk_rows = if quick { 500 } else { 2_000 };

    // --- workload 1: 64-node non-linear transitive closure ---
    let tc_program = parse_program(&non_linear_tc(tc_nodes)).expect("tc program parses");
    let tc_facts = Database::new();
    let expect_paths = tc_nodes * tc_nodes;
    let tc_check = |r: &vadalog::ReasoningResult| {
        assert_eq!(r.db.rows("path").len(), expect_paths, "tc closure size");
    };
    let tc = WorkloadResult {
        name: "tc",
        size: tc_nodes,
        reference_s: median_secs(
            &tc_program,
            &tc_facts,
            JoinMode::Reference,
            1,
            runs,
            tc_check,
        ),
        indexed_s: median_secs(&tc_program, &tc_facts, JoinMode::Indexed, 1, runs, tc_check),
        indexed_mt_s: median_secs(&tc_program, &tc_facts, JoinMode::Indexed, 4, runs, tc_check),
    };

    // --- workload 2: declarative household risk (Alg. 2 + Alg. 5) ---
    let spec = DatasetSpec::new(risk_rows, 4, Regime::U);
    let (db, dict) = generate(&spec, 20210323);
    let risk_program = parse_program(&format!("{ALG2_TUPLE_REIFICATION}{ALG5_INDIVIDUAL_RISK}"))
        .expect("risk program parses");
    let risk_facts = microdata_to_facts(&db, &dict).expect("microdata converts");
    let risk_check = |r: &vadalog::ReasoningResult| {
        assert_eq!(r.db.rows("riskOutput").len(), risk_rows, "one risk per row");
    };
    let risk = WorkloadResult {
        name: "risk",
        size: risk_rows,
        reference_s: median_secs(
            &risk_program,
            &risk_facts,
            JoinMode::Reference,
            1,
            runs,
            risk_check,
        ),
        indexed_s: median_secs(
            &risk_program,
            &risk_facts,
            JoinMode::Indexed,
            1,
            runs,
            risk_check,
        ),
        indexed_mt_s: median_secs(
            &risk_program,
            &risk_facts,
            JoinMode::Indexed,
            4,
            runs,
            risk_check,
        ),
    };

    // --- report ---
    let mut file = match std::fs::File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create output file '{out_path}': {e}");
            std::process::exit(1);
        }
    };
    emit(&mut file, &tc, runs);
    emit(&mut file, &risk, runs);

    println!("engine bench — {runs} run(s) per mode, medians in seconds\n");
    for w in [&tc, &risk] {
        println!(
            "  engine.{:<5} (size {:>5}): reference {:.3}s   indexed {:.3}s   indexed-mt4 {:.3}s   speedup {:.2}x",
            w.name, w.size, w.reference_s, w.indexed_s, w.indexed_mt_s, w.speedup()
        );
    }

    // show *why* via the engine profile of one indexed tc run
    let profiled = engine(JoinMode::Indexed, 1)
        .run(&tc_program, Database::new())
        .expect("profiled run evaluates");
    println!("\n{}", render_engine_profile(&profiled.profile));
    println!("results written to {out_path}");

    if let Some(path) = baseline {
        match read_baseline_median(&path, "engine.tc", "indexed") {
            Ok(base) => {
                let ratio = tc.indexed_s / base;
                println!(
                    "baseline check — tc indexed median {:.3}s vs baseline {:.3}s ({:.2}x)",
                    tc.indexed_s, base, ratio
                );
                if ratio > MAX_REGRESSION {
                    eprintln!(
                        "PERF REGRESSION: tc indexed median {:.3}s exceeds baseline {:.3}s by more than {:.0}%",
                        tc.indexed_s,
                        base,
                        (MAX_REGRESSION - 1.0) * 100.0
                    );
                    std::process::exit(1);
                }
            }
            Err(msg) => {
                eprintln!("baseline check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}
