//! Engine join-core benchmark: before/after medians for the planned,
//! hash-indexed executor ([`JoinMode::Indexed`], the default) against the
//! reference nested-loop evaluator ([`JoinMode::Reference`]), plus the
//! goal-directed (magic-sets) series against the full fixpoint.
//!
//! Usage: `bench_engine [--quick] [--out PATH] [--baseline PATH]`
//!
//! Workloads:
//!
//! - **tc64** — non-linear transitive closure
//!   (`path(X, Z) :- path(X, Y), path(Y, Z)`) over a 64-node cycle:
//!   the full 64×64 closure, dominated by the recursive self-join.
//! - **tc_goal** — the same non-linear closure over a graph of 8
//!   disjoint 32-node cycles, queried with the goal `path(0, ?)`. The
//!   full fixpoint derives all 8 components; the magic rewrite derives
//!   only the goal's component, so this workload measures the pruning a
//!   bound query binding buys ("magic" mode vs full "indexed" mode).
//! - **risk** — the paper's declarative household/individual risk program
//!   (Algorithm 2 tuple reification + Algorithm 5 individual risk) over a
//!   `vadasa-datagen` microdata fixture. The "magic" mode answers a
//!   single-respondent goal (the respondent's whole quasi-identifier
//!   group, `closed_groups` attested) instead of scoring all rows — the
//!   interactive "what is *this* respondent's risk?" query shape.
//!
//! Each workload runs its modes `runs` times; the output file gets one
//! JSON object per line (medians in seconds plus speedup ratios), ready
//! for `jq` and for the CI perf-smoke gates. With `--baseline PATH` the
//! indexed tc64 median and the magic tc_goal median are compared against
//! the committed baseline and the process exits non-zero on a >25%
//! regression in either.

use std::io::Write;
use vadalog::{
    parse_program, Atom, Database, Engine, EngineConfig, GoalRun, JoinMode, MagicOptions, Program,
    Term,
};
use vadasa_bench::{read_baseline_median, time_it};
use vadasa_core::programs::{microdata_to_facts, ALG2_TUPLE_REIFICATION, ALG5_INDIVIDUAL_RISK};
use vadasa_core::report::render_engine_profile;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

/// The regression threshold the CI perf-smoke gates enforce.
const MAX_REGRESSION: f64 = 1.25;

fn non_linear_tc(nodes: usize) -> String {
    let mut src = String::new();
    for i in 0..nodes {
        src.push_str(&format!("edge({}, {}).\n", i, (i + 1) % nodes));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).\n");
    src
}

/// `components` disjoint `cycle_len`-node cycles: node `c*cycle_len + i`
/// points at its cyclic successor within component `c`. A goal bound to
/// one node makes every other component irrelevant.
fn disjoint_cycles_tc(components: usize, cycle_len: usize) -> String {
    let mut src = String::new();
    for c in 0..components {
        let base = c * cycle_len;
        for i in 0..cycle_len {
            src.push_str(&format!(
                "edge({}, {}).\n",
                base + i,
                base + (i + 1) % cycle_len
            ));
        }
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), path(Y, Z).\n");
    src
}

fn engine(mode: JoinMode, threads: usize) -> Engine {
    Engine::with_config(EngineConfig {
        join_mode: mode,
        threads,
        ..EngineConfig::default()
    })
}

/// Median wall-clock seconds over `runs` evaluations of `program`.
fn median_secs(
    program: &Program,
    facts: &Database,
    mode: JoinMode,
    threads: usize,
    runs: usize,
    check: impl Fn(&vadalog::ReasoningResult),
) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let (r, secs) = time_it(|| {
                engine(mode, threads)
                    .run(program, facts.clone())
                    .expect("benchmark program evaluates")
            });
            check(&r);
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median wall-clock seconds over `runs` goal-directed evaluations.
/// Asserts the magic rewrite actually applied — a silent fallback would
/// benchmark the full fixpoint and report a meaningless "speedup".
fn median_secs_goal(
    program: &Program,
    facts: &Database,
    goals: &[Atom],
    options: MagicOptions,
    runs: usize,
    check: impl Fn(&GoalRun),
) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let (r, secs) = time_it(|| {
                engine(JoinMode::Indexed, 1)
                    .run_with_goals(program, facts.clone(), goals, options)
                    .expect("goal-directed benchmark evaluates")
            });
            assert!(
                r.magic.applied,
                "magic rewrite fell back in benchmark: {:?}",
                r.magic
            );
            check(&r);
            secs
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct WorkloadResult {
    name: &'static str,
    size: usize,
    reference_s: f64,
    indexed_s: f64,
    indexed_mt_s: f64,
    /// Goal-directed median, when the workload has a magic series.
    magic_s: Option<f64>,
}

impl WorkloadResult {
    fn speedup(&self) -> f64 {
        if self.indexed_s == 0.0 {
            f64::INFINITY
        } else {
            self.reference_s / self.indexed_s
        }
    }

    /// Full indexed fixpoint vs goal-directed run of the same program.
    fn magic_speedup(&self) -> Option<f64> {
        let magic = self.magic_s?;
        Some(if magic == 0.0 {
            f64::INFINITY
        } else {
            self.indexed_s / magic
        })
    }
}

fn emit(out: &mut impl Write, w: &WorkloadResult, runs: usize) {
    let mut modes = vec![
        ("reference", w.reference_s),
        ("indexed", w.indexed_s),
        ("indexed-mt4", w.indexed_mt_s),
    ];
    if let Some(magic) = w.magic_s {
        modes.push(("magic", magic));
    }
    for (mode, secs) in modes {
        writeln!(
            out,
            "{{\"bench\":\"engine.{}\",\"size\":{},\"mode\":\"{}\",\"median_s\":{:.6},\"runs\":{}}}",
            w.name, w.size, mode, secs, runs
        )
        .expect("write bench line");
    }
    writeln!(
        out,
        "{{\"bench\":\"engine.{}\",\"size\":{},\"speedup\":{:.3}}}",
        w.name,
        w.size,
        w.speedup()
    )
    .expect("write bench line");
    if let Some(magic) = w.magic_speedup() {
        writeln!(
            out,
            "{{\"bench\":\"engine.{}\",\"size\":{},\"magic_speedup\":{:.3}}}",
            w.name, w.size, magic
        )
        .expect("write bench line");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let baseline = flag("--baseline");

    let runs = if quick { 3 } else { 5 };
    let tc_nodes = 64; // the headline workload is identical in both modes

    // 8 components keep the full fixpoint comparable to tc64 while the
    // 32-node component gives the magic run enough work (one component's
    // closure) for a noise-stable median the CI gate can hold at 25%
    let (tc_goal_components, tc_goal_cycle) = (8, 32);
    let risk_rows = if quick { 500 } else { 2_000 };

    // --- workload 1: 64-node non-linear transitive closure ---
    let tc_program = parse_program(&non_linear_tc(tc_nodes)).expect("tc program parses");
    let tc_facts = Database::new();
    let expect_paths = tc_nodes * tc_nodes;
    let tc_check = |r: &vadalog::ReasoningResult| {
        assert_eq!(r.db.rows("path").len(), expect_paths, "tc closure size");
    };
    let tc = WorkloadResult {
        name: "tc",
        size: tc_nodes,
        reference_s: median_secs(
            &tc_program,
            &tc_facts,
            JoinMode::Reference,
            1,
            runs,
            tc_check,
        ),
        indexed_s: median_secs(&tc_program, &tc_facts, JoinMode::Indexed, 1, runs, tc_check),
        indexed_mt_s: median_secs(&tc_program, &tc_facts, JoinMode::Indexed, 4, runs, tc_check),
        magic_s: None,
    };

    // --- workload 2: goal-directed closure over disjoint components ---
    let tc_goal_nodes = tc_goal_components * tc_goal_cycle;
    let tc_goal_program = parse_program(&disjoint_cycles_tc(tc_goal_components, tc_goal_cycle))
        .expect("tc_goal program parses");
    let tc_goal_full_paths = tc_goal_components * tc_goal_cycle * tc_goal_cycle;
    let tc_goal_full_check = |r: &vadalog::ReasoningResult| {
        assert_eq!(r.db.rows("path").len(), tc_goal_full_paths, "full closure");
    };
    let tc_goal_atom = Atom::new(
        "path",
        vec![
            Term::Const(vadalog::Value::Int(0)),
            Term::Var("Y".to_string()),
        ],
    );
    let tc_goal_slice = tc_goal_cycle; // path(0, y) for every y in component 0
    let tc_goal = WorkloadResult {
        name: "tc_goal",
        size: tc_goal_nodes,
        reference_s: median_secs(
            &tc_goal_program,
            &tc_facts,
            JoinMode::Reference,
            1,
            runs,
            tc_goal_full_check,
        ),
        indexed_s: median_secs(
            &tc_goal_program,
            &tc_facts,
            JoinMode::Indexed,
            1,
            runs,
            tc_goal_full_check,
        ),
        indexed_mt_s: median_secs(
            &tc_goal_program,
            &tc_facts,
            JoinMode::Indexed,
            4,
            runs,
            tc_goal_full_check,
        ),
        magic_s: Some(median_secs_goal(
            &tc_goal_program,
            &tc_facts,
            std::slice::from_ref(&tc_goal_atom),
            MagicOptions::default(),
            runs,
            |r: &GoalRun| {
                assert_eq!(
                    vadalog::goal_slice(&r.result.db, &tc_goal_atom).len(),
                    tc_goal_slice,
                    "goal slice size"
                );
            },
        )),
    };

    // --- workload 3: declarative household risk (Alg. 2 + Alg. 5) ---
    let spec = DatasetSpec::new(risk_rows, 4, Regime::U);
    let (db, dict) = generate(&spec, 20210323);
    let risk_program = parse_program(&format!("{ALG2_TUPLE_REIFICATION}{ALG5_INDIVIDUAL_RISK}"))
        .expect("risk program parses");
    let risk_facts = microdata_to_facts(&db, &dict).expect("microdata converts");
    let risk_check = |r: &vadalog::ReasoningResult| {
        assert_eq!(r.db.rows("riskOutput").len(), risk_rows, "one risk per row");
    };

    // the magic series answers one respondent's risk: the goal set is
    // that respondent's whole quasi-identifier group (closed under group
    // equality, so `closed_groups` is sound) — derived from a reference
    // full run, which also pins the expected risk values
    let risk_full = engine(JoinMode::Indexed, 1)
        .run(&risk_program, risk_facts.clone())
        .expect("risk reference run evaluates");
    let tuples = risk_full.db.rows("tuple");
    let target = tuples.first().expect("at least one reified tuple").clone();
    let group_sig = target[2].clone();
    let group_goals: Vec<Atom> = tuples
        .iter()
        .filter(|row| row[2] == group_sig)
        .map(|row| {
            Atom::new(
                "riskOutput",
                vec![Term::Const(row[1].clone()), Term::Var("R".to_string())],
            )
        })
        .collect();
    let expected_group: Vec<Vec<vadalog::Value>> = group_goals
        .iter()
        .flat_map(|g| vadalog::goal_slice(&risk_full.db, g))
        .collect();

    let risk = WorkloadResult {
        name: "risk",
        size: risk_rows,
        reference_s: median_secs(
            &risk_program,
            &risk_facts,
            JoinMode::Reference,
            1,
            runs,
            risk_check,
        ),
        indexed_s: median_secs(
            &risk_program,
            &risk_facts,
            JoinMode::Indexed,
            1,
            runs,
            risk_check,
        ),
        indexed_mt_s: median_secs(
            &risk_program,
            &risk_facts,
            JoinMode::Indexed,
            4,
            runs,
            risk_check,
        ),
        magic_s: Some(median_secs_goal(
            &risk_program,
            &risk_facts,
            &group_goals,
            MagicOptions {
                closed_groups: true,
            },
            runs,
            |r: &GoalRun| {
                let got: Vec<Vec<vadalog::Value>> = group_goals
                    .iter()
                    .flat_map(|g| vadalog::goal_slice(&r.result.db, g))
                    .collect();
                assert_eq!(got, expected_group, "goal risks match the full run");
            },
        )),
    };

    // --- report ---
    let mut file = match std::fs::File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create output file '{out_path}': {e}");
            std::process::exit(1);
        }
    };
    emit(&mut file, &tc, runs);
    emit(&mut file, &tc_goal, runs);
    emit(&mut file, &risk, runs);

    println!("engine bench — {runs} run(s) per mode, medians in seconds\n");
    for w in [&tc, &tc_goal, &risk] {
        let magic = match (w.magic_s, w.magic_speedup()) {
            (Some(s), Some(x)) => format!("   magic {s:.3}s ({x:.2}x vs indexed)"),
            _ => String::new(),
        };
        println!(
            "  engine.{:<7} (size {:>5}): reference {:.3}s   indexed {:.3}s   indexed-mt4 {:.3}s   speedup {:.2}x{}",
            w.name, w.size, w.reference_s, w.indexed_s, w.indexed_mt_s, w.speedup(), magic
        );
    }

    // show *why* via the engine profile of one indexed tc run
    let profiled = engine(JoinMode::Indexed, 1)
        .run(&tc_program, Database::new())
        .expect("profiled run evaluates");
    println!("\n{}", render_engine_profile(&profiled.profile));
    println!("results written to {out_path}");

    if let Some(path) = baseline {
        let mut failed = false;
        // The tc gate is absolute (a ~0.5s median is load-stable). The
        // tc_goal magic gate normalizes by the same run's full-fixpoint
        // median: a sub-100ms median moves with container load, but load
        // moves both numbers together, so the gate holds the *relative*
        // cost of goal-directed evaluation to within 25% of the baseline.
        for (bench, mode, current, normalize_by) in [
            ("engine.tc", "indexed", tc.indexed_s, None),
            (
                "engine.tc_goal",
                "magic",
                tc_goal.magic_s.expect("tc_goal has a magic series"),
                Some(tc_goal.indexed_s),
            ),
        ] {
            match read_baseline_median(&path, bench, mode) {
                Ok(base) => {
                    let machine = match normalize_by {
                        Some(current_indexed) => {
                            match read_baseline_median(&path, bench, "indexed") {
                                Ok(base_indexed) => current_indexed / base_indexed,
                                Err(msg) => {
                                    eprintln!("baseline check failed: {msg}");
                                    failed = true;
                                    continue;
                                }
                            }
                        }
                        None => 1.0,
                    };
                    let ratio = current / (base * machine);
                    println!(
                        "baseline check — {bench} {mode} median {current:.3}s vs baseline {base:.3}s, machine factor {machine:.2} ({ratio:.2}x)"
                    );
                    if ratio > MAX_REGRESSION {
                        eprintln!(
                            "PERF REGRESSION: {bench} {mode} median {current:.3}s exceeds baseline {base:.3}s (load-normalized {ratio:.2}x) by more than {:.0}%",
                            (MAX_REGRESSION - 1.0) * 100.0
                        );
                        failed = true;
                    }
                }
                Err(msg) => {
                    eprintln!("baseline check failed: {msg}");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
