//! Regenerates **Figure 1**: the Inflation & Growth microdata fragment,
//! with the per-tuple re-identification risks discussed in §2.2.

use vadasa_bench::render_table;
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::risk::{MicrodataView, ReIdentification, RiskMeasure};
use vadasa_datagen::fixtures::inflation_growth_fig1;

fn main() {
    let (db, dict) = inflation_growth_fig1();
    let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None)
        .expect("fixture view");
    let report = ReIdentification.evaluate(&view).expect("risk evaluation");

    let headers = [
        "#",
        "Id",
        "Area",
        "Sector",
        "Employees",
        "Res.Rev",
        "Exp.Rev",
        "ExpDE",
        "Growth",
        "W",
        "re-id risk",
    ];
    let mut rows = Vec::new();
    for i in 0..db.len() {
        let r = db.row(i).unwrap();
        let mut cells: Vec<String> = vec![(i + 1).to_string()];
        cells.extend(r.iter().map(|v| match v.as_str() {
            Some(s) => s.to_string(),
            None => v.to_string(),
        }));
        cells.push(format!("{:.4}", report.risks[i]));
        rows.push(cells);
    }
    println!("Figure 1 — Microdata DB about inflation and growth\n");
    println!("{}", render_table(&headers, &rows));
    let max = report
        .risks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    let min = report
        .risks
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "highest re-identification risk: tuple {} ({:.3});  lowest: tuple {} ({:.4})",
        max.0 + 1,
        max.1,
        min.0 + 1,
        min.1
    );
    println!(
        "(paper §2.2: highest tuple 15 ≈ 0.03, lowest tuple 7 ≈ 0.003, tuple 4 = 1/60 ≈ 0.016)"
    );
}
