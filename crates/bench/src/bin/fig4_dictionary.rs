//! Regenerates **Figure 4**: the metadata dictionary (Attribute table) and
//! the categories inferred for the I&G microdata DB by Algorithm 1 — run
//! both natively and as the declarative Vadalog program, which must agree.

use vadasa_bench::render_table;
use vadasa_core::categorize::{Categorizer, ExperienceBase};
use vadasa_core::dictionary::MetadataDictionary;
use vadasa_core::programs::run_categorization_program;
use vadasa_datagen::fixtures::inflation_growth_fig1;

fn main() {
    let (_, reference) = inflation_growth_fig1();

    // dictionary with descriptions but no categories yet
    let mut dict = MetadataDictionary::new();
    for (attr, meta) in reference.attrs("I&G").expect("fixture dict") {
        dict.register_attr("I&G", attr, meta.description.clone());
    }

    println!("Figure 4 — Metadata Dictionary: Attribute\n");
    let rows: Vec<Vec<String>> = dict
        .attrs("I&G")
        .unwrap()
        .iter()
        .map(|(a, m)| vec!["I&G".into(), a.clone(), m.description.clone()])
        .collect();
    println!(
        "{}",
        render_table(&["Microdata DB", "Attribute Name", "Description"], &rows)
    );

    // seed experience with the paper's categorization vocabulary
    let mut experience = ExperienceBase::financial_defaults();
    experience.add(
        "residential revenue",
        vadasa_core::dictionary::Category::QuasiIdentifier,
    );
    experience.add(
        "export revenue",
        vadasa_core::dictionary::Category::NonIdentifying,
    );
    experience.add(
        "export to de",
        vadasa_core::dictionary::Category::QuasiIdentifier,
    );
    experience.add(
        "growth 6 mos",
        vadasa_core::dictionary::Category::QuasiIdentifier,
    );

    // native Algorithm 1
    let mut categorizer = Categorizer::new(experience.clone());
    categorizer.threshold = 0.6;
    let report = categorizer
        .categorize(&mut dict, "I&G")
        .expect("categorization");

    println!("Figure 4 — Metadata Dictionary: Category (Algorithm 1, native)\n");
    let rows: Vec<Vec<String>> = dict
        .attrs("I&G")
        .unwrap()
        .iter()
        .map(|(a, m)| {
            vec![
                "I&G".into(),
                a.clone(),
                m.category
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "?".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Microdata DB", "Attribute Name", "Category"], &rows)
    );
    if report.conflicts.is_empty() {
        println!("no EGD conflicts (Rule 4 silent)");
    } else {
        println!("EGD conflicts for human inspection:");
        for c in &report.conflicts {
            println!("  {c}");
        }
    }

    // declarative Algorithm 1 must agree on the attributes it categorizes
    let mut fresh = MetadataDictionary::new();
    for (attr, meta) in reference.attrs("I&G").unwrap() {
        fresh.register_attr("I&G", attr, meta.description.clone());
    }
    let (cats, violations) =
        run_categorization_program(&fresh, "I&G", &experience, 0.6).expect("declarative run");
    let mut agree = 0;
    let mut total = 0;
    for (attr, cat) in &cats {
        total += 1;
        if dict.category("I&G", attr).ok().flatten() == Some(*cat) {
            agree += 1;
        }
    }
    println!(
        "\ndeclarative Algorithm 1: {agree}/{total} categorized attributes agree with the native run ({violations} EGD violations)"
    );
}
