//! Determinism probe: run the Figure-5 anonymization cycle and a
//! warm-startable engine workload, printing a byte-stable transcript.
//!
//! Usage: `fig5_cycle [--threads N] [--warm|--cold] [--telemetry-out FILE]`
//!
//! The output deliberately contains **no timings, no thread counts and no
//! mode echo**: a warm run must print exactly what a cold run prints, a
//! 4-thread run exactly what a 1-thread run prints, and any run exactly
//! what its repeat prints. The CI `determinism` job runs every
//! threads × mode combination twice and `diff`s all transcripts
//! byte-for-byte — any nondeterminism (iteration-order leakage, unstable
//! null labels, racy parallel derivation, warm/cold divergence) fails the
//! build.
//!
//! Two segments:
//!
//! 1. the native Fig-5 cycle (k-anonymity `k = 2`, local suppression,
//!    one tuple per iteration) — final table, audit trail, final report;
//! 2. an engine transitive-closure workload — evaluated either as one
//!    cold run (`--cold`) or as a session plus fact patch (`--warm`),
//!    printed as sorted fact sets.
//!
//! With `--telemetry-out FILE` the run additionally streams its telemetry
//! events — cycle and engine — as JSON lines with **redacted timings**
//! (every `t_ns`/`dur_ns`/`*_ns` quantity zeroed), so two runs of the
//! same threads × mode combination must produce byte-identical telemetry
//! too. The CI determinism job diffs these files per combination.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use vadalog::{parse_program, Database, Engine, EngineConfig, FactPatch, JoinMode, Value};
use vadasa_bench::render_table;
use vadasa_core::obs::{Collector, JsonLinesWriter};
use vadasa_core::prelude::*;
use vadasa_datagen::fixtures::local_suppression_fig5a;

fn fact_sets(db: &Database) -> BTreeMap<String, BTreeSet<Vec<Value>>> {
    let mut out = BTreeMap::new();
    let names: Vec<String> = db.relation_names().map(str::to_string).collect();
    for name in names {
        let rows: BTreeSet<Vec<Value>> = db.rows(&name).into_iter().collect();
        if !rows.is_empty() {
            out.insert(name, rows);
        }
    }
    out
}

fn print_fact_sets(sets: &BTreeMap<String, BTreeSet<Vec<Value>>>) {
    for (name, rows) in sets {
        for row in rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("  {name}({})", cells.join(", "));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let warm = !args.iter().any(|a| a == "--cold");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let sink: Option<Arc<JsonLinesWriter<_>>> = args
        .iter()
        .position(|a| a == "--telemetry-out")
        .and_then(|i| args.get(i + 1))
        .map(|path| {
            Arc::new(
                JsonLinesWriter::create(path)
                    .expect("create telemetry file")
                    .redact_timings(),
            )
        });

    // --- segment 1: the Figure-5 anonymization cycle ---
    let (db, dict) = local_suppression_fig5a();
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let config = CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        warm_start: warm,
        ..CycleConfig::default()
    };
    let mut cycle = AnonymizationCycle::new(&risk, &anonymizer, config);
    if let Some(s) = &sink {
        cycle = cycle.with_collector(s.clone());
    }
    let out = cycle.run(&db, &dict).expect("fig5 cycle converges");

    println!("== fig5 cycle ==");
    println!(
        "iterations: {}   nulls injected: {}   recodings: {}   final risky: {}",
        out.iterations, out.nulls_injected, out.recodings, out.final_risky
    );
    println!(
        "termination: {:?}   information loss: {:.6}",
        out.termination, out.information_loss
    );
    println!("\naudit trail:");
    for d in &out.audit.decisions {
        println!("  {d}");
    }
    println!("\nfinal report ({}):", out.final_report.measure);
    for (i, (r, det)) in out
        .final_report
        .risks
        .iter()
        .zip(out.final_report.details.iter())
        .enumerate()
    {
        println!(
            "  tuple {i}: risk {r:.6}  frequency {}  weight {:.6}  {}",
            det.frequency, det.weight_sum, det.note
        );
    }
    let mut rows = Vec::new();
    for i in 0..out.db.len() {
        let r = out.db.row(i).expect("row exists");
        let mut cells = vec![(i + 1).to_string()];
        cells.extend(r.iter().take(5).map(|v| v.to_string()));
        rows.push(cells);
    }
    println!("\nfinal table:");
    println!(
        "{}",
        render_table(
            &["#", "Id", "Area", "Sector", "Employees", "Res.Rev"],
            &rows
        )
    );

    // --- segment 2: engine closure, cold run vs session + patch ---
    let src = "a(X, Y) :- e(X, Y).\n\
               tc(X, Y) :- a(X, Y).\n\
               tc(X, Z) :- a(X, Y), tc(Y, Z).";
    let program = parse_program(src).expect("closure program parses");
    let base: Vec<(String, Vec<Value>)> = (0..6i64)
        .map(|i| ("e".to_string(), vec![Value::Int(i), Value::Int(i + 1)]))
        .collect();
    let patch: Vec<(String, Vec<Value>)> = vec![
        ("e".to_string(), vec![Value::Int(6), Value::Int(7)]),
        ("e".to_string(), vec![Value::Int(7), Value::Int(0)]),
    ];
    let engine = Engine::with_config(EngineConfig {
        join_mode: JoinMode::Indexed,
        threads,
        collector: sink.clone().map(|s| s as Arc<dyn Collector>),
        ..EngineConfig::default()
    });
    let db_of = |facts: &[(String, Vec<Value>)]| {
        let mut db = Database::new();
        for (p, row) in facts {
            db.insert(p, row.clone());
        }
        db
    };
    let (sets, termination) = if warm {
        let mut session = engine
            .session(program.clone(), db_of(&base))
            .expect("session cold start evaluates");
        session
            .patch(FactPatch::additions(patch))
            .expect("patch evaluates");
        (
            fact_sets(session.db()),
            format!("{:?}", session.termination()),
        )
    } else {
        let mut all = base.clone();
        all.extend(patch);
        let r = engine
            .run(&program, db_of(&all))
            .expect("cold run evaluates");
        (fact_sets(&r.db), format!("{:?}", r.termination))
    };
    println!("== engine closure ==");
    println!("termination: {termination}");
    print_fact_sets(&sets);

    if let Some(s) = &sink {
        s.flush().expect("flush telemetry");
    }
}
