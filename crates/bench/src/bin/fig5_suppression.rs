//! Regenerates **Figure 5**: local suppression with labelled nulls and
//! global recoding on the 7-row worked example — frequencies must move
//! exactly as the paper shows (1→5, 2→3 after suppressing tuple 1's
//! Sector; Milano/Torino → North after recoding).

use vadasa_bench::render_table;
use vadasa_core::anonymize::italian_geography;
use vadasa_core::anonymize::{AnonymizationAction, Anonymizer, GlobalRecoding, LocalSuppression};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::risk::MicrodataView;
use vadasa_datagen::fixtures::local_suppression_fig5a;

fn print_state(
    title: &str,
    db: &vadasa_core::model::MicrodataDb,
    dict: &vadasa_core::dictionary::MetadataDictionary,
) {
    let view = MicrodataView::from_db_with(db, dict, NullSemantics::MaybeMatch, None).unwrap();
    let stats = view.group_stats_with(None, NullSemantics::MaybeMatch);
    let mut rows = Vec::new();
    for i in 0..db.len() {
        let r = db.row(i).unwrap();
        let mut cells: Vec<String> = vec![(i + 1).to_string()];
        cells.extend(r.iter().take(5).map(|v| v.to_string()));
        cells.push(stats.count[i].to_string());
        rows.push(cells);
    }
    println!("{title}\n");
    println!(
        "{}",
        render_table(
            &["#", "Id", "Area", "Sector", "Employees", "Res.Rev", "F"],
            &rows
        )
    );
}

fn main() {
    // --- Figure 5a: the original table ---
    let (db, dict) = local_suppression_fig5a();
    print_state("Figure 5a — before anonymization", &db, &dict);

    // --- local suppression on tuple 1 (most selective attr = Sector) ---
    let mut suppressed = db.clone();
    let anonymizer = LocalSuppression::default();
    let action = anonymizer
        .anonymize_step(&mut suppressed, &dict, 0)
        .expect("suppression step");
    match &action {
        AnonymizationAction::Suppress { attr, previous, .. } => println!(
            "local suppression: tuple 1, attribute {attr} (was {previous}) → labelled null\n"
        ),
        other => println!("unexpected action {other:?}"),
    }
    print_state(
        "Figure 5b (suppression) — frequencies under maybe-match semantics",
        &suppressed,
        &dict,
    );

    // --- global recoding of tuples 6 and 7 (Milano/Torino → North) ---
    let mut recoded = suppressed.clone();
    let recoder = GlobalRecoding::new(italian_geography());
    for row in [5usize, 6] {
        if let Ok(AnonymizationAction::Recode { attr, from, to, .. }) =
            recoder.anonymize_step(&mut recoded, &dict, row)
        {
            println!("global recoding: {attr}: {from} → {to} (applied to the whole column)");
        }
    }
    // Roma rolls up too in the paper's 5b ("Center"): one step on tuple 1
    // recodes the whole Roma column
    if let Ok(AnonymizationAction::Recode { attr, from, to, .. }) =
        recoder.anonymize_step(&mut recoded, &dict, 0)
    {
        println!("global recoding: {attr}: {from} → {to} (applied to the whole column)");
    }
    println!();
    print_state(
        "Figure 5b (full) — after suppression and recoding",
        &recoded,
        &dict,
    );
}
