//! Regenerates **Figure 6**: the dataset catalogue, with measured
//! risky-tuple counts justifying the W/U/V regime labels.

use vadasa_bench::render_table;
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::risk::MicrodataView;
use vadasa_datagen::catalog::{figure6_specs, CATALOG_SEED};
use vadasa_datagen::generator::generate;

fn main() {
    println!("Figure 6 — Datasets used in the experimental settings\n");
    let mut rows = Vec::new();
    for spec in figure6_specs() {
        let (db, dict) = generate(&spec, CATALOG_SEED);
        let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
        let stats = view.group_stats_with(None, NullSemantics::Standard);
        let uniques = stats.count.iter().filter(|&&c| c == 1).count();
        let risky2 = stats.count.iter().filter(|&&c| c < 2).count();
        let provenance = match spec.name.as_str() {
            "R25A4W" => "Synth (paper: Real-world)",
            "R25A4U" | "R25A4V" => "Synth (paper: Realistic)",
            _ => "Synth",
        };
        rows.push(vec![
            spec.name.clone(),
            spec.qi_count.to_string(),
            format!("{}k", spec.rows / 1000),
            spec.regime.letter().to_string(),
            provenance.to_string(),
            uniques.to_string(),
            risky2.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "No. Att.",
                "No. Tuples",
                "Dist.",
                "Data",
                "sample uniques",
                "risky @ k=2"
            ],
            &rows
        )
    );
    println!("(the W < U < V ordering of risky tuples realizes the paper's regime semantics)");
}
