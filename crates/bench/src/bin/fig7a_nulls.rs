//! Regenerates **Figure 7a**: number of labelled nulls injected by the
//! anonymization cycle as the k-anonymity threshold grows from 2 to 5, on
//! the R25A4W / R25A4U / R25A4V datasets (k-anonymity risk, T = 0.5,
//! local suppression, "less significant first").

use vadasa_bench::{paper_cycle_config, render_table, run_paper_cycle};
use vadasa_core::prelude::KAnonymity;
use vadasa_datagen::catalog::by_name;

fn main() {
    let datasets = ["R25A4W", "R25A4U", "R25A4V"];
    let ks = [2usize, 3, 4, 5];
    println!("Figure 7a — nulls injected by k-anonymity threshold (T = 0.5, local suppression, less-significant-first)\n");
    let mut rows = Vec::new();
    for name in datasets {
        let (db, dict) = by_name(name).expect("catalogue dataset");
        let mut cells = vec![name.to_string()];
        for k in ks {
            let risk = KAnonymity::new(k);
            let out = run_paper_cycle(&db, &dict, &risk, paper_cycle_config());
            cells.push(out.nulls_injected.to_string());
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(&["dataset", "k=2", "k=3", "k=4", "k=5"], &rows)
    );
    println!("expected shape (paper): monotone growth in k; W < U < V at every k;");
    println!("W stays below ~50 nulls for 25k tuples at k=5.");
}
