//! Regenerates **Figure 7b**: information loss (injected nulls over the
//! theoretically removable quasi-identifier values of the initially risky
//! tuples) by k-anonymity threshold, for R25A4W / R25A4U / R25A4V.

use vadasa_bench::{paper_cycle_config, render_table, run_paper_cycle};
use vadasa_core::prelude::KAnonymity;
use vadasa_datagen::catalog::by_name;

fn main() {
    let datasets = ["R25A4W", "R25A4U", "R25A4V"];
    let ks = [2usize, 3, 4, 5];
    println!("Figure 7b — information loss by k-anonymity threshold (T = 0.5)\n");
    let mut rows = Vec::new();
    for name in datasets {
        let (db, dict) = by_name(name).expect("catalogue dataset");
        let mut cells = vec![name.to_string()];
        for k in ks {
            let risk = KAnonymity::new(k);
            let out = run_paper_cycle(&db, &dict, &risk, paper_cycle_config());
            cells.push(format!("{:.1}%", out.information_loss * 100.0));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(&["dataset", "k=2", "k=3", "k=4", "k=5"], &rows)
    );
    println!("expected shape (paper): W and U roughly flat in the 12–17% band;");
    println!("V highest overall, dropping towards the W/U band at low k because");
    println!("risky tuples collapse together once nulls start maybe-matching.");
}
