//! Regenerates **Figure 7c**: null proliferation under the maybe-match
//! semantics versus the standard (Skolem-chase) labelled-null semantics.
//! Under the standard semantics a null never enlarges anyone's equivalence
//! class, so suppression cannot terminate before exhausting the tuple —
//! symbols proliferate and the approach becomes unusable.

use vadasa_bench::{paper_cycle_config, render_table, run_paper_cycle};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::KAnonymity;
use vadasa_datagen::catalog::by_name;

fn main() {
    let datasets = ["R25A4W", "R25A4U", "R25A4V"];
    let ks = [2usize, 3, 4, 5];
    println!(
        "Figure 7c — nulls injected: maybe-match vs standard labelled-null semantics (T = 0.5)\n"
    );
    let mut rows = Vec::new();
    for name in datasets {
        let (db, dict) = by_name(name).expect("catalogue dataset");
        for sem in [NullSemantics::MaybeMatch, NullSemantics::Standard] {
            let mut cells = vec![
                name.to_string(),
                match sem {
                    NullSemantics::MaybeMatch => "maybe-match".to_string(),
                    NullSemantics::Standard => "standard".to_string(),
                },
            ];
            for k in ks {
                let risk = KAnonymity::new(k);
                let mut config = paper_cycle_config();
                config.semantics = sem;
                let out = run_paper_cycle(&db, &dict, &risk, config);
                cells.push(out.nulls_injected.to_string());
            }
            rows.push(cells);
        }
    }
    println!(
        "{}",
        render_table(&["dataset", "semantics", "k=2", "k=3", "k=4", "k=5"], &rows)
    );
    println!("expected shape (paper): the standard semantics injects far more nulls");
    println!("(every risky tuple is suppressed to exhaustion — 4 nulls each),");
    println!("while maybe-match needs close to the minimum.");
}
