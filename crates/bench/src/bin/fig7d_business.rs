//! Regenerates **Figure 7d**: nulls injected as the number of inferred
//! control relationships grows (0 → 400), with risk propagated across
//! company clusters per Algorithm 9 (k-anonymity, k = 2, T = 0.5).

use vadasa_bench::{paper_cycle_config, render_table, synthetic_ownership_focused};
use vadasa_core::business::{ClusterMap, ClusterRisk};
use vadasa_core::cycle::AnonymizationCycle;
use vadasa_core::prelude::*;
use vadasa_datagen::catalog::by_name;

fn main() {
    let datasets = ["R25A4W", "R25A4U", "R25A4V"];
    let relationship_counts = [0usize, 100, 200, 300, 400];
    println!(
        "Figure 7d — nulls injected by number of control relationships (k-anonymity, k=2, T=0.5)\n"
    );
    let mut rows = Vec::new();
    for name in datasets {
        let (db, dict) = by_name(name).expect("catalogue dataset");
        // one endpoint in ~4% of the edges is a risky firm: inferred
        // control relationships concentrate on the statistically unusual
        // companies (holding structures), which drives the propagation
        let view = MicrodataView::from_db(&db, &dict).expect("view");
        let baseline = KAnonymity::new(2).evaluate(&view).expect("risk");
        let risky_rows = baseline.risky_tuples(0.5);
        let mut cells = vec![name.to_string()];
        for rels in relationship_counts {
            let graph = synthetic_ownership_focused(&db, "Id", rels, 77, &risky_rows, 0.04);
            let clusters = ClusterMap::from_graph(&graph, &db, "Id").expect("id column");
            let base = KAnonymity::new(2);
            let risk = ClusterRisk::new(&base, clusters);
            let anonymizer = LocalSuppression::default();
            let cycle = AnonymizationCycle::new(&risk, &anonymizer, paper_cycle_config());
            let out = cycle.run(&db, &dict).expect("cycle converges");
            cells.push(out.nulls_injected.to_string());
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &["dataset", "rels=0", "rels=100", "rels=200", "rels=300", "rels=400"],
            &rows
        )
    );
    println!("expected shape (paper): null counts grow with the number of relationships;");
    println!("the more unbalanced the dataset, the stronger the propagation effect");
    println!("(risk of outliers spreads through their clusters).");
}
