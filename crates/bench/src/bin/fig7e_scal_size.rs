//! Regenerates **Figure 7e**: elapsed time of the full anonymization cycle
//! and of the risk-estimation component alone, by dataset size
//! (R6A4U → R100A4U) and risk technique (individual risk, k-anonymity,
//! SUDA). Per the paper's setup: k = 2 for k-anonymity, MSU threshold 3
//! for SUDA, T = 0.5. The individual-risk line uses the simulated
//! "external statistical library" estimator, reproducing the paper's
//! observation that library interop dominates that technique's cost.
//!
//! Pass `--quick` to run on reduced sizes (useful in CI).

use vadasa_bench::{paper_cycle_config, render_table, run_paper_cycle, time_it};
use vadasa_core::prelude::{IndividualRisk, IrEstimator, KAnonymity, RiskMeasure, Suda};
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[1_000, 2_000, 4_000]
    } else {
        &[6_000, 12_000, 50_000, 100_000]
    };

    println!("Figure 7e — execution time by dataset size and risk estimation technique");
    println!("(unbalanced 'U' datasets, 4 quasi-identifiers, T = 0.5; seconds)\n");

    let mut rows = Vec::new();
    for &n in sizes {
        let spec = DatasetSpec::new(n, 4, Regime::U);
        let (db, dict) = generate(&spec, 20210323);
        let measures: Vec<(&str, Box<dyn RiskMeasure>)> = vec![
            (
                "individual risk",
                Box::new(IndividualRisk::new(IrEstimator::SimulatedLibrary {
                    samples: if quick { 200 } else { 2_000 },
                })),
            ),
            ("k-anonymity", Box::new(KAnonymity::new(2))),
            (
                "SUDA",
                Box::new(Suda {
                    msu_threshold: 3,
                    max_msu_size: Some(3),
                }),
            ),
        ];
        for (label, risk) in measures {
            let (out, total) =
                time_it(|| run_paper_cycle(&db, &dict, risk.as_ref(), paper_cycle_config()));
            rows.push(vec![
                spec.name.clone(),
                label.to_string(),
                format!("{total:.2}"),
                format!("{:.2}", out.risk_eval_seconds()),
                out.nulls_injected.to_string(),
                out.iterations.to_string(),
            ]);
            eprintln!("done: {} / {label}", spec.name);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "technique",
                "cycle s",
                "risk-eval s",
                "nulls",
                "iters"
            ],
            &rows
        )
    );
    println!("expected shape (paper): risk estimation dominates the cycle; time grows");
    println!("~linearly with rows; k-anonymity cheapest, SUDA intermediate (controlled");
    println!("combination blowup), individual risk most expensive due to the library.");
}
