//! Regenerates **Figure 7f**: elapsed time by number of quasi-identifiers
//! (R50A4W → R50A9W, 50k tuples each) for the three risk techniques.
//! Individual risk and k-anonymity group only on the *full* combination so
//! they are nearly flat in the QI count; SUDA inspects attribute subsets,
//! but minimality pruning keeps the growth tame (the paper's "no
//! combinatorial blowup appears").
//!
//! Pass `--quick` to run on 5k-row variants.

use vadasa_bench::{paper_cycle_config, render_table, run_paper_cycle, time_it};
use vadasa_core::prelude::{IndividualRisk, IrEstimator, KAnonymity, RiskMeasure, Suda};
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rows_per_dataset = if quick { 5_000 } else { 50_000 };
    let widths = [4usize, 5, 6, 8, 9];

    println!("Figure 7f — execution time by number of quasi-identifiers ('W' distribution, {rows_per_dataset} tuples; seconds)\n");

    let mut rows = Vec::new();
    for &w in &widths {
        let spec = DatasetSpec::new(rows_per_dataset, w, Regime::W);
        let (db, dict) = generate(&spec, 20210323);
        let measures: Vec<(&str, Box<dyn RiskMeasure>)> = vec![
            (
                "individual risk",
                Box::new(IndividualRisk::new(IrEstimator::PosteriorMean)),
            ),
            ("k-anonymity", Box::new(KAnonymity::new(2))),
            (
                "SUDA",
                Box::new(Suda {
                    msu_threshold: 3,
                    max_msu_size: Some(3),
                }),
            ),
        ];
        for (label, risk) in measures {
            let (out, total) =
                time_it(|| run_paper_cycle(&db, &dict, risk.as_ref(), paper_cycle_config()));
            rows.push(vec![
                spec.name.clone(),
                w.to_string(),
                label.to_string(),
                format!("{total:.2}"),
                format!("{:.2}", out.risk_eval_seconds()),
                out.nulls_injected.to_string(),
            ]);
            eprintln!("done: {} / {label}", spec.name);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "#QI",
                "technique",
                "cycle s",
                "risk-eval s",
                "nulls"
            ],
            &rows
        )
    );
    println!("expected shape (paper): individual risk and k-anonymity only marginally");
    println!("affected by the QI count; SUDA grows with it but without combinatorial");
    println!("blowup thanks to minimality pruning.");
}
