//! Risk–utility frontier: the trade-off at the heart of SDC ("minimize the
//! risk while maximizing the statistical utility", §1). Sweeping the
//! threshold `T` of the re-identification measure over R25A4U traces how
//! much information each extra notch of confidentiality costs, and where
//! the frontier bends.

use vadasa_bench::{paper_cycle_config, render_table, run_paper_cycle};
use vadasa_core::metrics::{class_entropy, suppression_ratio};
use vadasa_core::prelude::*;
use vadasa_core::report::dataset_risk;
use vadasa_datagen::catalog::by_name;

fn main() {
    let (db, dict) = by_name("R25A4U").expect("catalogue dataset");
    let risk = ReIdentification;

    println!("Risk–utility frontier — R25A4U, re-identification risk, local suppression\n");
    let mut rows = Vec::new();
    for t in [0.5, 0.2, 0.1, 0.05, 0.02] {
        let mut config = paper_cycle_config();
        config.threshold = t;
        let out = run_paper_cycle(&db, &dict, &risk, config);
        let view = MicrodataView::from_db(&out.db, &dict).expect("view");
        let report = risk.evaluate(&view).expect("risk");
        let global = dataset_risk(&view, &report, t);
        rows.push(vec![
            format!("{t}"),
            out.nulls_injected.to_string(),
            format!("{:.2}%", suppression_ratio(&view) * 100.0),
            format!("{:.3}", class_entropy(&view)),
            format!("{:.2}", global.expected_reidentifications),
            format!("{:.4}", global.max_risk),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "threshold T",
                "nulls",
                "suppressed cells",
                "class entropy",
                "E[re-idents]",
                "max risk"
            ],
            &rows
        )
    );
    println!("tightening T monotonically lowers the expected re-identifications and");
    println!("the residual max risk, paid for in suppressed cells and lost entropy —");
    println!("the curve analysts read before picking the exchange threshold.");
}
