//! Prints the pre-exchange confidentiality summary (desideratum iii) for a
//! catalogue dataset under every off-the-shelf risk measure — the report
//! an RDC analyst reviews before approving a share.
//!
//! Usage: `risk_report [DATASET]` (default R25A4U).

use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_core::report::render_summary;
use vadasa_datagen::catalog::by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "R25A4U".to_string());
    let Some((db, dict)) = by_name(&name) else {
        eprintln!("unknown catalogue dataset '{name}' (try R25A4W / R25A4U / R25A4V)");
        std::process::exit(2);
    };
    let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None)
        .expect("view builds");

    let measures: Vec<(Box<dyn RiskMeasure>, f64)> = vec![
        (Box::new(ReIdentification), 0.1),
        (Box::new(KAnonymity::new(2)), 0.5),
        (
            Box::new(IndividualRisk::new(IrEstimator::PosteriorMean)),
            0.5,
        ),
        (
            Box::new(Suda {
                msu_threshold: 3,
                max_msu_size: Some(3),
            }),
            0.5,
        ),
        (Box::new(PresenceRisk), 0.5),
    ];
    println!("=== pre-exchange screening of {name} ===\n");
    for (measure, threshold) in measures {
        let report = measure.evaluate(&view).expect("measure evaluates");
        println!("{}", render_summary(&view, &report, threshold, 3));
    }
}
