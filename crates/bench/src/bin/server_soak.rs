//! `server_soak` — multi-job soak for the supervised anonymization
//! service, with injected faults and an optional hard mid-flight kill.
//!
//! ```text
//! server_soak --jobs-root DIR [--jobs N] [--workers N] [--seed S]
//!             [--kill-after-ms T]        # phase 1: submit, then exit(9) mid-flight
//! server_soak --jobs-root DIR [--workers N] --verify
//!                                        # phase 2: recover, drain, verify
//! ```
//!
//! **Phase 1** starts a server, submits a mixed batch — healthy jobs,
//! jobs with transient journal-append faults (which must retry and
//! converge), and one worker-panic job (which must fail with a
//! structured error while the supervisor survives). With
//! `--kill-after-ms` the process hard-exits with code **9** mid-flight,
//! simulating a crash of the whole fleet; without it the batch drains
//! normally.
//!
//! **Phase 2** restarts a server over the same root (recovering every
//! journaled job), waits for the fleet to settle, and verifies that
//! every job either released a table **byte-identical** to the
//! uninterrupted reference recomputed from its on-disk manifest, or
//! carries a structured terminal error (only allowed for the
//! deliberately-panicking job — and only if its panic fired before the
//! kill; injected faults are in-memory, so a recovered panic job runs
//! clean and must then converge). Exit code 0 = verified, 1 = mismatch.

use std::process::ExitCode;
use std::time::Duration;

use vadasa_core::cycle::{AnonymizationCycle, StepGranularity};
use vadasa_core::faults::ServerFault;
use vadasa_core::io::write_csv;
use vadasa_core::prelude::LocalSuppression;
use vadasa_datagen::households::generate_households;
use vadasa_server::spec::{MANIFEST_FILE, RELEASED_FILE};
use vadasa_server::{
    JobServer, JobSpec, JobState, MeasureSpec, RetryPolicy, ServerConfig, ShutdownMode,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: server_soak --jobs-root DIR [--jobs N] [--workers N] [--seed S] \
         [--kill-after-ms T] [--verify]"
    );
    ExitCode::from(2)
}

/// The uninterrupted reference for a manifest: run the cycle without a
/// journal and render the released table.
fn reference_csv(spec: &JobSpec) -> Result<String, String> {
    let db = spec.table().map_err(|e| e.to_string())?;
    let dict = spec.dictionary().map_err(|e| e.to_string())?;
    let measure = spec.measure.build();
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(measure.as_ref(), &anonymizer, spec.cycle_config());
    let outcome = cycle.run(&db, &dict).map_err(|e| e.to_string())?;
    Ok(write_csv(&outcome.db))
}

fn submit_phase(
    root: &std::path::Path,
    jobs: usize,
    workers: usize,
    seed: u64,
    kill_after: Option<Duration>,
) -> ExitCode {
    let mut cfg = ServerConfig::new(root);
    cfg.workers = workers;
    cfg.queue_capacity = jobs.max(4) + 2;
    cfg.retry = RetryPolicy {
        base: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let server = match JobServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(delay) = kill_after {
        // A detached timer thread hard-kills the whole fleet mid-flight:
        // no Drop runs, no drain, no marker writes — exactly a crash.
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            eprintln!("server_soak: hard exit(9) mid-flight");
            std::process::exit(9);
        });
    }
    let mut ids = Vec::new();
    for i in 0..jobs {
        let survey = generate_households(10 + (i % 5) * 2, seed.wrapping_add(i as u64));
        let measure = match i % 3 {
            0 => MeasureSpec::KAnonymity(2 + i % 3),
            1 => MeasureSpec::ReIdentification,
            _ => MeasureSpec::Suda(2),
        };
        let mut spec = match JobSpec::new(&survey.db, &survey.dict, measure) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("spec {i}: {e}");
                return ExitCode::FAILURE;
            }
        };
        spec.granularity = StepGranularity::OneTuplePerIteration;
        spec.snapshot_every = Some(4);
        let id = match i {
            0 => {
                spec.fault = ServerFault::none().panic_on_attempt(1);
                format!("panic-{i}")
            }
            _ if i % 3 == 1 => {
                spec.fault = ServerFault::none().transient_appends(1);
                format!("flaky-{i}")
            }
            _ => format!("soak-{i}"),
        };
        if let Some(t) = kill_after {
            // Stagger starts across ~1.5× the kill window so the kill
            // reliably lands on a mix of done, mid-journal, sleeping and
            // still-queued jobs. The delay is an in-memory fault and is
            // never persisted, so recovered jobs restart without it.
            let stagger = t.mul_f64(1.5 * i as f64 / jobs as f64);
            spec.fault = spec.fault.delay_start(stagger);
        }
        match server.submit(&id, spec) {
            Ok(_) => ids.push(id),
            Err(e) => {
                eprintln!("submit {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "server_soak: submitted {} job(s) under {}",
        ids.len(),
        root.display()
    );
    // Without a kill timer this drains normally; with one, exit(9)
    // interrupts us somewhere in here.
    for id in &ids {
        match server.wait(id, Duration::from_secs(300)) {
            Some(r) => println!("server_soak: {id} → {}", r.state.name()),
            None => eprintln!("server_soak: {id} unknown?"),
        }
    }
    server.shutdown(ShutdownMode::Drain);
    ExitCode::SUCCESS
}

fn verify_phase(root: &std::path::Path, workers: usize) -> ExitCode {
    let mut cfg = ServerConfig::new(root);
    cfg.workers = workers;
    cfg.retry = RetryPolicy {
        base: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let server = match JobServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot restart server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recovered = server.metrics().counter("server.recovered");
    let ids: Vec<String> = server.list().iter().map(|r| r.id.clone()).collect();
    println!(
        "server_soak: verify over {} job(s), {recovered} recovered mid-flight",
        ids.len()
    );
    let mut failures = 0usize;
    for id in &ids {
        let Some(report) = server.wait(id, Duration::from_secs(300)) else {
            eprintln!("FAIL {id}: vanished");
            failures += 1;
            continue;
        };
        match report.state {
            JobState::Done => {
                let manifest_path = root.join(id).join(MANIFEST_FILE);
                let spec = std::fs::read_to_string(&manifest_path)
                    .map_err(|e| e.to_string())
                    .and_then(|t| JobSpec::from_manifest_json(&t).map_err(|e| e.to_string()));
                let released = std::fs::read_to_string(root.join(id).join(RELEASED_FILE));
                match (spec.and_then(|s| reference_csv(&s)), released) {
                    (Ok(reference), Ok(released)) if reference == released => {
                        println!("ok   {id}: bit-identical to uninterrupted reference");
                    }
                    (Ok(_), Ok(_)) => {
                        eprintln!("FAIL {id}: released table differs from reference");
                        failures += 1;
                    }
                    (Err(e), _) => {
                        eprintln!("FAIL {id}: cannot recompute reference: {e}");
                        failures += 1;
                    }
                    (_, Err(e)) => {
                        eprintln!("FAIL {id}: cannot read released.csv: {e}");
                        failures += 1;
                    }
                }
            }
            JobState::Failed if id.starts_with("panic-") => {
                // Allowed: the injected panic fired before the kill.
                println!(
                    "ok   {id}: structured failure as injected ({})",
                    report.error.as_deref().unwrap_or("no error?")
                );
            }
            other => {
                eprintln!(
                    "FAIL {id}: state {} (error {:?})",
                    other.name(),
                    report.error
                );
                failures += 1;
            }
        }
    }
    server.shutdown(ShutdownMode::Drain);
    if failures > 0 {
        eprintln!("server_soak: {failures} verification failure(s)");
        return ExitCode::FAILURE;
    }
    println!("server_soak: fleet verified");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let switch = |name: &str| args.iter().any(|a| a == name);
    if switch("--help") || switch("-h") {
        return usage();
    }
    let Some(root) = flag("--jobs-root") else {
        eprintln!("missing required --jobs-root DIR");
        return usage();
    };
    let root = std::path::PathBuf::from(root);
    let parse = |name: &str, default: usize| -> Result<usize, ExitCode> {
        match flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| {
                eprintln!("{name} must be a non-negative integer");
                usage()
            }),
        }
    };
    let workers = match parse("--workers", 2) {
        Ok(n) => n.max(1),
        Err(c) => return c,
    };
    if switch("--verify") {
        return verify_phase(&root, workers);
    }
    let jobs = match parse("--jobs", 6) {
        Ok(n) => n.max(1),
        Err(c) => return c,
    };
    let seed = match parse("--seed", 42) {
        Ok(n) => n as u64,
        Err(c) => return c,
    };
    let kill_after = match flag("--kill-after-ms") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                eprintln!("--kill-after-ms must be milliseconds");
                return usage();
            }
        },
    };
    submit_phase(&root, jobs, workers, seed, kill_after)
}
