//! `vadasa_cycle` — run the full Vada-SA anonymization pipeline on a CSV
//! file, with optional crash-safe journaling and resume.
//!
//! ```text
//! vadasa_cycle --input survey.csv [--name NAME] [--k K] [--threshold T]
//!              [--max-iterations N] [--out released.csv]
//!              [--batch one-tuple|per-class|top-N] [--risk-threads N]
//!              [--journal DIR] [--resume]
//!              [--sync every-record|every-N|on-snapshot]
//!              [--snapshot-every N]
//!              [--telemetry-out FILE] [--trace-out FILE]
//!              [--collapsed-out FILE] [--metrics-out FILE]
//! ```
//!
//! `--batch` selects the iteration heuristic: `one-tuple` acts on the
//! single highest-priority row per iteration, `per-class` clears one
//! whole equivalence class, `top-N` (e.g. `top-64`) clears up to N
//! classes per iteration — the million-row configuration. `--risk-threads`
//! shards risk evaluation across a deterministic thread pool (the outcome
//! is bit-identical at any thread count). Note that batching is part of a
//! journal's identity: a `--resume` must use the same `--batch` as the
//! run that wrote the journal.
//!
//! Observability outputs (all optional, all write-once at the end of the
//! run):
//!
//! - `--telemetry-out FILE` streams every telemetry event as JSON lines
//!   (deterministically ordered; one object per line).
//! - `--trace-out FILE` writes the run's span timeline as Chrome
//!   `trace_event` JSON — open in `chrome://tracing` or Perfetto.
//! - `--collapsed-out FILE` writes collapsed stacks for flamegraph
//!   renderers.
//! - `--metrics-out FILE` writes the final live-gauge snapshot (current
//!   iteration, rows at risk, convergence trend/ETA) as one JSON object.
//!   For *live* monitoring of a journaled run, point `vadasa_status
//!   --watch` at the `--journal` directory instead.
//!
//! With `--journal DIR` every committed anonymization action is written
//! to a write-ahead journal in `DIR` (and the working table is
//! snapshotted atomically every `--snapshot-every` iterations), so a run
//! killed at *any* byte can be continued with `--resume` — landing on
//! the same released table, audit trail and risk report as a run that
//! was never interrupted. A typical crash-safe workflow:
//!
//! ```text
//! vadasa_cycle --input survey.csv --journal wal/          # killed mid-run
//! vadasa_cycle --input survey.csv --journal wal/ --resume # finishes it
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use vadasa_core::cycle::{BatchStrategy, CycleConfig};
use vadasa_core::io::{read_csv, write_csv};
use vadasa_core::obs::metrics::MetricsRegistry;
use vadasa_core::obs::trace::TraceBuilder;
use vadasa_core::obs::{Collector, Fanout, JsonLinesWriter, Recorder};
use vadasa_core::pipeline::Vadasa;
use vadasa_core::prelude::{JournalConfig, SyncPolicy};
use vadasa_core::report::render_profile;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vadasa_cycle --input FILE.csv [--name NAME] [--k K] [--threshold T]\n\
         \x20                   [--max-iterations N] [--out released.csv]\n\
         \x20                   [--batch one-tuple|per-class|top-N] [--risk-threads N]\n\
         \x20                   [--journal DIR] [--resume]\n\
         \x20                   [--sync every-record|every-N|on-snapshot] [--snapshot-every N]\n\
         \x20                   [--telemetry-out FILE] [--trace-out FILE]\n\
         \x20                   [--collapsed-out FILE] [--metrics-out FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let switch = |name: &str| args.iter().any(|a| a == name);
    if switch("--help") || switch("-h") {
        return usage();
    }

    let Some(input) = flag("--input") else {
        eprintln!("missing required --input FILE.csv");
        return usage();
    };
    let name = flag("--name").unwrap_or_else(|| "survey".to_string());
    let k: usize = match flag("--k").as_deref().unwrap_or("2").parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("--k must be an integer: {e}");
            return usage();
        }
    };
    let threshold: f64 = match flag("--threshold").as_deref().unwrap_or("0.5").parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("--threshold must be a number: {e}");
            return usage();
        }
    };
    let max_iterations: Option<usize> = match flag("--max-iterations") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!("--max-iterations must be an integer: {e}");
                return usage();
            }
        },
    };
    let sync = match flag("--sync").as_deref() {
        None | Some("every-record") => SyncPolicy::EveryRecord,
        Some("on-snapshot") => SyncPolicy::OnSnapshot,
        Some(s) => match s.strip_prefix("every-").and_then(|n| n.parse::<u32>().ok()) {
            Some(n) => SyncPolicy::EveryN(n),
            None => {
                eprintln!("--sync must be every-record, every-N or on-snapshot, got '{s}'");
                return usage();
            }
        },
    };
    let snapshot_every: Option<u32> = match flag("--snapshot-every") {
        None => Some(16),
        Some(v) => match v.parse() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(e) => {
                eprintln!("--snapshot-every must be an integer: {e}");
                return usage();
            }
        },
    };
    let batch: Option<BatchStrategy> = match flag("--batch").as_deref() {
        None => None,
        Some("one-tuple") => Some(BatchStrategy::OneTuple),
        Some("per-class") => Some(BatchStrategy::PerClass),
        Some(s) => match s.strip_prefix("top-").and_then(|n| n.parse::<usize>().ok()) {
            Some(n) if n > 0 => Some(BatchStrategy::TopN(n)),
            _ => {
                eprintln!("--batch must be one-tuple, per-class or top-N, got '{s}'");
                return usage();
            }
        },
    };
    let risk_threads: usize = match flag("--risk-threads").as_deref().unwrap_or("1").parse() {
        Ok(0) => {
            eprintln!("--risk-threads must be at least 1");
            return usage();
        }
        Ok(n) => n,
        Err(e) => {
            eprintln!("--risk-threads must be an integer: {e}");
            return usage();
        }
    };

    let text = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{input}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let db = match read_csv(&name, &text) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("cannot parse '{input}': {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = CycleConfig {
        threshold,
        batch,
        risk_threads,
        ..CycleConfig::default()
    };
    if let Some(n) = max_iterations {
        config.max_iterations = n;
    }
    let telemetry_out = flag("--telemetry-out");
    let trace_out = flag("--trace-out");
    let collapsed_out = flag("--collapsed-out");
    let metrics_out = flag("--metrics-out");

    let sink: Option<Arc<JsonLinesWriter<std::io::BufWriter<std::fs::File>>>> = match &telemetry_out
    {
        Some(path) => match JsonLinesWriter::create(path) {
            Ok(w) => Some(Arc::new(w)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Trace exports replay the cycle's profile events into a recorder;
    // fan out when the JSON-lines sink is also requested.
    let recorder: Option<Arc<Recorder>> = if trace_out.is_some() || collapsed_out.is_some() {
        Some(Arc::new(Recorder::new()))
    } else {
        None
    };
    let mut collectors: Vec<Arc<dyn Collector>> = Vec::new();
    if let Some(s) = &sink {
        collectors.push(s.clone());
    }
    if let Some(r) = &recorder {
        collectors.push(r.clone());
    }
    let collector: Option<Arc<dyn Collector>> = match collectors.len() {
        0 => None,
        1 => collectors.pop(),
        _ => Some(Arc::new(Fanout::new(collectors))),
    };
    let metrics: Option<Arc<MetricsRegistry>> = if metrics_out.is_some() {
        Some(Arc::new(MetricsRegistry::new()))
    } else {
        None
    };

    let mut pipeline = Vadasa::new().k_anonymity(k).cycle_config(config);
    if let Some(c) = collector {
        pipeline = pipeline.collector(c);
    }
    if let Some(m) = &metrics {
        pipeline = pipeline.metrics(m.clone());
    }
    if let Some(dir) = flag("--journal") {
        pipeline = pipeline.journal(JournalConfig {
            sync,
            snapshot_every,
            ..JournalConfig::new(dir)
        });
        if switch("--resume") {
            pipeline = pipeline.resume();
        }
    } else if switch("--resume") {
        eprintln!("--resume requires --journal DIR");
        return usage();
    }

    let release = match pipeline.run(&db) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(sink) = &sink {
        if let Err(e) = sink.flush() {
            eprintln!("cannot write telemetry: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(rec) = &recorder {
        let tree = TraceBuilder::from_recorder(rec);
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, tree.chrome_trace_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &collapsed_out {
            if let Err(e) = std::fs::write(path, tree.collapsed_stacks()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let (Some(m), Some(path)) = (&metrics, &metrics_out) {
        let mut snapshot = m.snapshot_json();
        snapshot.push('\n');
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let csv = write_csv(&release.outcome.db);
    match flag("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("cannot write '{path}': {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("released table written to {path}");
        }
        None => print!("{csv}"),
    }
    eprintln!("{}", release.summary);
    eprint!("{}", render_profile(&release.outcome.profile));
    ExitCode::SUCCESS
}
