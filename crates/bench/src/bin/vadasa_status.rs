//! `vadasa_status` — live, read-only status of a journaled Vada-SA run.
//!
//! ```text
//! vadasa_status --journal DIR [--telemetry FILE] [--json] [--watch SECS]
//! vadasa_status --jobs-root DIR [--json] [--watch SECS]
//!
//!   --journal DIR     journal directory of one run
//!   --jobs-root DIR   a vadasa_server fleet root: list every job under
//!                     it (state, storage backend, warm-artifact
//!                     freshness, progress, ETA band, torn bytes)
//!   --telemetry FILE  also summarize a JSON-lines telemetry file: span
//!                     count and the hottest spans by self time
//!   --json            emit one JSON object instead of text
//!   --watch SECS      re-read and re-print every SECS seconds until the
//!                     run finishes (or forever with --json, one JSON
//!                     object per line)
//! ```
//!
//! The tool decodes the write-ahead journal with the same total frame
//! decoder recovery uses, but never writes, truncates or locks anything —
//! it is safe to point at a directory another process is journaling into
//! right now. It reports the run identity, committed iteration count,
//! snapshot horizon and replay distance, the rows-at-risk trajectory with
//! a least-squares convergence estimate (trend, ETA, confidence band),
//! degradation/finish markers, any torn tail bytes, and — for file-backed
//! runs — whether the persisted warm-state artifact is fresh against the
//! journal (a resume would seed warm from disk), stale (cold regroup), or
//! refused by the total decoder.

use std::process::ExitCode;
use vadasa_bench::status::{
    jobs_to_json, read_jobs_root, read_status, render_jobs_table, JobStatus, StatusError,
};
use vadasa_core::obs::trace::{TraceBuilder, TraceTree};

fn usage() -> ExitCode {
    eprintln!(
        "usage: vadasa_status --journal DIR [--telemetry FILE] [--json] [--watch SECS]\n\
         \x20      vadasa_status --jobs-root DIR [--json] [--watch SECS]"
    );
    ExitCode::from(2)
}

/// Summarize a telemetry trace: span count and the top spans by self
/// time, largest first.
fn telemetry_summary(tree: &TraceTree, top_n: usize) -> Vec<(String, u64)> {
    let mut by_name: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for i in 0..tree.nodes.len() {
        *by_name.entry(tree.nodes[i].name.as_str()).or_insert(0) += tree.self_ns(i);
    }
    let mut rows: Vec<(String, u64)> = by_name
        .into_iter()
        .map(|(name, ns)| (name.to_string(), ns))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(top_n);
    rows
}

fn print_once(status: &JobStatus, telemetry: Option<&TraceTree>, json: bool) {
    if json {
        let mut obj = status.to_json();
        if let (Some(tree), vadasa_core::obs::json::Json::Obj(members)) = (telemetry, &mut obj) {
            let spans = vadasa_core::obs::json::Json::Obj(vec![
                (
                    "count".into(),
                    vadasa_core::obs::json::Json::Num(tree.nodes.len() as f64),
                ),
                (
                    "top_self_ns".into(),
                    vadasa_core::obs::json::Json::Obj(
                        telemetry_summary(tree, 5)
                            .into_iter()
                            .map(|(name, ns)| (name, vadasa_core::obs::json::Json::Num(ns as f64)))
                            .collect(),
                    ),
                ),
            ]);
            members.push(("telemetry".into(), spans));
        }
        println!("{obj}");
    } else {
        print!("{}", status.render_text());
        if let Some(tree) = telemetry {
            println!(
                "telemetry {} span(s); hottest by self time:",
                tree.nodes.len()
            );
            for (name, ns) in telemetry_summary(tree, 5) {
                println!("          {name}  {:.3} ms", ns as f64 / 1e6);
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let switch = |name: &str| args.iter().any(|a| a == name);
    if switch("--help") || switch("-h") {
        return usage();
    }
    let telemetry_path = flag("--telemetry");
    let json = switch("--json");
    let watch: Option<u64> = match flag("--watch") {
        None => None,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--watch must be a positive number of seconds");
                return usage();
            }
        },
    };

    if let Some(root) = flag("--jobs-root") {
        if flag("--journal").is_some() {
            eprintln!("--journal and --jobs-root are mutually exclusive");
            return usage();
        }
        let root = std::path::PathBuf::from(root);
        loop {
            let jobs = match read_jobs_root(&root) {
                Ok(jobs) => jobs,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            if json {
                println!("{}", jobs_to_json(&jobs));
            } else {
                print!("{}", render_jobs_table(&jobs));
            }
            // Keep watching while any job is still making progress.
            let all_settled = jobs
                .iter()
                .all(|j| !matches!(j.state(), "running" | "queued"));
            match watch {
                Some(secs) if !all_settled => {
                    if !json {
                        println!("---");
                    }
                    std::thread::sleep(std::time::Duration::from_secs(secs));
                }
                _ => break,
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(dir) = flag("--journal") else {
        eprintln!("missing required --journal DIR (or --jobs-root DIR)");
        return usage();
    };
    let dir = std::path::PathBuf::from(dir);
    loop {
        let status = match read_status(&dir) {
            Ok(s) => s,
            Err(e @ StatusError::Io { .. }) if watch.is_some() => {
                // the writer may not have created the journal yet
                eprintln!("waiting: {e}");
                std::thread::sleep(std::time::Duration::from_secs(watch.unwrap_or(1)));
                continue;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let tree = match &telemetry_path {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(text) => Some(TraceBuilder::from_json_lines(&text)),
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        print_once(&status, tree.as_ref(), json);
        match watch {
            Some(secs) if status.finished.is_none() => {
                if !json {
                    println!("---");
                }
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
            _ => break,
        }
    }
    ExitCode::SUCCESS
}
