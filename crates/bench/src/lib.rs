//! Shared harness utilities for the figure-regeneration binaries and the
//! Criterion benches: plain-text table rendering, standard cycle
//! configurations matching Section 5, and synthetic ownership-graph
//! generation for the business-knowledge experiment (Figure 7d).

#![warn(missing_docs)]

pub mod status;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::Value;
use vadasa_core::business::OwnershipGraph;
use vadasa_core::cycle::{AnonymizationCycle, CycleConfig, CycleOutcome, TupleOrder};
use vadasa_core::dictionary::MetadataDictionary;
use vadasa_core::model::MicrodataDb;
use vadasa_core::prelude::{Anonymizer, LocalSuppression, RiskMeasure};

/// Render an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    " {:<width$} ",
                    c,
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// The Section 5.1 standard configuration: threshold `T = 0.5`, local
/// suppression, "less significant first" tuple routing.
pub fn paper_cycle_config() -> CycleConfig {
    CycleConfig {
        threshold: 0.5,
        tuple_order: TupleOrder::LessSignificantFirst,
        ..CycleConfig::default()
    }
}

/// Run one anonymization cycle with the paper's standard setup and a
/// caller-chosen risk measure.
pub fn run_paper_cycle(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: CycleConfig,
) -> CycleOutcome {
    let anonymizer = LocalSuppression::default();
    run_cycle_with(db, dict, risk, &anonymizer, config)
}

/// Run one anonymization cycle with explicit plug-ins.
pub fn run_cycle_with(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    anonymizer: &dyn Anonymizer,
    config: CycleConfig,
) -> CycleOutcome {
    AnonymizationCycle::new(risk, anonymizer, config)
        .run(db, dict)
        .expect("cycle converges on harness datasets")
}

/// Synthesize `count` ownership edges among the identifiers of `db`
/// (Figure 7d: "increasing number of inferred control relationships").
/// Edges carry majority fractions so each one induces a control link; the
/// endpoints are drawn uniformly so chains and small groups emerge.
pub fn synthetic_ownership(
    db: &MicrodataDb,
    id_attr: &str,
    count: usize,
    seed: u64,
) -> OwnershipGraph {
    synthetic_ownership_focused(db, id_attr, count, seed, &[], 0.0)
}

/// Like [`synthetic_ownership`], but a fraction `focus_prob` of edge
/// endpoints is drawn from `focus_rows`. The paper's relationships are
/// *inferred from the data* among real survey companies, and holding
/// structures concentrate on the statistically unusual firms — exactly the
/// risky tuples — which is what makes the propagation of Figure 7d bite
/// ("relationships disclose many cases that deserve anonymization").
pub fn synthetic_ownership_focused(
    db: &MicrodataDb,
    id_attr: &str,
    count: usize,
    seed: u64,
    focus_rows: &[usize],
    focus_prob: f64,
) -> OwnershipGraph {
    let ids: Vec<&Value> = db.column(id_attr).expect("id column exists");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B05_E55E);
    let mut graph = OwnershipGraph::new();
    if ids.len() < 2 {
        return graph;
    }
    let pick = |rng: &mut StdRng| -> usize {
        if !focus_rows.is_empty() && rng.gen_bool(focus_prob) {
            focus_rows[rng.gen_range(0..focus_rows.len())]
        } else {
            rng.gen_range(0..ids.len())
        }
    };
    for _ in 0..count {
        let a = pick(&mut rng);
        let mut b = pick(&mut rng);
        while b == a {
            b = rng.gen_range(0..ids.len());
        }
        let w = rng.gen_range(0.51..0.95);
        graph.add_edge(ids[a].clone(), ids[b].clone(), w);
    }
    graph
}

/// Measure the wall-clock seconds of a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Read a committed `BENCH_*.json` baseline and return the `median_s` of
/// the line matching `bench` and `mode`.
///
/// Every failure mode gets its own human-readable message (missing file,
/// unreadable file, no JSON line matching, matching line without a usable
/// median) so the CI perf gates can fail with a clear diagnosis instead
/// of a panic — re-run the bench binary without `--baseline` to
/// regenerate the file.
pub fn read_baseline_median(path: &str, bench: &str, mode: &str) -> Result<f64, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(format!(
                "baseline file '{path}' not found — regenerate it by running the bench without --baseline"
            ));
        }
        Err(e) => return Err(format!("cannot read baseline '{path}': {e}")),
    };
    let mut parsed_any = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = vadasa_core::obs::json::parse(line) else {
            continue;
        };
        parsed_any = true;
        if v.get("bench").and_then(|b| b.as_str()) == Some(bench)
            && v.get("mode").and_then(|m| m.as_str()) == Some(mode)
        {
            return match v.get("median_s").and_then(|m| m.as_f64()) {
                Some(m) if m > 0.0 => Ok(m),
                Some(m) => Err(format!(
                    "baseline '{path}' has a non-positive median_s ({m}) for bench '{bench}' mode '{mode}'"
                )),
                None => Err(format!(
                    "baseline '{path}' entry for bench '{bench}' mode '{mode}' lacks a numeric median_s"
                )),
            };
        }
    }
    if parsed_any {
        Err(format!(
            "baseline '{path}' has no entry for bench '{bench}' mode '{mode}' — regenerate it"
        ))
    } else {
        Err(format!(
            "baseline '{path}' is malformed (no JSON lines parsed) — regenerate it"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::prelude::KAnonymity;
    use vadasa_datagen::fixtures::local_suppression_fig5a;

    #[test]
    fn table_rendering_aligns_columns() {
        let out = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn paper_cycle_runs_on_fig5() {
        let (db, dict) = local_suppression_fig5a();
        let risk = KAnonymity::new(2);
        let out = run_paper_cycle(&db, &dict, &risk, paper_cycle_config());
        assert_eq!(out.final_risky, 0);
        assert!(out.nulls_injected >= 1);
    }

    #[test]
    fn synthetic_ownership_has_requested_edges() {
        let (db, _) = local_suppression_fig5a();
        let g = synthetic_ownership(&db, "Id", 5, 1);
        assert_eq!(g.edge_count(), 5);
        // all edges are majority stakes → at least one control link
        assert!(!g.control_closure().is_empty());
    }

    #[test]
    fn time_it_returns_value_and_elapsed() {
        let (v, secs) = time_it(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn baseline_reader_distinguishes_failure_modes() {
        // missing file
        let err = read_baseline_median("/nonexistent/BENCH.json", "x", "y").unwrap_err();
        assert!(err.contains("not found"), "{err}");

        let dir = std::env::temp_dir().join("vadasa-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();

        // malformed file (no JSON lines at all)
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "this is not json\nneither is this\n").unwrap();
        let err = read_baseline_median(bad.to_str().unwrap(), "x", "y").unwrap_err();
        assert!(err.contains("malformed"), "{err}");

        // valid file without the requested entry
        let sparse = dir.join("sparse.json");
        std::fs::write(
            &sparse,
            "{\"bench\":\"other\",\"mode\":\"cold\",\"median_s\":1.0}\n",
        )
        .unwrap();
        let err = read_baseline_median(sparse.to_str().unwrap(), "cycle.e2e", "warm").unwrap_err();
        assert!(err.contains("no entry"), "{err}");

        // matching entry without a usable median
        let nan = dir.join("nan.json");
        std::fs::write(
            &nan,
            "{\"bench\":\"cycle.e2e\",\"mode\":\"warm\",\"median_s\":0.0}\n",
        )
        .unwrap();
        let err = read_baseline_median(nan.to_str().unwrap(), "cycle.e2e", "warm").unwrap_err();
        assert!(err.contains("non-positive"), "{err}");

        // the happy path
        let good = dir.join("good.json");
        std::fs::write(
            &good,
            "{\"bench\":\"cycle.e2e\",\"mode\":\"warm\",\"median_s\":0.125}\n",
        )
        .unwrap();
        let m = read_baseline_median(good.to_str().unwrap(), "cycle.e2e", "warm").unwrap();
        assert!((m - 0.125).abs() < 1e-12);
    }
}
