//! Read-only inspection of a journaled run's directory — the library
//! behind the `vadasa_status` binary.
//!
//! [`read_status`] decodes the write-ahead journal without replaying or
//! truncating anything: it scans frames with the same total decoder
//! recovery uses ([`vadasa_core::journal::record::decode_frame`]) and
//! folds them into a [`JobStatus`] — run identity from `Begin`, committed
//! totals from the last `Commit`, the newest snapshot horizon, the
//! rows-at-risk trajectory from `Progress` samples (fitted into a
//! [`ProgressEstimate`]), and the `Degraded`/`Finished` markers. Because
//! it never opens the file for writing, it is safe to run *while the job
//! is still running* — a torn tail (a frame the writer is mid-append on)
//! is reported as `torn_bytes`, exactly as recovery would see it.

use std::path::{Path, PathBuf};
use vadasa_core::colstore::{self, WARM_STATS_ARTIFACT};
use vadasa_core::journal::record::{decode_frame, JournalRecord, MAGIC};
use vadasa_core::journal::JOURNAL_FILE;
use vadasa_core::obs::json::Json;
use vadasa_core::progress::{self, ProgressEstimate};

/// Why a journal directory could not be inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatusError {
    /// The journal file could not be read.
    Io {
        /// Path that failed.
        path: PathBuf,
        /// Rendered I/O error.
        message: String,
    },
    /// The file exists but does not start with the journal magic.
    NotAJournal {
        /// Path of the alien file.
        path: PathBuf,
    },
}

impl std::fmt::Display for StatusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatusError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            StatusError::NotAJournal { path } => {
                write!(f, "{} is not a Vada-SA journal", path.display())
            }
        }
    }
}

impl std::error::Error for StatusError {}

/// The newest durable snapshot the journal references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStatus {
    /// Snapshot file name, relative to the journal directory.
    pub file: String,
    /// Completed iterations the snapshot covers.
    pub iterations: u64,
    /// Whether the file is actually present on disk right now.
    pub present: bool,
}

/// Freshness of the persisted warm-state artifact
/// (`cycle.warmstats.vart`) relative to the journal — exactly the test a
/// resuming cycle applies before seeding warm state from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmFreshness {
    /// No artifact on disk — normal for the in-memory backend, or a
    /// file-backed run that has not snapshotted yet.
    Absent,
    /// The artifact decodes, its fingerprint matches the journal's, and
    /// it covers exactly the committed iterations: a resume would seed
    /// warm state straight from disk.
    Fresh {
        /// Iterations the artifact covers (= journal commit horizon).
        iterations: u64,
    },
    /// The artifact decodes but its iteration stamp disagrees with the
    /// journal's last commit; a resume would ignore it and regroup cold.
    Stale {
        /// Iterations the artifact covers.
        iterations: u64,
        /// Iterations the journal has committed.
        committed: u64,
    },
    /// The artifact was refused by the total decoder (corrupt, alien
    /// magic, future version, fingerprint mismatch, short read …); a
    /// resume would fall back cold.
    Unreadable {
        /// Rendered structured refusal.
        message: String,
    },
}

impl WarmFreshness {
    /// One-word rendering for table cells: `none`, `fresh`, `stale` or
    /// `refused`.
    pub fn word(&self) -> &'static str {
        match self {
            WarmFreshness::Absent => "none",
            WarmFreshness::Fresh { .. } => "fresh",
            WarmFreshness::Stale { .. } => "stale",
            WarmFreshness::Unreadable { .. } => "refused",
        }
    }
}

/// Everything a monitor can learn about a journaled run without touching
/// it. All fields come from decoded journal records; `Option`s are `None`
/// when the corresponding record has not been written (yet).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Path of the journal file that was read.
    pub journal_path: PathBuf,
    /// Total bytes in the journal file.
    pub journal_bytes: u64,
    /// Well-formed records decoded.
    pub records: u64,
    /// Bytes after the last well-formed frame (a torn tail: either the
    /// writer is mid-append or the run crashed inside a write).
    pub torn_bytes: u64,
    /// Record-format version from `Begin`.
    pub format_version: Option<u32>,
    /// Run fingerprint from `Begin`.
    pub fingerprint: Option<u64>,
    /// Risk-measure name from `Begin`.
    pub measure: Option<String>,
    /// Anonymizer name from `Begin`.
    pub anonymizer: Option<String>,
    /// Input rows from `Begin`.
    pub rows: Option<u64>,
    /// Completed iterations after the last `Commit`.
    pub committed_iterations: u64,
    /// Running totals from the last `Commit`.
    pub nulls_injected: u64,
    /// Running recoding total from the last `Commit`.
    pub recodings: u64,
    /// Initially-risky tuple count from the last `Commit`.
    pub initial_risky: u64,
    /// Exhausted tuple count from the last `Commit`.
    pub exhausted: u64,
    /// `Action` records decoded in total.
    pub actions_total: u64,
    /// `Action` records decoded after the newest `Snapshot` record
    /// (the replay distance a recovery would have to cover).
    pub actions_since_snapshot: u64,
    /// Actions per iteration ordinal — the *realized* batch size series.
    /// A one-tuple run shows `1` everywhere; a batched run shows how many
    /// rows each iteration actually anonymized.
    pub batch_sizes: Vec<u64>,
    /// The newest snapshot the journal references, if any.
    pub snapshot: Option<SnapshotStatus>,
    /// Freshness of the persisted warm-state artifact vs the journal.
    pub warm: WarmFreshness,
    /// Rows-at-risk trajectory from the `Progress` samples, in order.
    pub rows_at_risk: Vec<u64>,
    /// Least-squares convergence estimate over the trajectory.
    pub estimate: Option<ProgressEstimate>,
    /// Trigger string of the last `Degraded` marker, if any.
    pub degraded: Option<String>,
    /// `converged` flag of the last `Finished` marker, if any.
    pub finished: Option<bool>,
}

impl JobStatus {
    /// One-word run state: `finished`, `degraded` or `running`.
    pub fn state(&self) -> &'static str {
        if self.finished.is_some() {
            "finished"
        } else if self.degraded.is_some() {
            "degraded"
        } else {
            "running"
        }
    }

    /// Render the status as aligned human-readable text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "journal   {} — {} byte(s), {} record(s){}",
            self.journal_path.display(),
            self.journal_bytes,
            self.records,
            match self.format_version {
                Some(v) => format!(", format v{v}"),
                None => String::new(),
            }
        );
        if let (Some(m), Some(a)) = (&self.measure, &self.anonymizer) {
            let _ = writeln!(
                out,
                "run       {m} + {a} over {} row(s) (fingerprint {:016x})",
                self.rows.unwrap_or(0),
                self.fingerprint.unwrap_or(0)
            );
        }
        let _ = writeln!(
            out,
            "committed {} iteration(s) — {} null(s), {} recoding(s), {} initially risky, {} exhausted",
            self.committed_iterations,
            self.nulls_injected,
            self.recodings,
            self.initial_risky,
            self.exhausted
        );
        if !self.batch_sizes.is_empty() {
            let last = *self.batch_sizes.last().unwrap_or(&0);
            let max = self.batch_sizes.iter().copied().max().unwrap_or(0);
            let mean = self.actions_total as f64 / self.batch_sizes.len() as f64;
            let _ = writeln!(
                out,
                "batch     {mean:.1} action(s)/iteration (last {last}, max {max}) over {} acting iteration(s)",
                self.batch_sizes.len()
            );
        }
        match &self.snapshot {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "snapshot  {} @ {} iteration(s) ({}), {} action(s) to replay past it",
                    s.file,
                    s.iterations,
                    if s.present { "present" } else { "MISSING" },
                    self.actions_since_snapshot
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "snapshot  none — {} action(s) to replay from the start",
                    self.actions_total
                );
            }
        }
        match &self.warm {
            WarmFreshness::Absent => {}
            WarmFreshness::Fresh { iterations } => {
                let _ = writeln!(
                    out,
                    "warm      {WARM_STATS_ARTIFACT}.vart fresh @ {iterations} iteration(s) — a resume seeds warm state from disk"
                );
            }
            WarmFreshness::Stale {
                iterations,
                committed,
            } => {
                let _ = writeln!(
                    out,
                    "warm      {WARM_STATS_ARTIFACT}.vart STALE — artifact @ {iterations} iteration(s) vs journal @ {committed}; a resume regroups cold"
                );
            }
            WarmFreshness::Unreadable { message } => {
                let _ = writeln!(
                    out,
                    "warm      {WARM_STATS_ARTIFACT}.vart REFUSED ({message}); a resume regroups cold"
                );
            }
        }
        if let Some(e) = &self.estimate {
            let eta = match e.eta_iterations {
                Some(0) => "converged".to_string(),
                Some(n) => format!("~{n} iteration(s) left"),
                None => "no downward trend".to_string(),
            };
            let band = match e.eta_band() {
                Some((lo, hi)) => format!(", band {lo}..={hi}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "progress  {} row(s) at risk, trend {:+.2}/iteration, {eta} (confidence {:.0}%{band})",
                e.rows_at_risk,
                e.trend,
                e.confidence * 100.0
            );
        }
        let state = match (self.finished, &self.degraded) {
            (Some(true), _) => "finished (converged)".to_string(),
            (Some(false), _) => "finished (stopped above threshold)".to_string(),
            (None, Some(trigger)) => format!("degraded: {trigger}"),
            (None, None) => "running".to_string(),
        };
        let _ = writeln!(out, "state     {state}");
        if self.torn_bytes > 0 {
            let _ = writeln!(
                out,
                "tail      {} torn byte(s) after the last valid frame",
                self.torn_bytes
            );
        }
        out
    }

    /// Render the status as a single JSON object.
    pub fn to_json(&self) -> Json {
        let opt_str = |s: &Option<String>| match s {
            Some(s) => Json::Str(s.clone()),
            None => Json::Null,
        };
        let opt_num = |n: Option<u64>| match n {
            Some(n) => Json::Num(n as f64),
            None => Json::Null,
        };
        let progress = match &self.estimate {
            Some(e) => Json::Obj(vec![
                ("rows_at_risk".into(), Json::Num(e.rows_at_risk as f64)),
                ("trend".into(), Json::Num(e.trend)),
                ("eta_iterations".into(), opt_num(e.eta_iterations)),
                ("confidence".into(), Json::Num(e.confidence)),
                (
                    "eta_band".into(),
                    match e.eta_band() {
                        Some((lo, hi)) => {
                            Json::Arr(vec![Json::Num(lo as f64), Json::Num(hi as f64)])
                        }
                        None => Json::Null,
                    },
                ),
            ]),
            None => Json::Null,
        };
        let snapshot = match &self.snapshot {
            Some(s) => Json::Obj(vec![
                ("file".into(), Json::Str(s.file.clone())),
                ("iterations".into(), Json::Num(s.iterations as f64)),
                ("present".into(), Json::Bool(s.present)),
            ]),
            None => Json::Null,
        };
        let warm = {
            let mut members: Vec<(String, Json)> =
                vec![("state".into(), Json::Str(self.warm.word().into()))];
            match &self.warm {
                WarmFreshness::Absent => {}
                WarmFreshness::Fresh { iterations } => {
                    members.push(("iterations".into(), Json::Num(*iterations as f64)));
                }
                WarmFreshness::Stale {
                    iterations,
                    committed,
                } => {
                    members.push(("iterations".into(), Json::Num(*iterations as f64)));
                    members.push(("committed".into(), Json::Num(*committed as f64)));
                }
                WarmFreshness::Unreadable { message } => {
                    members.push(("error".into(), Json::Str(message.clone())));
                }
            }
            Json::Obj(members)
        };
        Json::Obj(vec![
            ("warm_artifact".into(), warm),
            (
                "journal".into(),
                Json::Obj(vec![
                    (
                        "path".into(),
                        Json::Str(self.journal_path.display().to_string()),
                    ),
                    ("bytes".into(), Json::Num(self.journal_bytes as f64)),
                    ("records".into(), Json::Num(self.records as f64)),
                    ("torn_bytes".into(), Json::Num(self.torn_bytes as f64)),
                    (
                        "format_version".into(),
                        opt_num(self.format_version.map(u64::from)),
                    ),
                ]),
            ),
            (
                "run".into(),
                Json::Obj(vec![
                    ("measure".into(), opt_str(&self.measure)),
                    ("anonymizer".into(), opt_str(&self.anonymizer)),
                    ("rows".into(), opt_num(self.rows)),
                    (
                        "fingerprint".into(),
                        match self.fingerprint {
                            Some(fp) => Json::Str(format!("{fp:016x}")),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            (
                "committed".into(),
                Json::Obj(vec![
                    (
                        "iterations".into(),
                        Json::Num(self.committed_iterations as f64),
                    ),
                    (
                        "nulls_injected".into(),
                        Json::Num(self.nulls_injected as f64),
                    ),
                    ("recodings".into(), Json::Num(self.recodings as f64)),
                    ("initial_risky".into(), Json::Num(self.initial_risky as f64)),
                    ("exhausted".into(), Json::Num(self.exhausted as f64)),
                ]),
            ),
            (
                "actions".into(),
                Json::Obj(vec![
                    ("total".into(), Json::Num(self.actions_total as f64)),
                    (
                        "since_snapshot".into(),
                        Json::Num(self.actions_since_snapshot as f64),
                    ),
                    (
                        "per_iteration".into(),
                        Json::Arr(
                            self.batch_sizes
                                .iter()
                                .map(|&n| Json::Num(n as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("snapshot".into(), snapshot),
            (
                "rows_at_risk_series".into(),
                Json::Arr(
                    self.rows_at_risk
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            ("progress".into(), progress),
            ("state".into(), Json::Str(self.state().to_string())),
            (
                "converged".into(),
                match self.finished {
                    Some(b) => Json::Bool(b),
                    None => Json::Null,
                },
            ),
            ("degraded_trigger".into(), opt_str(&self.degraded)),
        ])
    }
}

/// Inspect the journal in `dir` read-only and fold it into a
/// [`JobStatus`]. Never writes, truncates or locks anything, and never
/// panics on hostile bytes — the frame decoder is total, and the first
/// undecodable frame simply ends the scan (its bytes are reported as the
/// torn tail).
pub fn read_status(dir: &Path) -> Result<JobStatus, StatusError> {
    let path = dir.join(JOURNAL_FILE);
    let bytes = std::fs::read(&path).map_err(|e| StatusError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC.as_slice() {
        // an empty or short file is a crash during creation — still not a
        // scannable journal
        return Err(StatusError::NotAJournal { path });
    }

    let mut status = JobStatus {
        journal_path: path,
        journal_bytes: bytes.len() as u64,
        records: 0,
        torn_bytes: 0,
        format_version: None,
        fingerprint: None,
        measure: None,
        anonymizer: None,
        rows: None,
        committed_iterations: 0,
        nulls_injected: 0,
        recodings: 0,
        initial_risky: 0,
        exhausted: 0,
        actions_total: 0,
        actions_since_snapshot: 0,
        batch_sizes: Vec::new(),
        snapshot: None,
        warm: WarmFreshness::Absent,
        rows_at_risk: Vec::new(),
        estimate: None,
        degraded: None,
        finished: None,
    };

    let mut offset = MAGIC.len();
    while offset < bytes.len() {
        let Ok((rec, next)) = decode_frame(&bytes, offset) else {
            break;
        };
        status.records += 1;
        match rec {
            JournalRecord::Begin {
                version,
                fingerprint,
                measure,
                anonymizer,
                rows,
            } => {
                status.format_version = Some(version);
                status.fingerprint = Some(fingerprint);
                status.measure = Some(measure);
                status.anonymizer = Some(anonymizer);
                status.rows = Some(rows);
            }
            JournalRecord::Action { iteration, .. } => {
                status.actions_total += 1;
                status.actions_since_snapshot += 1;
                let slot = iteration as usize;
                if status.batch_sizes.len() <= slot {
                    status.batch_sizes.resize(slot + 1, 0);
                }
                status.batch_sizes[slot] += 1;
            }
            JournalRecord::Commit {
                iterations,
                nulls_injected,
                recodings,
                initial_risky,
                exhausted,
            } => {
                status.committed_iterations = iterations;
                status.nulls_injected = nulls_injected;
                status.recodings = recodings;
                status.initial_risky = initial_risky;
                status.exhausted = exhausted;
            }
            JournalRecord::Snapshot { iterations, file } => {
                status.actions_since_snapshot = 0;
                let present = dir.join(&file).is_file();
                status.snapshot = Some(SnapshotStatus {
                    file,
                    iterations,
                    present,
                });
            }
            JournalRecord::Degraded { trigger } => status.degraded = Some(trigger),
            JournalRecord::Finished { converged } => status.finished = Some(converged),
            JournalRecord::Progress { rows_at_risk, .. } => {
                status.rows_at_risk.push(rows_at_risk);
            }
        }
        offset = next;
    }
    status.torn_bytes = (bytes.len() - offset) as u64;
    status.estimate = progress::estimate(&status.rows_at_risk);
    status.warm = warm_freshness(dir, status.fingerprint, status.committed_iterations);
    Ok(status)
}

/// Inspect the persisted warm-state artifact next to the journal,
/// applying the same vetting a resuming cycle does: framing, CRC,
/// version, fingerprint, and an exact iteration match against the last
/// journal commit. Read-only and total — hostile bytes become
/// [`WarmFreshness::Unreadable`], never a panic.
fn warm_freshness(dir: &Path, fingerprint: Option<u64>, committed: u64) -> WarmFreshness {
    let path = dir.join(format!("{WARM_STATS_ARTIFACT}.vart"));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return WarmFreshness::Absent,
        Err(e) => {
            return WarmFreshness::Unreadable {
                message: e.to_string(),
            }
        }
    };
    match colstore::decode_warm_stats(&bytes, fingerprint) {
        Ok(ws) if ws.iterations == committed => WarmFreshness::Fresh {
            iterations: ws.iterations,
        },
        Ok(ws) => WarmFreshness::Stale {
            iterations: ws.iterations,
            committed,
        },
        Err(e) => WarmFreshness::Unreadable {
            message: e.to_string(),
        },
    }
}

// --- jobs-root listing (vadasa_server fleets) ------------------------------

/// One job directory under a [`vadasa_server`] jobs root, as seen from
/// the outside: the durable marker (if the job reached a terminal
/// state), plus the same read-only journal inspection [`read_status`]
/// gives a single run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDirStatus {
    /// Job id (= directory name).
    pub id: String,
    /// `state.json` marker state (`done`/`failed`/`cancelled`/
    /// `interrupted`), when present.
    pub marker: Option<String>,
    /// Storage backend the job's manifest declares (`mem`/`file`);
    /// `None` when the manifest is missing or unreadable.
    pub storage: Option<String>,
    /// Structured error carried by a `failed` marker.
    pub error: Option<String>,
    /// Journal inspection; `None` when the job has not journaled yet.
    pub status: Option<JobStatus>,
    /// Why the journal could not be inspected (rendered), if it failed.
    pub status_error: Option<String>,
}

impl JobDirStatus {
    /// Best-effort one-word state: the durable marker wins, then the
    /// journal's own state, then `queued` (manifest but no journal yet).
    pub fn state(&self) -> &str {
        if let Some(m) = &self.marker {
            return m;
        }
        match &self.status {
            Some(s) => s.state(),
            None => "queued",
        }
    }
}

/// Scan a `vadasa_server` jobs root: every subdirectory with a
/// `job.json` manifest becomes one [`JobDirStatus`], sorted by id.
/// Read-only and safe against a live server.
pub fn read_jobs_root(root: &Path) -> Result<Vec<JobDirStatus>, StatusError> {
    let entries = std::fs::read_dir(root).map_err(|e| StatusError::Io {
        path: root.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join(vadasa_server::spec::MANIFEST_FILE).is_file())
        .collect();
    dirs.sort();
    let mut jobs = Vec::with_capacity(dirs.len());
    for dir in dirs {
        let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let (marker, mut error) = match vadasa_server::spec::Marker::read(&dir) {
            Ok(Some(m)) => (Some(m.state), m.error),
            Ok(None) => (None, None),
            Err(e) => (None, Some(format!("unreadable marker: {e}"))),
        };
        let storage = std::fs::read_to_string(dir.join(vadasa_server::spec::MANIFEST_FILE))
            .ok()
            .and_then(|text| vadasa_server::JobSpec::from_manifest_json(&text).ok())
            .map(|spec| spec.storage.as_str().to_string());
        let (status, status_error) = match read_status(&dir) {
            Ok(s) => (Some(s), None),
            // No journal yet is a normal queued job, not an error.
            Err(StatusError::Io { .. }) => (None, None),
            Err(e) => (None, Some(e.to_string())),
        };
        if error.is_none() {
            error = status_error.clone();
        }
        jobs.push(JobDirStatus {
            id,
            marker,
            storage,
            error,
            status,
            status_error,
        });
    }
    Ok(jobs)
}

/// Render a jobs-root listing as an aligned table.
pub fn render_jobs_table(jobs: &[JobDirStatus]) -> String {
    use std::fmt::Write as _;
    let mut rows: Vec<[String; 8]> = vec![[
        "JOB".into(),
        "STATE".into(),
        "STORAGE".into(),
        "WARM".into(),
        "ITER".into(),
        "AT-RISK".into(),
        "ETA".into(),
        "TORN".into(),
    ]];
    for j in jobs {
        let (warm, iter, at_risk, eta, torn) = match &j.status {
            Some(s) => (
                s.warm.word().to_string(),
                s.committed_iterations.to_string(),
                s.rows_at_risk
                    .last()
                    .map_or_else(|| "—".to_string(), |n| n.to_string()),
                match s.estimate.as_ref().and_then(|e| e.eta_band()) {
                    Some((lo, hi)) => format!("{lo}..={hi}"),
                    None => "—".to_string(),
                },
                s.torn_bytes.to_string(),
            ),
            None => ("—".into(), "—".into(), "—".into(), "—".into(), "—".into()),
        };
        rows.push([
            j.id.clone(),
            j.state().to_string(),
            j.storage.clone().unwrap_or_else(|| "—".into()),
            warm,
            iter,
            at_risk,
            eta,
            torn,
        ]);
    }
    let mut widths = [0usize; 8];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for row in &rows {
        for (i, (cell, w)) in row.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = w.saturating_sub(cell.chars().count());
            out.push_str(cell);
            for _ in 0..pad {
                out.push(' ');
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    for j in jobs {
        if let Some(e) = &j.error {
            let _ = writeln!(out, "{}: {e}", j.id);
        }
    }
    out
}

/// Render a jobs-root listing as one JSON object.
pub fn jobs_to_json(jobs: &[JobDirStatus]) -> Json {
    let arr = jobs
        .iter()
        .map(|j| {
            let mut members: Vec<(String, Json)> = vec![
                ("id".into(), Json::Str(j.id.clone())),
                ("state".into(), Json::Str(j.state().to_string())),
                (
                    "storage".into(),
                    match &j.storage {
                        Some(s) => Json::Str(s.clone()),
                        None => Json::Null,
                    },
                ),
            ];
            if let Some(e) = &j.error {
                members.push(("error".into(), Json::Str(e.clone())));
            }
            members.push((
                "journal".into(),
                match &j.status {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ));
            Json::Obj(members)
        })
        .collect();
    Json::Obj(vec![("jobs".into(), Json::Arr(arr))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vadalog::Value;
    use vadasa_core::anonymize::AnonymizationAction;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn fresh_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("vadasa-status-{}-{n}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_journal(dir: &Path, records: &[JournalRecord]) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&r.encode());
        }
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();
        bytes
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Begin {
                version: vadasa_core::journal::record::FORMAT_VERSION,
                fingerprint: 0xABCD,
                measure: "k-anonymity".into(),
                anonymizer: "local-suppression".into(),
                rows: 7,
            },
            JournalRecord::Progress {
                iteration: 0,
                rows_at_risk: 10,
            },
            JournalRecord::Action {
                iteration: 0,
                row: 1,
                risk_bits: 1.0f64.to_bits(),
                measure: "k-anonymity".into(),
                action: AnonymizationAction::Suppress {
                    row: 1,
                    attr: "Area".into(),
                    previous: Value::str("Roma"),
                },
            },
            JournalRecord::Commit {
                iterations: 1,
                nulls_injected: 1,
                recodings: 0,
                initial_risky: 10,
                exhausted: 0,
            },
            JournalRecord::Snapshot {
                iterations: 1,
                file: "snapshot-1.vsnap".into(),
            },
            JournalRecord::Progress {
                iteration: 1,
                rows_at_risk: 8,
            },
            JournalRecord::Action {
                iteration: 1,
                row: 2,
                risk_bits: 1.0f64.to_bits(),
                measure: "k-anonymity".into(),
                action: AnonymizationAction::Suppress {
                    row: 2,
                    attr: "Area".into(),
                    previous: Value::str("Roma"),
                },
            },
            JournalRecord::Commit {
                iterations: 2,
                nulls_injected: 2,
                recodings: 0,
                initial_risky: 10,
                exhausted: 0,
            },
            JournalRecord::Progress {
                iteration: 2,
                rows_at_risk: 6,
            },
            JournalRecord::Progress {
                iteration: 3,
                rows_at_risk: 4,
            },
        ]
    }

    #[test]
    fn folds_a_synthetic_journal() {
        let dir = fresh_dir("fold");
        write_journal(&dir, &sample_records());
        let s = read_status(&dir).unwrap();
        assert_eq!(s.records, 10);
        assert_eq!(s.torn_bytes, 0);
        assert_eq!(s.measure.as_deref(), Some("k-anonymity"));
        assert_eq!(s.rows, Some(7));
        assert_eq!(s.committed_iterations, 2);
        assert_eq!(s.nulls_injected, 2);
        assert_eq!(s.actions_total, 2);
        assert_eq!(s.actions_since_snapshot, 1);
        assert_eq!(s.batch_sizes, vec![1, 1], "one action in each iteration");
        assert!(s
            .render_text()
            .contains("batch     1.0 action(s)/iteration"));
        let snap = s.snapshot.as_ref().unwrap();
        assert_eq!(snap.file, "snapshot-1.vsnap");
        assert_eq!(snap.iterations, 1);
        assert!(!snap.present, "no snapshot file was written");
        assert_eq!(s.rows_at_risk, vec![10, 8, 6, 4]);
        let e = s.estimate.unwrap();
        assert_eq!(e.trend, -2.0);
        assert_eq!(e.eta_iterations, Some(2));
        assert_eq!(s.state(), "running");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let dir = fresh_dir("torn");
        let bytes = write_journal(&dir, &sample_records());
        // chop the last 3 bytes: the final Progress frame tears
        std::fs::write(dir.join(JOURNAL_FILE), &bytes[..bytes.len() - 3]).unwrap();
        let s = read_status(&dir).unwrap();
        assert_eq!(s.records, 9);
        assert!(s.torn_bytes > 0);
        assert_eq!(s.rows_at_risk, vec![10, 8, 6]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finished_and_degraded_markers_set_the_state() {
        let dir = fresh_dir("state");
        let mut recs = sample_records();
        recs.push(JournalRecord::Degraded {
            trigger: "deadline expired".into(),
        });
        write_journal(&dir, &recs);
        let s = read_status(&dir).unwrap();
        assert_eq!(s.state(), "degraded");
        assert_eq!(s.degraded.as_deref(), Some("deadline expired"));

        recs.push(JournalRecord::Finished { converged: true });
        write_journal(&dir, &recs);
        let s = read_status(&dir).unwrap();
        assert_eq!(s.state(), "finished");
        assert_eq!(s.finished, Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_alien_files_are_structured_errors() {
        let dir = fresh_dir("missing");
        assert!(matches!(read_status(&dir), Err(StatusError::Io { .. })));
        std::fs::write(dir.join(JOURNAL_FILE), b"PNG").unwrap();
        assert!(matches!(
            read_status(&dir),
            Err(StatusError::NotAJournal { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_soup_never_panics() {
        let dir = fresh_dir("soup");
        let mut x = 0x1234_5678u64;
        for len in 0..128usize {
            let mut soup = MAGIC.to_vec();
            soup.extend((0..len).map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            }));
            std::fs::write(dir.join(JOURNAL_FILE), &soup).unwrap();
            let s = read_status(&dir).unwrap();
            assert_eq!(s.journal_bytes as usize, soup.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_artifact_freshness_tracks_the_journal() {
        use vadasa_core::maybe_match::GroupStats;
        let dir = fresh_dir("warm");
        write_journal(&dir, &sample_records());
        let stats = GroupStats {
            count: vec![2, 2],
            weight_sum: vec![3.0, 3.0],
        };
        let art = dir.join(format!("{WARM_STATS_ARTIFACT}.vart"));

        // No artifact: the in-memory backend's normal shape.
        assert_eq!(read_status(&dir).unwrap().warm, WarmFreshness::Absent);

        // Fresh: fingerprint and iteration stamp both match the journal
        // (sample_records commits through iteration 2, fingerprint 0xABCD).
        std::fs::write(&art, colstore::encode_warm_stats(2, 0xABCD, &stats)).unwrap();
        let s = read_status(&dir).unwrap();
        assert_eq!(s.warm, WarmFreshness::Fresh { iterations: 2 });
        assert!(s
            .render_text()
            .contains("warm      cycle.warmstats.vart fresh @ 2"));

        // Stale: valid artifact, but lagging the journal commit horizon.
        std::fs::write(&art, colstore::encode_warm_stats(1, 0xABCD, &stats)).unwrap();
        let s = read_status(&dir).unwrap();
        assert_eq!(
            s.warm,
            WarmFreshness::Stale {
                iterations: 1,
                committed: 2
            }
        );
        assert!(s.render_text().contains("STALE"));

        // Refused: another run's fingerprint is a structured refusal …
        std::fs::write(&art, colstore::encode_warm_stats(2, 0xBEEF, &stats)).unwrap();
        let s = read_status(&dir).unwrap();
        assert!(
            matches!(s.warm, WarmFreshness::Unreadable { .. }),
            "{:?}",
            s.warm
        );
        // … and so is outright garbage (never a panic).
        std::fs::write(&art, b"NOTAVADA garbage").unwrap();
        let s = read_status(&dir).unwrap();
        assert!(matches!(s.warm, WarmFreshness::Unreadable { .. }));
        let json = s.to_json().to_string();
        assert!(json.contains("\"warm_artifact\""), "{json}");
        assert!(json.contains("\"state\":\"refused\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_rendering_round_trips_through_the_parser() {
        let dir = fresh_dir("json");
        write_journal(&dir, &sample_records());
        let s = read_status(&dir).unwrap();
        let text = s.to_json().to_string();
        let parsed = vadasa_core::obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("committed")
                .and_then(|c| c.get("iterations"))
                .and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("progress")
                .and_then(|p| p.get("eta_iterations"))
                .and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            parsed.get("state").and_then(|v| v.as_str()),
            Some("running")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_root_listing_covers_done_failed_and_queued() {
        use vadasa_server::{JobServer, JobSpec, MeasureSpec, ServerConfig, ShutdownMode};
        let root = fresh_dir("jobs-root");
        let server = JobServer::start(ServerConfig::new(&root)).unwrap();
        let spec = JobSpec::from_csv(
            "survey",
            "id,area,weight\n1,North,9\n2,North,2\n3,South,5\n4,South,1\n",
            MeasureSpec::KAnonymity(2),
        )
        .unwrap();
        server.submit("good", spec).unwrap();
        server
            .wait("good", std::time::Duration::from_secs(60))
            .unwrap();
        server.shutdown(ShutdownMode::Drain);
        // A hand-made queued job: manifest, no journal, no marker.
        let queued = root.join("later");
        std::fs::create_dir_all(&queued).unwrap();
        std::fs::write(
            queued.join(vadasa_server::spec::MANIFEST_FILE),
            "{\"name\":\"t\",\"csv\":\"a\\n1\\n\",\"categories\":{\"a\":\"identifier\"},\"measure\":\"re-identification\"}",
        )
        .unwrap();
        // A failed job: marker only.
        let failed = root.join("broken");
        std::fs::create_dir_all(&failed).unwrap();
        std::fs::write(
            failed.join(vadasa_server::spec::MANIFEST_FILE),
            "{\"name\":\"t\",\"csv\":\"a\\n1\\n\",\"categories\":{\"a\":\"identifier\"},\"measure\":\"re-identification\"}",
        )
        .unwrap();
        std::fs::write(
            failed.join("state.json"),
            "{\"state\":\"failed\",\"attempts\":2,\"error\":\"cycle: boom\",\"summary\":null}",
        )
        .unwrap();
        // A stray non-job directory is ignored.
        std::fs::create_dir_all(root.join("not-a-job")).unwrap();

        let jobs = read_jobs_root(&root).unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["broken", "good", "later"],
            "sorted, strays ignored"
        );
        let by_id = |id: &str| jobs.iter().find(|j| j.id == id).unwrap();
        assert_eq!(by_id("good").state(), "done");
        assert_eq!(by_id("good").storage.as_deref(), Some("mem"));
        assert!(by_id("good")
            .status
            .as_ref()
            .is_some_and(|s| s.finished == Some(true)));
        assert_eq!(by_id("broken").state(), "failed");
        assert_eq!(by_id("broken").error.as_deref(), Some("cycle: boom"));
        assert_eq!(by_id("later").state(), "queued");

        let table = render_jobs_table(&jobs);
        assert!(table.starts_with("JOB"), "{table}");
        assert!(table.contains("broken") && table.contains("cycle: boom"));
        let json = jobs_to_json(&jobs).to_string();
        assert!(json.contains("\"state\":\"queued\""), "{json}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
