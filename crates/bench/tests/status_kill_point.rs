//! Acceptance test for `vadasa_status`: kill a journaled run mid-flight,
//! read the journal with the read-only status scanner, and require the
//! convergence estimate to bracket the *actual* number of iterations the
//! resumed run still needed.
//!
//! The estimator's contract is `eta_band()`: the least-squares ETA plus a
//! slack that widens as the fit confidence drops. "Actual remaining
//! iterations" is measured from the resumed run's own profile — each
//! iteration record there is one evaluation performed after the kill
//! point, which is exactly the quantity the ETA predicts (iterations from
//! the last journal sample until the rows-at-risk series reaches its
//! end state).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use vadalog::Value;
use vadasa_bench::status::read_status;
use vadasa_core::cycle::{AnonymizationCycle, CycleConfig, CycleOutcome, StepGranularity};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::journal::record::{decode_frame, JournalRecord, MAGIC};
use vadasa_core::journal::{JournalConfig, JOURNAL_FILE};
use vadasa_core::model::MicrodataDb;
use vadasa_core::prelude::{KAnonymity, LocalSuppression};
use vadasa_core::risk::RiskMeasure;
use vadasa_datagen::generate_households;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("vadasa-status-kp-{}-{n}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The Fig. 5 table from the paper, categorized by hand.
fn fig5() -> (MicrodataDb, MetadataDictionary) {
    let mut db =
        MicrodataDb::new("fig5", ["Id", "Area", "Sector", "Employees", "ResRev", "W"]).unwrap();
    let rows = [
        ("099876", "Roma", "Textiles", "1000+", "0-30", 10),
        ("765389", "Roma", "Commerce", "1000+", "0-30", 20),
        ("231654", "Roma", "Commerce", "1000+", "0-30", 20),
        ("097302", "Roma", "Financial", "1000+", "0-30", 30),
        ("120967", "Roma", "Financial", "1000+", "0-30", 30),
        ("232498", "Milano", "Construction", "0-200", "60-90", 5),
        ("340901", "Torino", "Construction", "0-200", "60-90", 5),
    ];
    for (id, a, s, e, r, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(a),
            Value::str(s),
            Value::str(e),
            Value::str(r),
            Value::Int(w),
        ])
        .unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for a in ["Id", "Area", "Sector", "Employees", "ResRev", "W"] {
        dict.register_attr("fig5", a, "");
    }
    dict.set_category("fig5", "Id", Category::Identifier)
        .unwrap();
    for a in ["Area", "Sector", "Employees", "ResRev"] {
        dict.set_category("fig5", a, Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("fig5", "W", Category::Weight).unwrap();
    (db, dict)
}

fn run_journaled(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
    dir: &Path,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: Some(JournalConfig {
                snapshot_every: Some(2),
                ..JournalConfig::new(dir)
            }),
            ..config.clone()
        },
    )
    .run(db, dict)
    .expect("journaled run")
}

fn resume_journaled(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
    dir: &Path,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: Some(JournalConfig::new(dir)),
            ..config.clone()
        },
    )
    .resume(db, dict)
    .expect("resume")
}

/// Byte offset of the frame boundary just after the `n`-th `Commit`
/// record (1-based), plus the total number of commits in the journal.
fn commit_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut offset = MAGIC.len();
    while let Ok((rec, next)) = decode_frame(bytes, offset) {
        if matches!(rec, JournalRecord::Commit { .. }) {
            out.push(next);
        }
        offset = next;
    }
    out
}

fn copy_snapshots(from: &Path, to: &Path) {
    for e in fs::read_dir(from).expect("read dir").flatten() {
        let name = e.file_name();
        if name.to_string_lossy().ends_with(".vsnap") {
            fs::copy(e.path(), to.join(&name)).expect("copy snapshot");
        }
    }
}

/// The shared scenario: run to completion, kill at a mid-run commit
/// boundary, read the status, resume, and check the ETA band against the
/// resumed run's actual iteration count.
fn kill_read_resume_check(
    tag: &str,
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
) {
    let ref_dir = fresh_dir(&format!("{tag}-ref"));
    let full = run_journaled(db, dict, risk, config, &ref_dir);
    let bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal on disk");
    let commits = commit_boundaries(&bytes);
    assert!(
        commits.len() >= 3,
        "{tag}: workload too small for a mid-run kill ({} commits)",
        commits.len()
    );

    // Kill just past ~60% of the commits: enough trajectory behind the
    // estimator, enough run left for the prediction to be about anything.
    let m = ((commits.len() * 3).div_ceil(5))
        .max(2)
        .min(commits.len() - 1);
    let kill = commits[m - 1];

    let dir = fresh_dir(&format!("{tag}-kill"));
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), &bytes[..kill]).expect("write prefix");
    copy_snapshots(&ref_dir, &dir);

    // --- read-only status on the torn job ---
    let status = read_status(&dir).expect("status");
    assert_eq!(
        status.committed_iterations, m as u64,
        "{tag}: committed count"
    );
    assert_eq!(status.state(), "running", "{tag}: no finish marker yet");
    assert_eq!(
        status.rows_at_risk.len(),
        m,
        "{tag}: one Progress sample per commit"
    );
    if let Some(s) = &status.snapshot {
        assert!(s.present, "{tag}: referenced snapshot must exist on disk");
        assert!(s.iterations <= m as u64);
    }
    let estimate = status.estimate.expect("estimate from the trajectory");
    assert!(
        estimate.trend < 0.0,
        "{tag}: rows at risk should be falling mid-run, got {:+.3}",
        estimate.trend
    );
    let (lo, hi) = estimate
        .eta_band()
        .unwrap_or_else(|| panic!("{tag}: a falling trend must yield an ETA band: {estimate:?}"));

    // The JSON rendering carries the same numbers (what `vadasa_status
    // --json` prints).
    let json = vadasa_core::obs::json::parse(&status.to_json().to_string()).expect("json");
    assert_eq!(
        json.get("committed")
            .and_then(|c| c.get("iterations"))
            .and_then(|v| v.as_f64()),
        Some(m as f64)
    );
    assert_eq!(json.get("state").and_then(|v| v.as_str()), Some("running"));
    let band = json.get("progress").and_then(|p| p.get("eta_band"));
    assert!(band.is_some(), "{tag}: eta_band missing from JSON");

    // --- resume and measure the actual remaining iterations ---
    let resumed = resume_journaled(db, dict, risk, config, &dir);
    assert_eq!(
        resumed.iterations, full.iterations,
        "{tag}: resume diverged"
    );
    assert_eq!(
        resumed.nulls_injected, full.nulls_injected,
        "{tag}: resume diverged"
    );
    // Every iteration record in the resumed profile is one evaluation
    // performed after the kill point — the quantity the ETA predicts.
    let actual = resumed.profile.iterations.len() as u64;
    assert!(
        (lo..=hi).contains(&actual),
        "{tag}: actual remaining iterations {actual} outside ETA band {lo}..={hi} \
         (estimate {estimate:?}, series {:?})",
        status.rows_at_risk
    );

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn fig5_kill_point_status_brackets_actual_remaining_iterations() {
    // k = 3 makes every equivalence class of the 7-row table violate the
    // threshold, so the one-tuple-per-iteration run commits enough
    // iterations to kill in the middle of.
    let (db, dict) = fig5();
    let risk = KAnonymity::new(3);
    let config = CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        ..CycleConfig::default()
    };
    kill_read_resume_check("fig5", &db, &dict, &risk, &config);
}

#[test]
fn households_kill_point_status_brackets_actual_remaining_iterations() {
    let survey = generate_households(24, 0xC4A5);
    let risk = KAnonymity::new(3);
    let config = CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        ..CycleConfig::default()
    };
    kill_read_resume_check("households", &survey.db, &survey.dict, &risk, &config);
}

#[test]
fn finished_journal_reports_finished_state_and_zero_rows() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        ..CycleConfig::default()
    };
    let dir = fresh_dir("fig5-done");
    let outcome = run_journaled(&db, &dict, &risk, &config, &dir);
    let status = read_status(&dir).expect("status");
    assert_eq!(status.state(), "finished");
    assert_eq!(status.finished, Some(true));
    assert_eq!(status.committed_iterations, outcome.iterations as u64);
    // The finish boundary writes a last Progress sample: a converged run
    // reports its end state, not the last mid-run count.
    assert_eq!(status.rows_at_risk.last(), Some(&0));
    let estimate = status.estimate.expect("estimate");
    assert_eq!(estimate.rows_at_risk, 0);
    assert_eq!(estimate.eta_iterations, Some(0));
    let _ = fs::remove_dir_all(&dir);
}
