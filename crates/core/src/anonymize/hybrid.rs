//! Hybrid anonymization: global recoding when the hierarchy allows it,
//! local suppression otherwise.
//!
//! The paper ships the two methods separately and notes (§4.3) that
//! recoding "can be effectively applied to the entire microdata DB" while
//! suppression introduces uncertainty. Operationally the RDC wants both:
//! coarsen values that have a meaningful roll-up (geography, size bands)
//! and only fall back to `⊥` when no domain knowledge applies. This
//! anonymizer realizes that policy as a single plug-in for the cycle.

use super::{AnonymizationAction, AnonymizeError, Anonymizer, GlobalRecoding, LocalSuppression};
use crate::dictionary::MetadataDictionary;
use crate::model::MicrodataDb;

/// Recoding-first anonymizer with suppression fallback.
#[derive(Debug, Clone, Default)]
pub struct HybridAnonymizer {
    /// The recoding stage (carries the domain hierarchy).
    pub recoder: GlobalRecoding,
    /// The suppression fallback.
    pub suppressor: LocalSuppression,
}

impl HybridAnonymizer {
    /// Hybrid anonymizer over the given recoder; suppression uses the
    /// recoder's attribute-order heuristic.
    pub fn new(recoder: GlobalRecoding) -> Self {
        let suppressor = LocalSuppression::new(recoder.attr_order);
        HybridAnonymizer {
            recoder,
            suppressor,
        }
    }
}

impl Anonymizer for HybridAnonymizer {
    fn name(&self) -> &str {
        "hybrid-recode-then-suppress"
    }

    fn anonymize_step(
        &self,
        db: &mut MicrodataDb,
        dict: &MetadataDictionary,
        row: usize,
    ) -> Result<AnonymizationAction, AnonymizeError> {
        match self.recoder.anonymize_step(db, dict, row)? {
            AnonymizationAction::Exhausted { .. } => {
                // no roll-up available anywhere on this tuple: suppress
                self.suppressor.anonymize_step(db, dict, row)
            }
            action => Ok(action),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{italian_geography, AttributeOrder};
    use super::*;
    use crate::dictionary::Category;
    use crate::prelude::*;
    use vadalog::Value;

    fn mixed_db() -> (MicrodataDb, MetadataDictionary) {
        // Area has a hierarchy; Sector does not.
        let mut db = MicrodataDb::new("mix", ["id", "Area", "Sector", "w"]).unwrap();
        let rows = [
            ("a", "Milano", "Commerce", 50),
            ("b", "Torino", "Commerce", 50),
            ("c", "Roma", "Quarrying", 5), // unique sector, no roll-up
            ("d", "Roma", "Commerce", 60),
            ("e", "Roma", "Commerce", 60),
        ];
        for (id, area, sector, w) in rows {
            db.push_row(vec![
                Value::str(id),
                Value::str(area),
                Value::str(sector),
                Value::Int(w),
            ])
            .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "Area", "Sector", "w"] {
            dict.register_attr("mix", a, "");
        }
        dict.set_category("mix", "id", Category::Identifier)
            .unwrap();
        dict.set_category("mix", "Area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("mix", "Sector", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("mix", "w", Category::Weight).unwrap();
        (db, dict)
    }

    #[test]
    fn recodes_when_hierarchy_applies() {
        let (mut db, dict) = mixed_db();
        let anon = HybridAnonymizer::new(GlobalRecoding::new(italian_geography()));
        let action = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        assert!(matches!(action, AnonymizationAction::Recode { .. }));
    }

    #[test]
    fn falls_back_to_suppression() {
        let (mut db, dict) = mixed_db();
        // empty hierarchy → recoding always exhausted → suppression
        let anon = HybridAnonymizer::new(GlobalRecoding::default());
        let action = anon.anonymize_step(&mut db, &dict, 2).unwrap();
        assert!(matches!(action, AnonymizationAction::Suppress { .. }));
    }

    #[test]
    fn cycle_mixes_recodings_and_suppressions() {
        let (db, dict) = mixed_db();
        let risk = KAnonymity::new(2);
        let mut recoder = GlobalRecoding::new(italian_geography());
        recoder.attr_order = AttributeOrder::MostRiskyFirst;
        let anon = HybridAnonymizer::new(recoder);
        let out = AnonymizationCycle::new(&risk, &anon, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        assert_eq!(out.final_risky, 0);
        // tuple c's unique Quarrying sector has no roll-up, so at least one
        // suppression happens; Milano/Torino can merge via recoding
        assert!(out.recodings + out.nulls_injected > 0);
    }

    #[test]
    fn hybrid_preserves_more_information_than_pure_suppression() {
        let (db, dict) = mixed_db();
        let risk = KAnonymity::new(2);
        let hybrid = HybridAnonymizer::new(GlobalRecoding::new(italian_geography()));
        let h = AnonymizationCycle::new(&risk, &hybrid, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        let suppress_only = LocalSuppression::default();
        let s = AnonymizationCycle::new(&risk, &suppress_only, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        assert!(
            h.nulls_injected <= s.nulls_injected,
            "hybrid should not need more nulls ({} vs {})",
            h.nulls_injected,
            s.nulls_injected
        );
    }
}
