//! Local suppression with labelled nulls (paper Algorithm 7).
//!
//! For a tuple flagged by `anonymize(I)`, one non-null quasi-identifier is
//! replaced by a fresh labelled null `⊥_z`:
//!
//! ```text
//! Tuple(M, I, VSet), anonymize(I), Cat(M, A, Quasi-identifier),
//! VSet[A] is not null  →  ∃Z Tuple(M, I, (A, Z) ∪ (VSet \ (A, _)))
//! ```
//!
//! Under the maybe-match semantics the null widens the tuple's equivalence
//! group — and everyone else's it may now match — so a single suppression
//! can defuse several risky tuples at once (Figure 5).

use super::{candidate_attrs, AnonymizationAction, AnonymizeError, Anonymizer, AttributeOrder};
use crate::dictionary::MetadataDictionary;
use crate::model::MicrodataDb;

/// Local suppression anonymizer (Algorithm 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSuppression {
    /// Which quasi-identifier to suppress first.
    pub attr_order: AttributeOrder,
}

impl LocalSuppression {
    /// Local suppression with the given attribute-order heuristic.
    pub fn new(attr_order: AttributeOrder) -> Self {
        LocalSuppression { attr_order }
    }
}

impl Anonymizer for LocalSuppression {
    fn name(&self) -> &str {
        "local-suppression"
    }

    fn anonymize_step(
        &self,
        db: &mut MicrodataDb,
        dict: &MetadataDictionary,
        row: usize,
    ) -> Result<AnonymizationAction, AnonymizeError> {
        let candidates = candidate_attrs(db, dict, row, self.attr_order)?;
        let Some(attr) = candidates.into_iter().next() else {
            return Ok(AnonymizationAction::Exhausted { row });
        };
        let previous = db.value(row, &attr)?.clone();
        let null = db.fresh_null();
        db.set_value(row, &attr, null)?;
        Ok(AnonymizationAction::Suppress {
            row,
            attr,
            previous,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Category;
    use vadalog::Value;

    fn tiny() -> (MicrodataDb, MetadataDictionary) {
        let mut db = MicrodataDb::new("t", ["a", "b"]).unwrap();
        db.push_row(vec![Value::str("x"), Value::str("rare")])
            .unwrap();
        db.push_row(vec![Value::str("x"), Value::str("common")])
            .unwrap();
        db.push_row(vec![Value::str("x"), Value::str("common")])
            .unwrap();
        let mut dict = MetadataDictionary::new();
        dict.register_attr("t", "a", "");
        dict.register_attr("t", "b", "");
        dict.set_category("t", "a", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("t", "b", Category::QuasiIdentifier)
            .unwrap();
        (db, dict)
    }

    #[test]
    fn suppression_injects_fresh_null() {
        let (mut db, dict) = tiny();
        let action = LocalSuppression::default()
            .anonymize_step(&mut db, &dict, 0)
            .unwrap();
        match action {
            AnonymizationAction::Suppress {
                row,
                attr,
                previous,
            } => {
                assert_eq!(row, 0);
                assert_eq!(attr, "b"); // "rare" occurs once → most selective
                assert_eq!(previous, Value::str("rare"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(db.value(0, "b").unwrap().is_null());
        assert_eq!(db.null_cells(&[]), 1);
    }

    #[test]
    fn repeated_steps_exhaust_the_tuple() {
        let (mut db, dict) = tiny();
        let anon = LocalSuppression::default();
        let a1 = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        let a2 = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        assert!(matches!(a1, AnonymizationAction::Suppress { .. }));
        assert!(matches!(a2, AnonymizationAction::Suppress { .. }));
        let a3 = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        assert_eq!(a3, AnonymizationAction::Exhausted { row: 0 });
    }

    #[test]
    fn each_suppression_uses_a_distinct_null() {
        let (mut db, dict) = tiny();
        let anon = LocalSuppression::default();
        anon.anonymize_step(&mut db, &dict, 0).unwrap();
        anon.anonymize_step(&mut db, &dict, 1).unwrap();
        let n0 = db.value(0, "b").unwrap().clone();
        // row 1's most selective non-null attr after row 0's suppression:
        // whichever was suppressed, nulls must be distinct labels
        let v1a = db.value(1, "a").unwrap().clone();
        let v1b = db.value(1, "b").unwrap().clone();
        let n1 = if v1a.is_null() { v1a } else { v1b };
        assert!(n0.is_null() && n1.is_null());
        assert_ne!(n0, n1);
    }

    #[test]
    fn schema_order_suppresses_first_attribute() {
        let (mut db, dict) = tiny();
        let anon = LocalSuppression::new(AttributeOrder::SchemaOrder);
        let action = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        assert!(matches!(
            action,
            AnonymizationAction::Suppress { ref attr, .. } if attr == "a"
        ));
    }
}
