//! Microaggregation for numeric attributes (Domingo-Ferrer & Mateo-Sanz),
//! the third classic SDC transform next to suppression and recoding.
//!
//! Numeric quasi-identifiers (income, turnover, exact employee counts)
//! cannot be rolled up through a categorical hierarchy, and suppressing
//! them wastes information. Microaggregation sorts the column, partitions
//! it into groups of at least `k` adjacent values and replaces every value
//! by its group mean: each group becomes a k-anonymous blur that *exactly
//! preserves the column total and mean* — the statistics-preserving spirit
//! of desideratum (v) in its purest form.
//!
//! The implementation is the univariate optimal-partition variant: groups
//! are contiguous in sorted order with sizes in `[k, 2k)`, the layout that
//! minimizes within-group variance for a fixed `k` up to the greedy
//! boundary choice.

use super::AnonymizeError;
use crate::dictionary::{Category, MetadataDictionary};
use crate::model::MicrodataDb;
use vadalog::Value;

/// Outcome of microaggregating one column.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroaggregationOutcome {
    /// Attribute that was transformed.
    pub attr: String,
    /// Number of groups formed.
    pub groups: usize,
    /// Sum of squared errors introduced (information loss proxy).
    pub sse: f64,
}

/// Microaggregate a numeric column in place with minimum group size `k`.
/// Non-numeric or null cells make the column ineligible (error).
pub fn microaggregate(
    db: &mut MicrodataDb,
    attr: &str,
    k: usize,
) -> Result<MicroaggregationOutcome, AnonymizeError> {
    let k = k.max(1);
    let values = db.numeric_column(attr).map_err(AnonymizeError::Model)?;
    let n = values.len();
    if n == 0 {
        return Ok(MicroaggregationOutcome {
            attr: attr.to_string(),
            groups: 0,
            sse: 0.0,
        });
    }

    // sort row indices by value
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));

    // contiguous groups of size k; the remainder (n mod k) is folded into
    // the last group so every group has size in [k, 2k)
    let group_count = (n / k).max(1);
    let mut sse = 0.0f64;
    for g in 0..group_count {
        let start = g * k;
        let end = if g == group_count - 1 { n } else { start + k };
        let members = &order[start..end];
        let mean: f64 = members.iter().map(|&i| values[i]).sum::<f64>() / members.len() as f64;
        for &i in members {
            sse += (values[i] - mean).powi(2);
            db.set_value(i, attr, Value::Float(mean))
                .map_err(AnonymizeError::Model)?;
        }
    }
    Ok(MicroaggregationOutcome {
        attr: attr.to_string(),
        groups: group_count,
        sse,
    })
}

/// Microaggregate every *numeric* quasi-identifier of the microdata DB.
/// Columns holding non-numeric values are skipped.
pub fn microaggregate_numeric_qis(
    db: &mut MicrodataDb,
    dict: &MetadataDictionary,
    k: usize,
) -> Result<Vec<MicroaggregationOutcome>, AnonymizeError> {
    let qis = dict.attrs_with_category(&db.name, Category::QuasiIdentifier)?;
    let mut out = Vec::new();
    for attr in qis {
        if db.numeric_column(&attr).is_ok() {
            out.push(microaggregate(db, &attr, k)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maybe_match::{group_stats, NullSemantics};

    fn numeric_db(values: &[i64]) -> MicrodataDb {
        let mut db = MicrodataDb::new("m", ["income"]).unwrap();
        for v in values {
            db.push_row(vec![Value::Int(*v)]).unwrap();
        }
        db
    }

    #[test]
    fn totals_and_means_are_preserved() {
        let mut db = numeric_db(&[10, 20, 30, 100, 110, 120, 5000]);
        let before: f64 = db.numeric_column("income").unwrap().iter().sum();
        microaggregate(&mut db, "income", 3).unwrap();
        let after: f64 = db.numeric_column("income").unwrap().iter().sum();
        assert!((before - after).abs() < 1e-9, "column total must not move");
    }

    #[test]
    fn every_group_reaches_k() {
        let mut db = numeric_db(&[1, 2, 3, 4, 5, 6, 7]);
        microaggregate(&mut db, "income", 3).unwrap();
        let col: Vec<Vec<Value>> = db
            .numeric_column("income")
            .unwrap()
            .into_iter()
            .map(|v| vec![Value::Float(v)])
            .collect();
        let stats = group_stats(&col, None, NullSemantics::Standard);
        assert!(
            stats.count.iter().all(|&c| c >= 3),
            "counts: {:?}",
            stats.count
        );
        // 7 values, k=3 → 2 groups (3 + 4)
        assert!(stats.count.contains(&4));
    }

    #[test]
    fn groups_are_contiguous_in_value_order() {
        // the outlier 5000 must not be averaged with the small values when
        // it can sit in the top group
        let mut db = numeric_db(&[10, 11, 12, 5000, 5001, 5002]);
        let out = microaggregate(&mut db, "income", 3).unwrap();
        assert_eq!(out.groups, 2);
        let col = db.numeric_column("income").unwrap();
        assert!((col[0] - 11.0).abs() < 1e-9);
        assert!((col[3] - 5001.0).abs() < 1e-9);
        // SSE is tiny because groups are homogeneous
        assert!(out.sse < 10.0);
    }

    #[test]
    fn k_of_one_is_identity() {
        let mut db = numeric_db(&[3, 1, 2]);
        let out = microaggregate(&mut db, "income", 1).unwrap();
        assert_eq!(out.sse, 0.0);
        assert_eq!(db.numeric_column("income").unwrap(), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn k_larger_than_table_forms_one_group() {
        let mut db = numeric_db(&[1, 2, 3]);
        let out = microaggregate(&mut db, "income", 10).unwrap();
        assert_eq!(out.groups, 1);
        let col = db.numeric_column("income").unwrap();
        assert!(col.iter().all(|&v| (v - 2.0).abs() < 1e-9));
    }

    #[test]
    fn non_numeric_column_is_an_error() {
        let mut db = MicrodataDb::new("m", ["area"]).unwrap();
        db.push_row(vec![Value::str("North")]).unwrap();
        assert!(microaggregate(&mut db, "area", 2).is_err());
    }

    #[test]
    fn numeric_qis_are_swept_categoricals_skipped() {
        use crate::dictionary::MetadataDictionary;
        let mut db = MicrodataDb::new("m", ["area", "income", "age"]).unwrap();
        for (a, i, g) in [("N", 10, 30), ("S", 20, 40), ("N", 30, 50), ("S", 40, 60)] {
            db.push_row(vec![Value::str(a), Value::Int(i), Value::Int(g)])
                .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["area", "income", "age"] {
            dict.register_attr("m", a, "");
            dict.set_category("m", a, Category::QuasiIdentifier)
                .unwrap();
        }
        let outcomes = microaggregate_numeric_qis(&mut db, &dict, 2).unwrap();
        let names: Vec<&str> = outcomes.iter().map(|o| o.attr.as_str()).collect();
        assert_eq!(names, vec!["income", "age"]);
        // categorical column untouched
        assert_eq!(db.value(0, "area").unwrap(), &Value::str("N"));
    }

    #[test]
    fn larger_k_increases_sse() {
        let values: Vec<i64> = (0..50).map(|i| i * 7 % 97).collect();
        let sse_of = |k: usize| {
            let mut db = numeric_db(&values);
            microaggregate(&mut db, "income", k).unwrap().sse
        };
        let s2 = sse_of(2);
        let s5 = sse_of(5);
        let s10 = sse_of(10);
        assert!(s2 <= s5 && s5 <= s10, "{s2} {s5} {s10}");
    }
}
