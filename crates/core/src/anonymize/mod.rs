//! Anonymization methods (paper §4.3, Algorithms 7 and 8).
//!
//! An [`Anonymizer`] applies **one minimal step** to a risky tuple: the
//! anonymization cycle then re-evaluates risk, so each threshold violation
//! removes the least information possible (preemptive, active and
//! statistics-preserving by construction). Two methods ship off the shelf,
//! as in the paper:
//!
//! - [`LocalSuppression`] — replace one quasi-identifier value with a fresh
//!   labelled null (Algorithm 7);
//! - [`GlobalRecoding`] — climb the domain hierarchy and coarsen a value
//!   *everywhere* it occurs (Algorithm 8).

mod hybrid;
mod local;
mod microagg;
mod recode;

pub use hybrid::HybridAnonymizer;
pub use local::LocalSuppression;
pub use microagg::{microaggregate, microaggregate_numeric_qis, MicroaggregationOutcome};
pub use recode::{band_hierarchy, italian_geography, DomainHierarchy, GlobalRecoding};

use crate::dictionary::{DictionaryError, MetadataDictionary};
use crate::model::{MicrodataDb, ModelError};
use std::fmt;
use vadalog::Value;

/// Which quasi-identifier of a risky tuple to act on first (paper §4.4,
/// "prioritization of quasi-identifiers").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AttributeOrder {
    /// The "most risky first" greedy strategy as the paper describes it:
    /// "the strategy itself would rely on a Vadalog program computing the
    /// risk, in order to take informed decisions". For each candidate
    /// attribute we compute the equivalence-class size the tuple would
    /// have after suppressing it (matching on the remaining
    /// quasi-identifiers, null-tolerantly) and act on the attribute giving
    /// the **widest lift** — in Figure 5a this suppresses
    /// `Sector = Textiles` for tuple 1, which "removes any sample unique
    /// of the tuple, which then occurs with frequency 5".
    #[default]
    MostRiskyFirst,
    /// A cheaper proxy: act on the attribute whose value is most selective
    /// (smallest value frequency in its own column).
    MostSelectiveFirst,
    /// Schema order: first candidate attribute wins. Mirrors an unguided
    /// binding order and serves as the ablation baseline.
    SchemaOrder,
}

/// The concrete change an anonymization step performed.
#[derive(Debug, Clone, PartialEq)]
pub enum AnonymizationAction {
    /// A single cell was replaced by a labelled null.
    Suppress {
        /// Row index.
        row: usize,
        /// Attribute name.
        attr: String,
        /// The suppressed constant.
        previous: Value,
    },
    /// A value was rolled up to its parent across the whole column.
    Recode {
        /// Attribute name.
        attr: String,
        /// Original (finer) value.
        from: Value,
        /// Replacement (coarser) value.
        to: Value,
        /// Number of cells rewritten.
        rows_affected: usize,
    },
    /// The tuple cannot be anonymized further (e.g. every quasi-identifier
    /// is already suppressed, or no hierarchy step applies).
    Exhausted {
        /// Row index.
        row: usize,
    },
}

/// Anonymization failures.
#[derive(Debug)]
pub enum AnonymizeError {
    /// Dictionary lookup failed.
    Dictionary(DictionaryError),
    /// Microdata access failed.
    Model(ModelError),
}

impl fmt::Display for AnonymizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnonymizeError::Dictionary(e) => write!(f, "{e}"),
            AnonymizeError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnonymizeError {}

impl From<DictionaryError> for AnonymizeError {
    fn from(e: DictionaryError) -> Self {
        AnonymizeError::Dictionary(e)
    }
}
impl From<ModelError> for AnonymizeError {
    fn from(e: ModelError) -> Self {
        AnonymizeError::Model(e)
    }
}

/// A pluggable anonymization method: the `anonymize` atom of Algorithm 2.
pub trait Anonymizer {
    /// Name used in audit logs.
    fn name(&self) -> &str;

    /// Apply one minimal anonymization step to `row`, returning what was
    /// done. Implementations must guarantee *progress or exhaustion*: a
    /// sequence of steps on the same tuple eventually returns
    /// [`AnonymizationAction::Exhausted`].
    fn anonymize_step(
        &self,
        db: &mut MicrodataDb,
        dict: &MetadataDictionary,
        row: usize,
    ) -> Result<AnonymizationAction, AnonymizeError>;
}

/// Rank a tuple's candidate quasi-identifiers according to `order`.
/// Returns attribute names, most preferred first; attributes whose cell is
/// already a labelled null are excluded.
pub(crate) fn candidate_attrs(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    row: usize,
    order: AttributeOrder,
) -> Result<Vec<String>, AnonymizeError> {
    let qis = dict.quasi_identifiers(&db.name)?;
    let mut candidates: Vec<String> = Vec::new();
    for attr in &qis {
        if !db.value(row, attr)?.is_null() {
            candidates.push(attr.clone());
        }
    }
    match order {
        AttributeOrder::SchemaOrder => Ok(candidates),
        AttributeOrder::MostSelectiveFirst => {
            // frequency of this row's value within each candidate column
            let mut keyed: Vec<(usize, String)> = Vec::with_capacity(candidates.len());
            for attr in candidates {
                let v = db.value(row, &attr)?.clone();
                let freq = db.column(&attr)?.into_iter().filter(|x| **x == v).count();
                keyed.push((freq, attr));
            }
            keyed.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            Ok(keyed.into_iter().map(|(_, a)| a).collect())
        }
        AttributeOrder::MostRiskyFirst => {
            // widest lift: class size after suppressing each candidate
            // (match on the remaining quasi-identifiers, null-tolerantly),
            // largest first. Ties break toward the rarer value so the
            // behaviour degrades gracefully to MostSelectiveFirst.
            //
            // Single pass over the table: a row contributes to candidate
            // `j`'s lift iff its only quasi-identifier mismatch with the
            // target (if any) is at position `j`.
            use crate::maybe_match::{values_match, NullSemantics};
            let cols: Vec<usize> = qis
                .iter()
                .map(|q| db.attr_position(q))
                .collect::<Result<_, _>>()?;
            let target = db.row(row)?.to_vec();
            let mut lift = vec![0usize; qis.len()];
            let mut exact_and_all = vec![0usize; qis.len()]; // rows matching everywhere
            let mut value_freq = vec![0usize; qis.len()];
            for r in db.iter_rows() {
                let mut mismatch: Option<usize> = None;
                let mut multi = false;
                for (qi_idx, &c) in cols.iter().enumerate() {
                    if !values_match(&r[c], &target[c], NullSemantics::MaybeMatch) {
                        if mismatch.is_some() {
                            multi = true;
                        }
                        mismatch = Some(qi_idx);
                    }
                    if r[c] == target[c] {
                        value_freq[qi_idx] += 1;
                    }
                }
                if multi {
                    continue;
                }
                match mismatch {
                    None => {
                        for e in exact_and_all.iter_mut() {
                            *e += 1;
                        }
                    }
                    Some(j) => lift[j] += 1,
                }
            }
            let mut keyed: Vec<(usize, usize, String)> = Vec::with_capacity(candidates.len());
            for attr in candidates {
                let j = qis.iter().position(|q| *q == attr).expect("attr is a QI");
                keyed.push((lift[j] + exact_and_all[j], value_freq[j], attr));
            }
            keyed.sort_by(|a, b| {
                b.0.cmp(&a.0)
                    .then_with(|| a.1.cmp(&b.1))
                    .then_with(|| a.2.cmp(&b.2))
            });
            Ok(keyed.into_iter().map(|(_, _, a)| a).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Category;

    fn fig5a() -> (MicrodataDb, MetadataDictionary) {
        let mut db =
            MicrodataDb::new("fig5", ["Id", "Area", "Sector", "Employees", "ResRev"]).unwrap();
        let rows = [
            ("099876", "Roma", "Textiles", "1000+", "0-30"),
            ("765389", "Roma", "Commerce", "1000+", "0-30"),
            ("231654", "Roma", "Commerce", "1000+", "0-30"),
            ("097302", "Roma", "Financial", "1000+", "0-30"),
            ("120967", "Roma", "Financial", "1000+", "0-30"),
            ("232498", "Milano", "Construction", "0-200", "60-90"),
            ("340901", "Torino", "Construction", "0-200", "60-90"),
        ];
        for (id, a, s, e, r) in rows {
            db.push_row(vec![
                Value::str(id),
                Value::str(a),
                Value::str(s),
                Value::str(e),
                Value::str(r),
            ])
            .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["Id", "Area", "Sector", "Employees", "ResRev"] {
            dict.register_attr("fig5", a, "");
        }
        dict.set_category("fig5", "Id", Category::Identifier)
            .unwrap();
        for a in ["Area", "Sector", "Employees", "ResRev"] {
            dict.set_category("fig5", a, Category::QuasiIdentifier)
                .unwrap();
        }
        (db, dict)
    }

    #[test]
    fn most_selective_first_picks_textiles_for_tuple_1() {
        let (db, dict) = fig5a();
        let order = candidate_attrs(&db, &dict, 0, AttributeOrder::MostSelectiveFirst).unwrap();
        assert_eq!(order[0], "Sector"); // Textiles occurs once
    }

    #[test]
    fn schema_order_keeps_declaration_order() {
        let (db, dict) = fig5a();
        let order = candidate_attrs(&db, &dict, 0, AttributeOrder::SchemaOrder).unwrap();
        assert_eq!(order, vec!["Area", "Sector", "Employees", "ResRev"]);
    }

    #[test]
    fn null_cells_are_not_candidates() {
        let (mut db, dict) = fig5a();
        let n = db.fresh_null();
        db.set_value(0, "Sector", n).unwrap();
        let order = candidate_attrs(&db, &dict, 0, AttributeOrder::MostSelectiveFirst).unwrap();
        assert!(!order.contains(&"Sector".to_string()));
        assert_eq!(order.len(), 3);
    }
}
