//! Global recoding over a domain hierarchy (paper Algorithm 8).
//!
//! Besides suppression, disclosure risk can be controlled by *coarsening*
//! values using domain knowledge stored in the KB:
//!
//! ```text
//! Att(I&G, Area).  TypeOf(Area, City).  SubTypeOf(City, Region).
//! InstOf(Milano, City).  InstOf(North, Region).  IsA(Milano, North).
//! ```
//!
//! For a risky tuple, a quasi-identifier's value is replaced by its parent
//! in the hierarchy — `Milano → North` — and, because the recoding is
//! *global*, every other occurrence of the value in the column is rewritten
//! too (Figure 5b: both `Milano` and `Torino` become `North`, merging
//! tuples 6 and 7 into one equivalence class). Recoding is inherently
//! recursive: several roll-ups may be needed before the risk drops.

use super::{candidate_attrs, AnonymizationAction, AnonymizeError, Anonymizer, AttributeOrder};
use crate::dictionary::MetadataDictionary;
use crate::model::MicrodataDb;
use std::collections::HashMap;
use vadalog::Value;

/// Domain knowledge: value-level `IsA` edges plus type-level structure.
///
/// The hierarchy mirrors the paper's KB facts: `TypeOf` assigns a type to
/// an attribute, `SubTypeOf` orders types from finer to coarser, `InstOf`
/// types each value, and `IsA` links a value to its coarser parent.
#[derive(Debug, Clone, Default)]
pub struct DomainHierarchy {
    /// attribute name → its (finest) type.
    attr_type: HashMap<String, String>,
    /// finer type → coarser type (`SubTypeOf`).
    super_type: HashMap<String, String>,
    /// value → its type (`InstOf`).
    inst_of: HashMap<Value, String>,
    /// value → parent values (`IsA`); usually one parent per level.
    is_a: HashMap<Value, Vec<Value>>,
}

impl DomainHierarchy {
    /// Empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// `TypeOf(attr, ty)`.
    pub fn set_attr_type(&mut self, attr: impl Into<String>, ty: impl Into<String>) {
        self.attr_type.insert(attr.into(), ty.into());
    }

    /// `SubTypeOf(finer, coarser)`.
    pub fn set_super_type(&mut self, finer: impl Into<String>, coarser: impl Into<String>) {
        self.super_type.insert(finer.into(), coarser.into());
    }

    /// `InstOf(value, ty)`.
    pub fn set_instance(&mut self, value: Value, ty: impl Into<String>) {
        self.inst_of.insert(value, ty.into());
    }

    /// `IsA(child, parent)`.
    pub fn add_is_a(&mut self, child: Value, parent: Value) {
        self.is_a.entry(child).or_default().push(parent);
    }

    /// Register a full `child → parent` edge in one call: types the child
    /// and parent and records the `IsA` link.
    pub fn link(
        &mut self,
        child: Value,
        child_ty: impl Into<String>,
        parent: Value,
        parent_ty: impl Into<String>,
    ) {
        let child_ty = child_ty.into();
        let parent_ty = parent_ty.into();
        self.set_instance(child.clone(), child_ty.clone());
        self.set_instance(parent.clone(), parent_ty.clone());
        self.set_super_type(child_ty, parent_ty);
        self.add_is_a(child, parent);
    }

    /// Type declared for an attribute, if any.
    pub fn attr_type(&self, attr: &str) -> Option<&str> {
        self.attr_type.get(attr).map(|s| s.as_str())
    }

    /// One roll-up step per Algorithm 8: for value `v` of type `X`, return
    /// the parent `Z` with `IsA(v, Z)` and `InstOf(Z, Y)` where
    /// `SubTypeOf(X, Y)`.
    pub fn roll_up(&self, v: &Value) -> Option<Value> {
        let ty = self.inst_of.get(v)?;
        let coarser = self.super_type.get(ty)?;
        self.is_a
            .get(v)?
            .iter()
            .find(|p| self.inst_of.get(*p).map(|t| t == coarser).unwrap_or(false))
            .cloned()
    }

    /// Height of `v` in the hierarchy: number of roll-ups until a root.
    pub fn height(&self, v: &Value) -> usize {
        let mut h = 0;
        let mut cur = v.clone();
        while let Some(p) = self.roll_up(&cur) {
            h += 1;
            cur = p;
            if h > 64 {
                break; // cyclic KB guard
            }
        }
        h
    }
}

/// Global recoding anonymizer (Algorithm 8).
#[derive(Debug, Clone, Default)]
pub struct GlobalRecoding {
    /// The domain hierarchy driving roll-ups.
    pub hierarchy: DomainHierarchy,
    /// Which quasi-identifier to recode first.
    pub attr_order: AttributeOrder,
}

impl GlobalRecoding {
    /// Global recoding over the given hierarchy.
    pub fn new(hierarchy: DomainHierarchy) -> Self {
        GlobalRecoding {
            hierarchy,
            attr_order: AttributeOrder::default(),
        }
    }
}

impl Anonymizer for GlobalRecoding {
    fn name(&self) -> &str {
        "global-recoding"
    }

    fn anonymize_step(
        &self,
        db: &mut MicrodataDb,
        dict: &MetadataDictionary,
        row: usize,
    ) -> Result<AnonymizationAction, AnonymizeError> {
        // Among the candidate attributes, use the first whose value can be
        // rolled up.
        for attr in candidate_attrs(db, dict, row, self.attr_order)? {
            let from = db.value(row, &attr)?.clone();
            let Some(to) = self.hierarchy.roll_up(&from) else {
                continue;
            };
            // global: rewrite every occurrence in the column (indices
            // first — the borrowed column view ends before the writes)
            let rows_to_change: Vec<usize> = db
                .column(&attr)?
                .into_iter()
                .enumerate()
                .filter(|(_, v)| **v == from)
                .map(|(r, _)| r)
                .collect();
            for &r in &rows_to_change {
                db.set_value(r, &attr, to.clone())?;
            }
            return Ok(AnonymizationAction::Recode {
                attr,
                from,
                to,
                rows_affected: rows_to_change.len(),
            });
        }
        Ok(AnonymizationAction::Exhausted { row })
    }
}

/// Merge two band labels: `"0-30" + "30-60" → "0-60"`, `"60-90" + "90+"
/// → "60+"`; anything unparsable joins with `∪`.
fn merge_bands(a: &str, b: &str) -> String {
    let lo = a.split('-').next().map(str::trim);
    let hi_plus = b.ends_with('+');
    let hi = if hi_plus {
        None
    } else {
        b.rsplit('-').next().map(str::trim)
    };
    match (lo, hi, hi_plus) {
        (Some(lo), _, true) if lo.parse::<f64>().is_ok() => format!("{lo}+"),
        (Some(lo), Some(hi), false) if lo.parse::<f64>().is_ok() && hi.parse::<f64>().is_ok() => {
            format!("{lo}-{hi}")
        }
        _ => format!("{a}∪{b}"),
    }
}

/// Build a generalization hierarchy for an ordered sequence of band values
/// (e.g. revenue shares `["0-30", "30-60", "60-90", "90+"]`): each level
/// merges adjacent pairs until a single `*` root remains, so global
/// recoding can coarsen banded numeric attributes step by step.
pub fn band_hierarchy(attr: &str, bands: &[&str]) -> DomainHierarchy {
    let mut h = DomainHierarchy::new();
    let base_ty = format!("{attr}-L0");
    h.set_attr_type(attr, base_ty.clone());
    let mut level: Vec<String> = bands.iter().map(|b| b.to_string()).collect();
    let mut level_no = 0usize;
    for b in &level {
        h.set_instance(Value::str(b), base_ty.clone());
    }
    while level.len() > 1 {
        let child_ty = format!("{attr}-L{level_no}");
        let parent_ty = format!("{attr}-L{}", level_no + 1);
        h.set_super_type(child_ty, parent_ty.clone());
        let mut next: Vec<String> = Vec::new();
        let mut i = 0;
        while i < level.len() {
            let parent = if i + 1 < level.len() {
                merge_bands(&level[i], &level[i + 1])
            } else {
                level[i].clone()
            };
            // a singleton tail still needs a *distinct* parent label so the
            // hierarchy keeps making progress
            let parent = if next.len() + 1 == 1 && level.len() <= 2 && i + 1 >= level.len() {
                parent
            } else if i + 1 >= level.len() && parent == level[i] {
                format!("{parent}·")
            } else {
                parent
            };
            h.set_instance(Value::str(&parent), parent_ty.clone());
            h.add_is_a(Value::str(&level[i]), Value::str(&parent));
            if i + 1 < level.len() {
                h.add_is_a(Value::str(&level[i + 1]), Value::str(&parent));
            }
            next.push(parent);
            i += 2;
        }
        level = next;
        level_no += 1;
    }
    // root rolls up to "*"
    if let Some(root) = level.first() {
        let root_ty = format!("{attr}-L{level_no}");
        h.set_super_type(root_ty, format!("{attr}-top"));
        h.set_instance(Value::str("*"), format!("{attr}-top"));
        h.add_is_a(Value::str(root), Value::str("*"));
    }
    h
}

/// Build the paper's Italian-geography example hierarchy (Figure 5 /
/// Algorithm 8 narrative): cities roll up to regions, regions to country.
pub fn italian_geography() -> DomainHierarchy {
    let mut h = DomainHierarchy::new();
    h.set_attr_type("Area", "City");
    for (city, region) in [
        ("Milano", "North"),
        ("Torino", "North"),
        ("Venezia", "North"),
        ("Roma", "Center"),
        ("Firenze", "Center"),
        ("Napoli", "South"),
        ("Bari", "South"),
        ("Palermo", "South"),
    ] {
        h.link(Value::str(city), "City", Value::str(region), "Region");
    }
    for region in ["North", "Center", "South"] {
        h.link(Value::str(region), "Region", Value::str("Italy"), "Country");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Category;

    fn fig5_db() -> (MicrodataDb, MetadataDictionary) {
        let mut db = MicrodataDb::new("fig5", ["Area", "Sector"]).unwrap();
        for (a, s) in [
            ("Milano", "Construction"),
            ("Torino", "Construction"),
            ("Roma", "Textiles"),
        ] {
            db.push_row(vec![Value::str(a), Value::str(s)]).unwrap();
        }
        let mut dict = MetadataDictionary::new();
        dict.register_attr("fig5", "Area", "");
        dict.register_attr("fig5", "Sector", "");
        dict.set_category("fig5", "Area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("fig5", "Sector", Category::QuasiIdentifier)
            .unwrap();
        (db, dict)
    }

    #[test]
    fn band_hierarchy_rolls_up_pairwise() {
        let h = band_hierarchy("ResRev", &["0-30", "30-60", "60-90", "90+"]);
        assert_eq!(h.roll_up(&Value::str("0-30")), Some(Value::str("0-60")));
        assert_eq!(h.roll_up(&Value::str("30-60")), Some(Value::str("0-60")));
        assert_eq!(h.roll_up(&Value::str("60-90")), Some(Value::str("60+")));
        assert_eq!(h.roll_up(&Value::str("90+")), Some(Value::str("60+")));
        // next level merges to the full range, then the * root
        assert_eq!(h.roll_up(&Value::str("0-60")), Some(Value::str("0+")));
        assert_eq!(h.roll_up(&Value::str("0+")), Some(Value::str("*")));
        assert_eq!(h.roll_up(&Value::str("*")), None);
        assert_eq!(h.height(&Value::str("0-30")), 3);
    }

    #[test]
    fn band_hierarchy_handles_odd_counts_and_unparsable_labels() {
        let h = band_hierarchy("x", &["low", "mid", "high"]);
        // low+mid merge with the ∪ join; high is carried up alone
        assert_eq!(h.roll_up(&Value::str("low")), Some(Value::str("low∪mid")));
        let carried = h.roll_up(&Value::str("high")).unwrap();
        // every chain eventually reaches the root
        let mut cur = Value::str("low");
        let mut steps = 0;
        while let Some(p) = h.roll_up(&cur) {
            cur = p;
            steps += 1;
            assert!(steps < 10, "no runaway chains");
        }
        assert_eq!(cur, Value::str("*"));
        drop(carried);
    }

    #[test]
    fn band_hierarchy_drives_global_recoding() {
        use crate::dictionary::Category;
        let mut db = MicrodataDb::new("b", ["ResRev"]).unwrap();
        for v in ["0-30", "30-60", "60-90", "90+"] {
            db.push_row(vec![Value::str(v)]).unwrap();
        }
        let mut dict = MetadataDictionary::new();
        dict.register_attr("b", "ResRev", "");
        dict.set_category("b", "ResRev", Category::QuasiIdentifier)
            .unwrap();
        let anon =
            GlobalRecoding::new(band_hierarchy("ResRev", &["0-30", "30-60", "60-90", "90+"]));
        anon.anonymize_step(&mut db, &dict, 0).unwrap();
        assert_eq!(db.value(0, "ResRev").unwrap(), &Value::str("0-60"));
        // recoding is global per *value*: the sibling band keeps its label
        // until its own step merges it into the same parent
        assert_eq!(db.value(1, "ResRev").unwrap(), &Value::str("30-60"));
        anon.anonymize_step(&mut db, &dict, 1).unwrap();
        assert_eq!(db.value(1, "ResRev").unwrap(), &Value::str("0-60"));
        assert_eq!(
            db.value(0, "ResRev").unwrap(),
            db.value(1, "ResRev").unwrap()
        );
    }

    #[test]
    fn roll_up_follows_type_hierarchy() {
        let h = italian_geography();
        assert_eq!(h.roll_up(&Value::str("Milano")), Some(Value::str("North")));
        assert_eq!(h.roll_up(&Value::str("North")), Some(Value::str("Italy")));
        assert_eq!(h.roll_up(&Value::str("Italy")), None);
        assert_eq!(h.roll_up(&Value::str("unknown")), None);
    }

    #[test]
    fn height_counts_roll_ups() {
        let h = italian_geography();
        assert_eq!(h.height(&Value::str("Milano")), 2);
        assert_eq!(h.height(&Value::str("North")), 1);
        assert_eq!(h.height(&Value::str("Italy")), 0);
    }

    #[test]
    fn recoding_is_global_across_the_column() {
        let (mut db, dict) = fig5_db();
        let anon = GlobalRecoding::new(italian_geography());
        // tuple 0 (Milano) is risky; Area is recodeable
        let action = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        match action {
            AnonymizationAction::Recode {
                attr,
                from,
                to,
                rows_affected,
            } => {
                assert_eq!(attr, "Area");
                assert_eq!(from, Value::str("Milano"));
                assert_eq!(to, Value::str("North"));
                assert_eq!(rows_affected, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // a second step on tuple 1 folds Torino into North: now both match
        anon.anonymize_step(&mut db, &dict, 1).unwrap();
        assert_eq!(db.value(0, "Area").unwrap(), db.value(1, "Area").unwrap());
    }

    #[test]
    fn recursive_roll_ups_climb_to_the_root() {
        let (mut db, dict) = fig5_db();
        let anon = GlobalRecoding::new(italian_geography());
        anon.anonymize_step(&mut db, &dict, 0).unwrap(); // Milano → North
        anon.anonymize_step(&mut db, &dict, 0).unwrap(); // North → Italy
        assert_eq!(db.value(0, "Area").unwrap(), &Value::str("Italy"));
        // exhausted on Area; Sector has no hierarchy → Exhausted overall
        let a = anon.anonymize_step(&mut db, &dict, 0).unwrap();
        assert_eq!(a, AnonymizationAction::Exhausted { row: 0 });
    }

    #[test]
    fn attribute_without_hierarchy_is_skipped() {
        let (mut db, dict) = fig5_db();
        let anon = GlobalRecoding::new(italian_geography());
        // Sector is most selective for tuple 2 (Textiles, unique), but has
        // no hierarchy: the step must fall through to Area.
        let action = anon.anonymize_step(&mut db, &dict, 2).unwrap();
        assert!(matches!(
            action,
            AnonymizationAction::Recode { ref attr, .. } if attr == "Area"
        ));
    }
}
