//! Business knowledge: risk propagation over linked respondents
//! (paper §4.4, Algorithm 9).
//!
//! Disclosure risk propagates along relationships between respondents:
//! re-identifying one company of a group makes re-identifying the others
//! easier. Vada-SA models the links with Vadalog rules — the flagship
//! example is *company control*:
//!
//! ```text
//! (1) Own(X, Y, W), W > 0.5                        → rel(X, Y)
//! (2) rel(X, Z), Own(Z, Y, W), msum(W, ⟨Z⟩) > 0.5  → rel(X, Y)
//! ```
//!
//! `X` controls `Y` directly (> 50 % of shares) or through the companies
//! it already controls (their holdings in `Y` jointly exceed 50 %). All
//! entities linked by control form a *cluster*, and every member inherits
//! the cluster risk — the probability that at least one member is
//! re-identified:
//!
//! ```text
//! ρ_cluster = 1 − ∏_{c ∈ cluster} (1 − ρ_c)
//! ```

use crate::model::{MicrodataDb, ModelError};
use crate::risk::{MicrodataView, RiskError, RiskMeasure, RiskReport};
use std::collections::{HashMap, HashSet};
use vadalog::Value;

/// A shareholding graph: `Own(owner, owned, fraction)` edges.
#[derive(Debug, Clone, Default)]
pub struct OwnershipGraph {
    edges: Vec<(Value, Value, f64)>,
    entities: HashSet<Value>,
}

impl OwnershipGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an ownership edge `owner --w--> owned` (`0 < w ≤ 1`).
    pub fn add_edge(&mut self, owner: Value, owned: Value, fraction: f64) {
        self.entities.insert(owner.clone());
        self.entities.insert(owned.clone());
        self.edges.push((owner, owned, fraction));
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Compute the company-control closure: the set of `(X, Y)` pairs such
    /// that `X` controls `Y` per the recursive rules above. The fixpoint
    /// iterates because gaining control of a company adds its holdings to
    /// the controller's aggregate.
    pub fn control_closure(&self) -> HashSet<(Value, Value)> {
        // holdings[y] = list of (owner, w)
        let mut holdings: HashMap<&Value, Vec<(&Value, f64)>> = HashMap::new();
        for (x, y, w) in &self.edges {
            holdings.entry(y).or_default().push((x, *w));
        }
        let mut controls: HashSet<(Value, Value)> = HashSet::new();
        // Rule 1: direct majority
        for (x, y, w) in &self.edges {
            if *w > 0.5 {
                controls.insert((x.clone(), y.clone()));
            }
        }
        // Rule 2 fixpoint: X controls Y if Σ_{Z ∈ {X} ∪ controlled(X)} w(Z→Y) > 0.5.
        // The monotonic sum takes at most one contribution per intermediary Z.
        loop {
            let mut to_add: Vec<(Value, Value)> = Vec::new();
            for y in holdings.keys() {
                let owners = &holdings[*y];
                // candidate controllers: anyone holding into y directly or
                // controlling someone who does
                let mut candidates: HashSet<&Value> = HashSet::new();
                for (z, _) in owners {
                    candidates.insert(z);
                    for (x, c) in &controls {
                        if c == *z {
                            candidates.insert(x);
                        }
                    }
                }
                for x in candidates {
                    if controls.contains(&((*x).clone(), (**y).clone())) {
                        continue;
                    }
                    let total: f64 = owners
                        .iter()
                        .filter(|(z, _)| {
                            *z == x || controls.contains(&((*x).clone(), (**z).clone()))
                        })
                        .map(|(_, w)| *w)
                        .sum();
                    if total > 0.5 && *x != **y {
                        to_add.push(((*x).clone(), (**y).clone()));
                    }
                }
            }
            let mut changed = false;
            for pair in to_add {
                changed |= controls.insert(pair);
            }
            if !changed {
                break;
            }
        }
        controls
    }

    /// Partition the entities into clusters: the connected components of
    /// the (symmetrized) control relation. Entities with no control link
    /// form singleton clusters.
    pub fn clusters(&self) -> Vec<Vec<Value>> {
        let controls = self.control_closure();
        let mut adj: HashMap<&Value, Vec<&Value>> = HashMap::new();
        for (x, y) in &controls {
            adj.entry(x).or_default().push(y);
            adj.entry(y).or_default().push(x);
        }
        let mut seen: HashSet<&Value> = HashSet::new();
        let mut out: Vec<Vec<Value>> = Vec::new();
        let mut entities: Vec<&Value> = self.entities.iter().collect();
        entities.sort();
        for e in entities {
            if seen.contains(e) {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![e];
            while let Some(cur) = stack.pop() {
                if !seen.insert(cur) {
                    continue;
                }
                component.push(cur.clone());
                if let Some(next) = adj.get(cur) {
                    stack.extend(next.iter().copied());
                }
            }
            component.sort();
            out.push(component);
        }
        out
    }
}

/// Maps microdata rows to cluster ids (rows outside any cluster keep a
/// singleton id of their own).
#[derive(Debug, Clone)]
pub struct ClusterMap {
    /// cluster id per row.
    pub row_cluster: Vec<usize>,
    /// number of clusters.
    pub cluster_count: usize,
}

impl ClusterMap {
    /// Build the map from an ownership graph and the microdata's identifier
    /// column: rows whose identifier belongs to the same control cluster
    /// share a cluster id.
    pub fn from_graph(
        graph: &OwnershipGraph,
        db: &MicrodataDb,
        id_attr: &str,
    ) -> Result<Self, ModelError> {
        let ids = db.column(id_attr)?;
        let clusters = graph.clusters();
        let mut entity_cluster: HashMap<&Value, usize> = HashMap::new();
        for (ci, members) in clusters.iter().enumerate() {
            for m in members {
                entity_cluster.insert(m, ci);
            }
        }
        let mut next = clusters.len();
        let mut row_cluster = Vec::with_capacity(ids.len());
        for id in &ids {
            match entity_cluster.get(id) {
                Some(&c) => row_cluster.push(c),
                None => {
                    row_cluster.push(next);
                    next += 1;
                }
            }
        }
        Ok(ClusterMap {
            row_cluster,
            cluster_count: next,
        })
    }

    /// Trivial map: every row is its own cluster.
    pub fn singletons(n: usize) -> Self {
        ClusterMap {
            row_cluster: (0..n).collect(),
            cluster_count: n,
        }
    }
}

/// Combine per-member risks into the cluster risk `1 − ∏ (1 − ρ_c)`.
pub fn combined_cluster_risk(risks: &[f64]) -> f64 {
    let product: f64 = risks.iter().map(|r| 1.0 - r.clamp(0.0, 1.0)).product();
    1.0 - product
}

/// A risk-measure adapter implementing Algorithm 9: evaluate the base
/// measure, then lift every tuple's risk to its cluster's combined risk.
pub struct ClusterRisk<'a> {
    /// Underlying per-tuple risk measure.
    pub base: &'a dyn RiskMeasure,
    /// Row → cluster assignment.
    pub clusters: ClusterMap,
}

impl<'a> ClusterRisk<'a> {
    /// Wrap `base` with cluster propagation.
    pub fn new(base: &'a dyn RiskMeasure, clusters: ClusterMap) -> Self {
        ClusterRisk { base, clusters }
    }
}

impl RiskMeasure for ClusterRisk<'_> {
    fn name(&self) -> &str {
        "cluster-risk"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        let mut report = self.base.evaluate(view)?;
        if self.clusters.row_cluster.len() != report.risks.len() {
            return Err(RiskError::View(format!(
                "cluster map covers {} rows, view has {}",
                self.clusters.row_cluster.len(),
                report.risks.len()
            )));
        }
        // per-cluster product of (1 - ρ)
        let mut cluster_safe = vec![1.0f64; self.clusters.cluster_count];
        for (row, &c) in self.clusters.row_cluster.iter().enumerate() {
            cluster_safe[c] *= 1.0 - report.risks[row].clamp(0.0, 1.0);
        }
        for (row, &c) in self.clusters.row_cluster.iter().enumerate() {
            let combined = 1.0 - cluster_safe[c];
            report.details[row].note = format!(
                "cluster {c}: own risk {:.4}, cluster risk {combined:.4}",
                report.risks[row]
            );
            report.risks[row] = combined;
        }
        report.measure = format!("cluster({})", self.base.name());
        Ok(report)
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        let c = *self.clusters.row_cluster.get(row)?;
        // combine the incremental base risks of every cluster member; if
        // the base measure has no incremental form, neither do we
        let mut safe = 1.0f64;
        for (member, &mc) in self.clusters.row_cluster.iter().enumerate() {
            if mc != c {
                continue;
            }
            let r = self.base.evaluate_tuple(view, member)?;
            safe *= 1.0 - r.clamp(0.0, 1.0);
        }
        Some(1.0 - safe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::risk::test_support::view_of;
    use crate::risk::KAnonymity;

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn direct_majority_control() {
        let mut g = OwnershipGraph::new();
        g.add_edge(v("a"), v("b"), 0.6);
        g.add_edge(v("a"), v("c"), 0.4);
        let ctrl = g.control_closure();
        assert!(ctrl.contains(&(v("a"), v("b"))));
        assert!(!ctrl.contains(&(v("a"), v("c"))));
    }

    #[test]
    fn joint_control_through_subsidiaries() {
        // a owns 60% of b; a owns 30% of c and b owns 30% of c:
        // a controls c through b (0.3 + 0.3 > 0.5)
        let mut g = OwnershipGraph::new();
        g.add_edge(v("a"), v("b"), 0.6);
        g.add_edge(v("a"), v("c"), 0.3);
        g.add_edge(v("b"), v("c"), 0.3);
        let ctrl = g.control_closure();
        assert!(ctrl.contains(&(v("a"), v("c"))));
        // b alone does not control c
        assert!(!ctrl.contains(&(v("b"), v("c"))));
    }

    #[test]
    fn control_is_transitively_extended() {
        // chain: a -0.6-> b -0.6-> c -0.6-> d; a controls all of them
        let mut g = OwnershipGraph::new();
        g.add_edge(v("a"), v("b"), 0.6);
        g.add_edge(v("b"), v("c"), 0.6);
        g.add_edge(v("c"), v("d"), 0.6);
        let ctrl = g.control_closure();
        for target in ["b", "c", "d"] {
            assert!(
                ctrl.contains(&(v("a"), v(target))),
                "a should control {target}"
            );
        }
    }

    #[test]
    fn clusters_group_linked_entities() {
        let mut g = OwnershipGraph::new();
        g.add_edge(v("a"), v("b"), 0.6);
        g.add_edge(v("x"), v("y"), 0.2); // no control
        let clusters = g.clusters();
        let ab = clusters.iter().find(|c| c.contains(&v("a"))).unwrap();
        assert!(ab.contains(&v("b")));
        let x = clusters.iter().find(|c| c.contains(&v("x"))).unwrap();
        assert_eq!(x.len(), 1);
    }

    #[test]
    fn combined_risk_formula() {
        assert!((combined_cluster_risk(&[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert_eq!(combined_cluster_risk(&[]), 0.0);
        assert_eq!(combined_cluster_risk(&[1.0, 0.0]), 1.0);
        // bounded above by 1 and below by the max member
        let risks = [0.2, 0.3, 0.4];
        let c = combined_cluster_risk(&risks);
        assert!((0.4..=1.0).contains(&c));
    }

    #[test]
    fn cluster_risk_lifts_members() {
        // rows 0 and 1 in one cluster; row 0 risky, row 1 safe under k-anon
        let view = view_of(vec![vec!["unique"], vec!["common"], vec!["common"]], None);
        let base = KAnonymity::new(2);
        let clusters = ClusterMap {
            row_cluster: vec![0, 0, 1],
            cluster_count: 2,
        };
        let wrapped = ClusterRisk::new(&base, clusters);
        let report = wrapped.evaluate(&view).unwrap();
        // cluster 0 combined risk = 1 - (1-1)(1-0) = 1 → both members risky
        assert_eq!(report.risks[0], 1.0);
        assert_eq!(report.risks[1], 1.0);
        assert_eq!(report.risks[2], 0.0);
    }

    #[test]
    fn cluster_map_from_graph_and_ids() {
        let mut db = MicrodataDb::new("m", ["id"]).unwrap();
        for id in ["a", "b", "z"] {
            db.push_row(vec![v(id)]).unwrap();
        }
        let mut g = OwnershipGraph::new();
        g.add_edge(v("a"), v("b"), 0.7);
        let map = ClusterMap::from_graph(&g, &db, "id").unwrap();
        assert_eq!(map.row_cluster[0], map.row_cluster[1]);
        assert_ne!(map.row_cluster[0], map.row_cluster[2]);
    }

    #[test]
    fn incremental_cluster_risk_matches_full_evaluation() {
        let view = view_of(
            vec![vec!["unique"], vec!["common"], vec!["common"], vec!["solo"]],
            None,
        );
        let base = KAnonymity::new(2);
        let clusters = ClusterMap {
            row_cluster: vec![0, 0, 1, 1],
            cluster_count: 2,
        };
        let wrapped = ClusterRisk::new(&base, clusters);
        let full = wrapped.evaluate(&view).unwrap();
        for row in 0..view.len() {
            let inc = wrapped.evaluate_tuple(&view, row).unwrap();
            assert!(
                (inc - full.risks[row]).abs() < 1e-12,
                "row {row}: incremental {inc} vs full {}",
                full.risks[row]
            );
        }
    }

    #[test]
    fn mismatched_cluster_map_is_an_error() {
        let view = view_of(vec![vec!["a"]], None);
        let base = KAnonymity::new(2);
        let wrapped = ClusterRisk::new(&base, ClusterMap::singletons(5));
        assert!(wrapped.evaluate(&view).is_err());
    }
}
