//! Attribute categorization by recursive application of experience
//! (paper §4.1, Algorithm 1).
//!
//! Before a microdata DB enters the anonymization cycle, each attribute
//! must be categorized as identifier / quasi-identifier / non-identifying /
//! weight. Vada-SA borrows categories from an *experience base* of
//! previously categorized attribute names through pluggable similarity
//! functions, feeds confirmed decisions back into the base (Rule 3), and
//! guards single-category assignment with an EGD (Rule 4) whose violations
//! are surfaced for human inspection.

use crate::dictionary::{Category, MetadataDictionary};
use std::collections::HashMap;
use std::fmt;

/// A pluggable attribute-name similarity (the `∼` of Algorithm 1, Rule 2).
pub trait Similarity {
    /// Name for diagnostics.
    fn name(&self) -> &str;
    /// Similarity in `[0, 1]`.
    fn score(&self, a: &str, b: &str) -> f64;
}

/// Case-sensitive exact match.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactMatch;

impl Similarity for ExactMatch {
    fn name(&self) -> &str {
        "exact"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    }
}

/// Case- and punctuation-insensitive match ("Residential Rev." ~
/// "residential_rev").
#[derive(Debug, Default, Clone, Copy)]
pub struct NormalizedMatch;

fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

impl Similarity for NormalizedMatch {
    fn name(&self) -> &str {
        "normalized"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        if normalize(a) == normalize(b) {
            1.0
        } else {
            0.0
        }
    }
}

/// Levenshtein similarity `1 − d(a, b) / max(|a|, |b|)` over normalized
/// names.
#[derive(Debug, Default, Clone, Copy)]
pub struct LevenshteinSimilarity;

/// Edit distance between two strings (classic DP, O(|a|·|b|)).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl Similarity for LevenshteinSimilarity {
    fn name(&self) -> &str {
        "levenshtein"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        let (a, b) = (normalize(a), normalize(b));
        let m = a.chars().count().max(b.chars().count());
        if m == 0 {
            return 1.0;
        }
        1.0 - levenshtein(&a, &b) as f64 / m as f64
    }
}

/// Token-set Jaccard similarity over words split on whitespace, `_`, `-`.
#[derive(Debug, Default, Clone, Copy)]
pub struct TokenJaccard;

impl Similarity for TokenJaccard {
    fn name(&self) -> &str {
        "token-jaccard"
    }
    fn score(&self, a: &str, b: &str) -> f64 {
        use std::collections::HashSet;
        let tokens = |s: &str| -> HashSet<String> {
            s.split(|c: char| c.is_whitespace() || c == '_' || c == '-' || c == '.')
                .filter(|t| !t.is_empty())
                .map(|t| t.to_lowercase())
                .collect()
        };
        let ta = tokens(a);
        let tb = tokens(b);
        if ta.is_empty() && tb.is_empty() {
            return 1.0;
        }
        let inter = ta.intersection(&tb).count() as f64;
        let union = ta.union(&tb).count() as f64;
        inter / union
    }
}

/// The experience base: attribute names with known categories
/// (`ExpBase(A, C)` facts).
#[derive(Debug, Clone, Default)]
pub struct ExperienceBase {
    entries: Vec<(String, Category)>,
}

impl ExperienceBase {
    /// Empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that attribute name `attr` has category `cat`.
    pub fn add(&mut self, attr: impl Into<String>, cat: Category) {
        self.entries.push((attr.into(), cat));
    }

    /// All entries.
    pub fn entries(&self) -> &[(String, Category)] {
        &self.entries
    }

    /// A reasonable seed base for financial survey data.
    pub fn financial_defaults() -> Self {
        let mut base = Self::new();
        for (a, c) in [
            ("id", Category::Identifier),
            ("fiscal code", Category::Identifier),
            ("ssn", Category::Identifier),
            ("vat number", Category::Identifier),
            ("company identifier", Category::Identifier),
            ("area", Category::QuasiIdentifier),
            ("region", Category::QuasiIdentifier),
            ("sector", Category::QuasiIdentifier),
            ("employees", Category::QuasiIdentifier),
            ("age", Category::QuasiIdentifier),
            ("revenue", Category::QuasiIdentifier),
            ("growth", Category::NonIdentifying),
            ("notes", Category::NonIdentifying),
            ("weight", Category::Weight),
            ("sampling weight", Category::Weight),
        ] {
            base.add(a, c);
        }
        base
    }
}

/// A categorization conflict: two experience entries matched one attribute
/// with different categories (the EGD of Rule 4 fired on constants).
#[derive(Debug, Clone, PartialEq)]
pub struct CategorizationConflict {
    /// The attribute being categorized.
    pub attr: String,
    /// First candidate with its similarity score and source entry.
    pub first: (Category, f64, String),
    /// Second candidate.
    pub second: (Category, f64, String),
}

impl fmt::Display for CategorizationConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attribute '{}' matches '{}' as {} (score {:.2}) but '{}' as {} (score {:.2})",
            self.attr,
            self.first.2,
            self.first.0,
            self.first.1,
            self.second.2,
            self.second.0,
            self.second.1
        )
    }
}

/// Outcome of a categorization pass.
#[derive(Debug, Clone)]
pub struct CategorizationReport {
    /// Per-attribute assigned category with the matched experience entry
    /// and score (None if nothing matched).
    pub assignments: HashMap<String, Option<(Category, String, f64)>>,
    /// EGD-style conflicts needing human inspection.
    pub conflicts: Vec<CategorizationConflict>,
}

/// The categorizer: experience base + similarity functions + threshold.
pub struct Categorizer {
    /// Experience base (grows via Rule 3 feedback when `consolidate`).
    pub experience: ExperienceBase,
    /// Similarity functions tried in order; the max score wins.
    pub similarities: Vec<Box<dyn Similarity>>,
    /// Minimum similarity for Rule 2 to fire.
    pub threshold: f64,
    /// Feed confirmed decisions back into the experience base (Rule 3).
    pub consolidate: bool,
}

impl Categorizer {
    /// Categorizer with the default similarity stack (exact, normalized,
    /// Levenshtein, token-Jaccard) and threshold 0.75.
    pub fn new(experience: ExperienceBase) -> Self {
        Categorizer {
            experience,
            similarities: vec![
                Box::new(ExactMatch),
                Box::new(NormalizedMatch),
                Box::new(LevenshteinSimilarity),
                Box::new(TokenJaccard),
            ],
            threshold: 0.75,
            consolidate: true,
        }
    }

    fn best_score(&self, a: &str, b: &str) -> f64 {
        self.similarities
            .iter()
            .map(|s| s.score(a, b))
            .fold(0.0, f64::max)
    }

    /// Categorize every registered attribute of `db_name` in the
    /// dictionary, writing winning categories back (Rule 2) and returning
    /// the report. Attributes already categorized are left alone.
    pub fn categorize(
        &mut self,
        dict: &mut MetadataDictionary,
        db_name: &str,
    ) -> Result<CategorizationReport, crate::dictionary::DictionaryError> {
        let attrs: Vec<String> = dict
            .attrs(db_name)?
            .iter()
            .filter(|(_, m)| m.category.is_none())
            .map(|(a, _)| a.clone())
            .collect();

        let mut assignments = HashMap::new();
        let mut conflicts = Vec::new();

        for attr in attrs {
            // score every experience entry
            let mut best: Option<(Category, f64, String)> = None;
            let mut conflicting: Option<(Category, f64, String)> = None;
            for (exp_attr, exp_cat) in self.experience.entries() {
                let score = self.best_score(&attr, exp_attr);
                if score < self.threshold {
                    continue;
                }
                match &best {
                    None => best = Some((*exp_cat, score, exp_attr.clone())),
                    Some((cat, s, _)) => {
                        if *exp_cat != *cat {
                            // EGD: two different categories for one attribute
                            if score > *s {
                                conflicting = best.clone();
                                best = Some((*exp_cat, score, exp_attr.clone()));
                            } else {
                                conflicting = Some((*exp_cat, score, exp_attr.clone()));
                            }
                        } else if score > *s {
                            best = Some((*exp_cat, score, exp_attr.clone()));
                        }
                    }
                }
            }
            if let (Some(b), Some(c)) = (&best, &conflicting) {
                conflicts.push(CategorizationConflict {
                    attr: attr.clone(),
                    first: (b.0, b.1, b.2.clone()),
                    second: (c.0, c.1, c.2.clone()),
                });
            }
            match &best {
                Some((cat, score, source)) => {
                    dict.set_category(db_name, &attr, *cat)?;
                    if self.consolidate {
                        // Rule 3: recursive feedback into the experience base
                        self.experience.add(attr.clone(), *cat);
                    }
                    assignments.insert(attr.clone(), Some((*cat, source.clone(), *score)));
                }
                None => {
                    assignments.insert(attr.clone(), None);
                }
            }
        }
        Ok(CategorizationReport {
            assignments,
            conflicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("area", "area"), 0);
    }

    #[test]
    fn similarity_functions_score_sensibly() {
        assert_eq!(ExactMatch.score("Area", "Area"), 1.0);
        assert_eq!(ExactMatch.score("Area", "area"), 0.0);
        assert_eq!(
            NormalizedMatch.score("Residential Rev.", "residential_rev"),
            1.0
        );
        assert!(LevenshteinSimilarity.score("employees", "employee") > 0.85);
        assert!(TokenJaccard.score("sampling weight", "weight") > 0.4);
        assert_eq!(TokenJaccard.score("a b", "a b"), 1.0);
    }

    #[test]
    fn categorization_borrows_from_experience() {
        let mut dict = MetadataDictionary::new();
        for a in ["Id", "Area", "Sector", "Weight"] {
            dict.register_attr("I&G", a, "");
        }
        let mut cat = Categorizer::new(ExperienceBase::financial_defaults());
        let report = cat.categorize(&mut dict, "I&G").unwrap();
        assert!(report.conflicts.is_empty());
        assert_eq!(
            dict.category("I&G", "Id").unwrap(),
            Some(Category::Identifier)
        );
        assert_eq!(
            dict.category("I&G", "Area").unwrap(),
            Some(Category::QuasiIdentifier)
        );
        assert_eq!(
            dict.category("I&G", "Weight").unwrap(),
            Some(Category::Weight)
        );
    }

    #[test]
    fn unmatched_attribute_stays_uncategorized() {
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "zzqqy", "");
        let mut cat = Categorizer::new(ExperienceBase::financial_defaults());
        let report = cat.categorize(&mut dict, "m").unwrap();
        assert_eq!(report.assignments["zzqqy"], None);
        assert_eq!(dict.category("m", "zzqqy").unwrap(), None);
    }

    #[test]
    fn consolidation_feeds_experience_back() {
        // Rule 3: once "Area" is categorized, "AreaCode" can borrow from it
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m1", "Geographic Area", "");
        let mut cat = Categorizer::new(ExperienceBase::financial_defaults());
        cat.threshold = 0.4;
        cat.categorize(&mut dict, "m1").unwrap();
        let grew = cat
            .experience
            .entries()
            .iter()
            .any(|(a, _)| a == "Geographic Area");
        assert!(grew, "experience base should have absorbed the decision");
    }

    #[test]
    fn conflicting_experience_is_reported() {
        let mut base = ExperienceBase::new();
        base.add("code", Category::Identifier);
        base.add("code", Category::QuasiIdentifier);
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "code", "");
        let mut cat = Categorizer::new(base);
        let report = cat.categorize(&mut dict, "m").unwrap();
        assert_eq!(report.conflicts.len(), 1);
        let text = report.conflicts[0].to_string();
        assert!(text.contains("code"));
    }

    #[test]
    fn already_categorized_attributes_are_skipped() {
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "area", "");
        dict.set_category("m", "area", Category::NonIdentifying)
            .unwrap();
        let mut cat = Categorizer::new(ExperienceBase::financial_defaults());
        cat.categorize(&mut dict, "m").unwrap();
        // manual decision not overwritten by experience
        assert_eq!(
            dict.category("m", "area").unwrap(),
            Some(Category::NonIdentifying)
        );
    }
}
