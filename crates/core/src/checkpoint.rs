//! Atomic snapshots of the anonymization cycle's working state.
//!
//! A checkpoint freezes everything the cycle needs to restart from an
//! iteration boundary: the working table (schema, rows, labelled-null
//! counter), the exhausted-tuple set, the running counters and the
//! [`WarmCycleProfile`]. Snapshots are written *atomically* — encode to
//! `<name>.tmp`, fsync, rename over the final name — so a crash mid-write
//! leaves either the previous snapshot or a temp file recovery ignores,
//! never a half-written snapshot under the final name. The payload is
//! CRC-guarded like a journal record; a corrupt snapshot is detected and
//! skipped, falling back to an older snapshot or full replay from the
//! original table.

use crate::cycle::WarmCycleProfile;
use crate::journal::io::{IoMode, OpenSink};
use crate::journal::record::{crc32, DecodeError};
use crate::model::MicrodataDb;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::Path;
use vadalog::Value;

/// File magic identifying a Vada-SA cycle snapshot, version 2.
///
/// Version 2 stores the table **column-wise with per-column value
/// dictionaries**: each column writes its distinct values once (first
/// appearance order) followed by one `u32` code per row. Survey microdata
/// repeats values heavily, so snapshots shrink roughly by the average
/// equivalence-class size compared to the row-major version 1 layout.
/// Version 1 files fail with [`SnapshotError::BadMagic`] and recovery
/// falls back to journal replay, which is always available.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"VADASAS2";

/// A frozen cycle state at an iteration boundary.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Completed iterations the state reflects.
    pub iterations: u64,
    /// Fingerprint of the run this snapshot belongs to (must match the
    /// journal's `Begin` record to be eligible during recovery).
    pub fingerprint: u64,
    /// The working table, mid-anonymization.
    pub db: MicrodataDb,
    /// Labelled-null counter of the working table at snapshot time.
    pub next_null: u64,
    /// Rows the anonymizer has exhausted so far.
    pub exhausted: BTreeSet<usize>,
    /// Labelled nulls injected so far.
    pub nulls_injected: u64,
    /// Global recodings applied so far.
    pub recodings: u64,
    /// Tuples at risk before the first iteration.
    pub initial_risky: u64,
    /// Warm-start counters accumulated so far (informational; a resumed
    /// run re-evaluates its first iteration cold regardless).
    pub warm: WarmCycleProfile,
}

/// Why a snapshot file could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading the file failed.
    Io(io::Error),
    /// The payload is torn, checksummed wrong, or structurally invalid.
    Corrupt(DecodeError),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Corrupt(e) => write!(f, "snapshot corrupt: {e}"),
            SnapshotError::BadMagic => write!(f, "not a vadasa snapshot file"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// --- encoding (shares the little-endian primitives of the journal) ---

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.take(1)?[0] {
            0 => Ok(Value::Bool(self.take(1)?[0] != 0)),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::str(self.string()?)),
            4 => Ok(Value::Null(self.u64()?)),
            5 => {
                let n = self.u32()? as usize;
                if n > self.bytes.len().saturating_sub(self.pos) {
                    return Err(DecodeError::Truncated);
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::set(items))
            }
            6 => {
                let n = self.u32()? as usize;
                if n > self.bytes.len().saturating_sub(self.pos) {
                    return Err(DecodeError::Truncated);
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::Tuple(std::sync::Arc::new(items)))
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Checkpoint {
    /// Encode the checkpoint as a complete snapshot file image:
    /// magic, payload length, payload CRC, payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(4096);
        put_u64(&mut p, self.iterations);
        put_u64(&mut p, self.fingerprint);
        put_u64(&mut p, self.next_null);
        put_u64(&mut p, self.nulls_injected);
        put_u64(&mut p, self.recodings);
        put_u64(&mut p, self.initial_risky);
        let w = &self.warm;
        for c in [
            w.warm_evals,
            w.cold_evals,
            w.patched_facts,
            w.strata_skipped,
            w.fallback_to_cold,
            w.reused_index_bytes,
        ] {
            put_u64(&mut p, c);
        }
        put_u32(&mut p, self.exhausted.len() as u32);
        for row in &self.exhausted {
            put_u64(&mut p, *row as u64);
        }
        put_str(&mut p, &self.db.name);
        let attrs = self.db.attributes();
        put_u32(&mut p, attrs.len() as u32);
        for a in attrs {
            put_str(&mut p, a);
        }
        put_u32(&mut p, self.db.len() as u32);
        // per-column dictionary encoding: distinct values once, then one
        // u32 code per row (codes in first-appearance order)
        let width = attrs.len();
        let mut dicts: Vec<Vec<&Value>> = vec![Vec::new(); width];
        let mut lookups: Vec<std::collections::HashMap<&Value, u32>> = (0..width)
            .map(|_| std::collections::HashMap::new())
            .collect();
        let mut codes: Vec<Vec<u32>> = vec![Vec::with_capacity(self.db.len()); width];
        for row in self.db.iter_rows() {
            for (c, v) in row.iter().enumerate() {
                let dict = &mut dicts[c];
                let code = *lookups[c].entry(v).or_insert_with(|| {
                    dict.push(v);
                    (dict.len() - 1) as u32
                });
                codes[c].push(code);
            }
        }
        for c in 0..width {
            put_u32(&mut p, dicts[c].len() as u32);
            for v in &dicts[c] {
                crate::journal::record::put_value(&mut p, v);
            }
            for code in &codes[c] {
                put_u32(&mut p, *code);
            }
        }
        let mut out = Vec::with_capacity(p.len() + 16);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, p.len() as u32);
        put_u32(&mut out, crc32(&p));
        out.extend_from_slice(&p);
        out
    }

    /// Decode a snapshot file image produced by [`encode`](Self::encode).
    /// Total: every malformation maps to [`SnapshotError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(SnapshotError::Corrupt(DecodeError::Truncated));
        }
        if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut c = Cursor {
            bytes,
            pos: SNAPSHOT_MAGIC.len(),
        };
        let len = c.u32().map_err(SnapshotError::Corrupt)? as usize;
        let crc = c.u32().map_err(SnapshotError::Corrupt)?;
        let payload = c.take(len).map_err(SnapshotError::Corrupt)?;
        if crc32(payload) != crc {
            return Err(SnapshotError::Corrupt(DecodeError::BadChecksum));
        }
        let mut c = Cursor {
            bytes: payload,
            pos: 0,
        };
        let de = SnapshotError::Corrupt;
        let iterations = c.u64().map_err(de)?;
        let fingerprint = c.u64().map_err(de)?;
        let next_null = c.u64().map_err(de)?;
        let nulls_injected = c.u64().map_err(de)?;
        let recodings = c.u64().map_err(de)?;
        let initial_risky = c.u64().map_err(de)?;
        let warm = WarmCycleProfile {
            warm_evals: c.u64().map_err(de)?,
            cold_evals: c.u64().map_err(de)?,
            patched_facts: c.u64().map_err(de)?,
            strata_skipped: c.u64().map_err(de)?,
            fallback_to_cold: c.u64().map_err(de)?,
            reused_index_bytes: c.u64().map_err(de)?,
            // run-local storage counters are not part of the snapshot
            // format: they describe this process, not the journal
            ..WarmCycleProfile::default()
        };
        let n_exhausted = c.u32().map_err(de)? as usize;
        if n_exhausted > payload.len() {
            return Err(SnapshotError::Corrupt(DecodeError::Truncated));
        }
        let mut exhausted = BTreeSet::new();
        for _ in 0..n_exhausted {
            exhausted.insert(c.u64().map_err(de)? as usize);
        }
        let name = c.string().map_err(de)?;
        let n_attrs = c.u32().map_err(de)? as usize;
        if n_attrs > payload.len() {
            return Err(SnapshotError::Corrupt(DecodeError::Truncated));
        }
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push(c.string().map_err(de)?);
        }
        // a duplicate attribute in a checksummed payload means the file
        // was written by something else entirely — treat as corrupt
        let mut db = MicrodataDb::new(name, attrs)
            .map_err(|_| SnapshotError::Corrupt(DecodeError::Truncated))?;
        let n_rows = c.u32().map_err(de)? as usize;
        if n_rows > payload.len() {
            return Err(SnapshotError::Corrupt(DecodeError::Truncated));
        }
        let width = db.attributes().len();
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(width);
        for _ in 0..width {
            let dict_len = c.u32().map_err(de)? as usize;
            if dict_len > payload.len() {
                return Err(SnapshotError::Corrupt(DecodeError::Truncated));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(c.value().map_err(de)?);
            }
            let mut col = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let code = c.u32().map_err(de)? as usize;
                // a code past the dictionary means the payload was not
                // written by this encoder — corrupt, never a panic
                let v = dict
                    .get(code)
                    .ok_or(SnapshotError::Corrupt(DecodeError::BadTag(0xC0)))?;
                col.push(v.clone());
            }
            columns.push(col);
        }
        for r in 0..n_rows {
            let row: Vec<Value> = columns.iter().map(|col| col[r].clone()).collect();
            db.push_row(row)
                .map_err(|_| SnapshotError::Corrupt(DecodeError::Truncated))?;
        }
        db.reserve_nulls(next_null);
        Ok(Checkpoint {
            iterations,
            fingerprint,
            db,
            next_null,
            exhausted,
            nulls_injected,
            recodings,
            initial_risky,
            warm,
        })
    }

    /// File name a snapshot at this iteration boundary is stored under.
    pub fn file_name(iterations: u64) -> String {
        format!("snapshot-{iterations}.vsnap")
    }

    /// Write the snapshot atomically into `dir` through the supplied I/O
    /// factory: encode → write `<name>.tmp` → fsync → rename. Returns
    /// the final file name and the encoded size in bytes.
    pub fn write_atomic(&self, dir: &Path, open: &OpenSink<'_>) -> io::Result<(String, u64)> {
        let name = Self::file_name(self.iterations);
        let final_path = dir.join(&name);
        let tmp_path = dir.join(format!("{name}.tmp"));
        let bytes = self.encode();
        {
            let mut sink = open(&tmp_path, IoMode::Snapshot)?;
            sink.append(&bytes)?;
            sink.sync()?;
        }
        std::fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable: without a directory fsync the
        // snapshot's dirent may not survive a crash even though its
        // contents were synced above.
        crate::journal::io::fsync_dir(dir)?;
        Ok((name, bytes.len() as u64))
    }

    /// Load and validate a snapshot file.
    pub fn read(path: &Path) -> Result<Checkpoint, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut db = MicrodataDb::new("t", ["Id", "Area", "Rev"]).unwrap();
        db.push_row(vec![Value::Int(1), Value::str("North"), Value::Float(2.5)])
            .unwrap();
        db.push_row(vec![Value::Int(2), Value::Null(0), Value::Float(-1.0)])
            .unwrap();
        let _ = db.fresh_null();
        Checkpoint {
            iterations: 7,
            fingerprint: 0xABCD,
            next_null: db.nulls_minted(),
            db,
            exhausted: [1usize, 3].into_iter().collect(),
            nulls_injected: 4,
            recodings: 1,
            initial_risky: 9,
            warm: WarmCycleProfile {
                warm_evals: 6,
                cold_evals: 1,
                patched_facts: 12,
                strata_skipped: 0,
                fallback_to_cold: 0,
                reused_index_bytes: 4096,
                ..WarmCycleProfile::default()
            },
        }
    }

    #[test]
    fn checkpoint_roundtrips() {
        let cp = sample();
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back.iterations, cp.iterations);
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!(back.exhausted, cp.exhausted);
        assert_eq!(back.warm, cp.warm);
        assert_eq!(back.db.name, cp.db.name);
        assert_eq!(back.db.attributes(), cp.db.attributes());
        assert_eq!(back.db.len(), cp.db.len());
        for i in 0..cp.db.len() {
            assert_eq!(back.db.row(i).unwrap(), cp.db.row(i).unwrap());
        }
        // the null counter survives so the next minted null is identical
        assert_eq!(back.db.nulls_minted(), cp.next_null);
    }

    #[test]
    fn corruption_is_detected_not_panicking() {
        let bytes = sample().encode();
        for k in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[k] ^= 0x5A;
            assert!(Checkpoint::decode(&bad).is_err(), "flip at byte {k}");
        }
        for k in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..k]).is_err(), "prefix {k}");
        }
    }

    #[test]
    fn version1_snapshots_are_rejected() {
        let mut bytes = sample().encode();
        bytes[..8].copy_from_slice(b"VADASAS1");
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn out_of_dictionary_codes_are_corrupt() {
        // hand-craft a payload whose single column declares a one-entry
        // dictionary but references code 5
        let mut p = Vec::new();
        for _ in 0..12 {
            put_u64(&mut p, 0); // six counters + six warm-profile fields
        }
        put_u32(&mut p, 0); // exhausted: empty
        put_str(&mut p, "t");
        put_u32(&mut p, 1); // one attribute
        put_str(&mut p, "a");
        put_u32(&mut p, 1); // one row
        put_u32(&mut p, 1); // dictionary of one value
        crate::journal::record::put_value(&mut p, &Value::Int(7));
        put_u32(&mut p, 5); // code out of range
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut out, p.len() as u32);
        put_u32(&mut out, crc32(&p));
        out.extend_from_slice(&p);
        assert!(matches!(
            Checkpoint::decode(&out),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn dictionary_encoding_shrinks_repeated_tables() {
        let mut db = MicrodataDb::new("rep", ["Area"]).unwrap();
        for _ in 0..500 {
            db.push_row(vec![Value::str("North-West-Region")]).unwrap();
        }
        let cp = Checkpoint {
            iterations: 0,
            fingerprint: 0,
            next_null: 0,
            db,
            exhausted: BTreeSet::new(),
            nulls_injected: 0,
            recodings: 0,
            initial_risky: 0,
            warm: WarmCycleProfile::default(),
        };
        // row-major would pay ~23 bytes per row for the string; the
        // dictionary pays it once plus 4 bytes of code per row
        assert!(cp.encode().len() < 500 * 8);
        let back = Checkpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back.db.len(), 500);
        assert_eq!(
            *back.db.value(499, "Area").unwrap(),
            Value::str("North-West-Region")
        );
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("vadasa-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cp = sample();
        let open = |p: &Path, _m: IoMode| -> io::Result<Box<dyn crate::journal::io::JournalIo>> {
            Ok(Box::new(crate::journal::io::FileJournalIo::create(p)?))
        };
        let (name, bytes) = cp.write_atomic(&dir, &open).unwrap();
        assert_eq!(name, "snapshot-7.vsnap");
        assert!(bytes > 0);
        assert!(!dir.join("snapshot-7.vsnap.tmp").exists());
        let back = Checkpoint::read(&dir.join(&name)).unwrap();
        assert_eq!(back.iterations, 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
