//! Out-of-core columnar storage: paged code matrices, spillable
//! [`MicrodataView`]s, and the cycle's persisted warm-statistics artifact.
//!
//! The code matrix dominates a view's footprint — at 40 quasi-identifier
//! columns it is 160 bytes/row, versus 8 bytes/row of null masks — so
//! out-of-core operation pages exactly that matrix from disk
//! ([`CodeStore::File`], positioned reads via `read_at`, a small LRU page
//! cache) while dictionaries, null masks and weights stay resident. An
//! [`OutOfCoreView`] then answers the cycle's group-statistics query with
//! a bounded-memory streaming pass whenever matching is exact code
//! equality (standard semantics, or maybe-match with no projected null);
//! the maybe-match-with-nulls case *materializes* the view first — a
//! documented fallback, since its pairwise null phases need random access
//! to the whole matrix.
//!
//! Durable view snapshots ride the [`StorageBackend`] artifact contract
//! ([`spill_view`] / [`load_view`]): CRC-framed, versioned,
//! fingerprint-checked, with every malformation decoding to a structured
//! [`StorageError`]. The same contract carries the cycle's equivalence
//! class statistics across restarts ([`encode_warm_stats`] /
//! [`decode_warm_stats`]) so `AnonymizationCycle::resume` can seed its
//! warm state from disk instead of regrouping cold — bit-identically,
//! because the persisted stats are the maintained stats, which the
//! columnar proptests already pin bitwise-equal to a cold regroup.

use crate::columnar::ColumnDict;
use crate::maybe_match::{GroupStats, NullSemantics};
use crate::risk::MicrodataView;
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use vadalog::backend::{self, wire, StorageBackend, StorageError};

/// Target codes per page (~256 KiB). The actual page holds the nearest
/// whole number of rows so a row never straddles a page boundary.
const PAGE_CODES: usize = 1 << 16;

/// Pages kept resident by a [`CodeStore::File`]'s LRU cache.
const CACHE_PAGES: usize = 8;

/// Artifact format version for spilled views.
pub const VIEW_ARTIFACT_VERSION: u32 = 1;

/// Artifact name the cycle's persisted warm statistics are stored under
/// (inside the journal directory's artifact store).
pub const WARM_STATS_ARTIFACT: &str = "cycle.warmstats";

/// Artifact format version for persisted warm statistics.
pub const WARM_STATS_VERSION: u32 = 1;

/// A row-major `u32` code matrix, resident or file-backed.
pub enum CodeStore {
    /// All codes in RAM (the historical representation).
    Mem {
        /// Flat row-major codes, `len = rows × width`.
        codes: Vec<u32>,
        /// Row width.
        width: usize,
    },
    /// Codes on disk, paged in on demand.
    File(FileCodes),
}

/// The file-backed half of [`CodeStore`]: raw little-endian `u32`s, read
/// with positioned I/O through a small LRU page cache. Shared references
/// can read concurrently — the cache is behind a mutex, the file handle
/// is only used via `read_at`.
pub struct FileCodes {
    file: File,
    path: PathBuf,
    rows: usize,
    width: usize,
    /// Rows per page (page size in codes = `page_rows * width`).
    page_rows: usize,
    cache: Mutex<Vec<(usize, Vec<u32>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CodeStore {
    /// Wrap an in-memory matrix.
    pub fn mem(codes: Vec<u32>, width: usize) -> Self {
        CodeStore::Mem { codes, width }
    }

    /// Spill `codes` to `path` and return a file-backed store over it.
    /// The write streams page-sized chunks (bounded buffer) and fsyncs
    /// before handing the store back.
    pub fn spill(codes: &[u32], width: usize, path: &Path) -> io::Result<Self> {
        Self::spill_with_page_rows(codes, width, path, page_rows_for(width))
    }

    /// [`CodeStore::spill`] with an explicit page geometry — tests use a
    /// tiny page to force paging on small data.
    pub fn spill_with_page_rows(
        codes: &[u32],
        width: usize,
        path: &Path,
        page_rows: usize,
    ) -> io::Result<Self> {
        let width = width.max(1);
        let page_rows = page_rows.max(1);
        let mut f = File::create(path)?;
        let mut buf: Vec<u8> = Vec::with_capacity(page_rows * width * 4);
        for chunk in codes.chunks(page_rows * width) {
            buf.clear();
            for &c in chunk {
                buf.extend_from_slice(&c.to_le_bytes());
            }
            f.write_all(&buf)?;
        }
        f.sync_all()?;
        drop(f);
        Self::open(path, codes.len() / width, width, page_rows)
    }

    /// Open an existing spilled code file. The file length must be
    /// exactly `rows × width × 4` bytes; anything else is a structured
    /// error (a torn spill).
    pub fn open(path: &Path, rows: usize, width: usize, page_rows: usize) -> io::Result<Self> {
        let file = File::open(path)?;
        let expect = (rows * width * 4) as u64;
        let actual = file.metadata()?.len();
        if actual != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "code file {} holds {actual} bytes, expected {expect}",
                    path.display()
                ),
            ));
        }
        Ok(CodeStore::File(FileCodes {
            file,
            path: path.to_path_buf(),
            rows,
            width,
            page_rows: page_rows.max(1),
            cache: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            CodeStore::Mem { codes, width } => codes.len() / width.max(&1),
            CodeStore::File(f) => f.rows,
        }
    }

    /// Row width in codes.
    pub fn width(&self) -> usize {
        match self {
            CodeStore::Mem { width, .. } => *width,
            CodeStore::File(f) => f.width,
        }
    }

    /// Copy row `row`'s codes into `buf` (must be `width` long).
    pub fn read_row_into(&self, row: usize, buf: &mut [u32]) -> io::Result<()> {
        match self {
            CodeStore::Mem { codes, width } => {
                buf.copy_from_slice(&codes[row * width..(row + 1) * width]);
                Ok(())
            }
            CodeStore::File(f) => f.read_row_into(row, buf),
        }
    }

    /// Stream every row in order through `visit(row_index, codes)`,
    /// touching one page-sized buffer at a time. This is the
    /// bounded-memory scan the streaming group-statistics pass rides.
    pub fn for_each_row(&self, mut visit: impl FnMut(usize, &[u32])) -> io::Result<()> {
        match self {
            CodeStore::Mem { codes, width } => {
                let width = (*width).max(1);
                for (i, row) in codes.chunks_exact(width).enumerate() {
                    visit(i, row);
                }
                Ok(())
            }
            CodeStore::File(f) => {
                let page_codes = f.page_rows * f.width;
                let mut buf = vec![0u32; page_codes];
                let mut row = 0usize;
                let mut page = 0usize;
                while row < f.rows {
                    let rows_here = f.page_rows.min(f.rows - row);
                    let slice = &mut buf[..rows_here * f.width];
                    f.read_codes_at(page * page_codes, slice)?;
                    for r in slice.chunks_exact(f.width) {
                        visit(row, r);
                        row += 1;
                    }
                    page += 1;
                }
                Ok(())
            }
        }
    }

    /// Materialize the full matrix in RAM.
    pub fn to_vec(&self) -> io::Result<Vec<u32>> {
        match self {
            CodeStore::Mem { codes, .. } => Ok(codes.clone()),
            CodeStore::File(f) => {
                let mut out = vec![0u32; f.rows * f.width];
                f.read_codes_at(0, &mut out)?;
                Ok(out)
            }
        }
    }

    /// Resident heap bytes (the file store counts only its cache).
    pub fn resident_bytes(&self) -> usize {
        match self {
            CodeStore::Mem { codes, .. } => codes.len() * 4,
            CodeStore::File(f) => {
                let cache = lock_unpoisoned(&f.cache);
                cache.iter().map(|(_, p)| p.len() * 4).sum()
            }
        }
    }

    /// `(cache hits, cache misses)` of the paged store; zeros for `Mem`.
    pub fn cache_stats(&self) -> (u64, u64) {
        match self {
            CodeStore::Mem { .. } => (0, 0),
            CodeStore::File(f) => (
                f.hits.load(Ordering::Relaxed),
                f.misses.load(Ordering::Relaxed),
            ),
        }
    }

    /// Path of the backing file, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        match self {
            CodeStore::Mem { .. } => None,
            CodeStore::File(f) => Some(&f.path),
        }
    }
}

/// Rows per page for a given width, targeting [`PAGE_CODES`].
fn page_rows_for(width: usize) -> usize {
    (PAGE_CODES / width.max(1)).max(1)
}

/// Lock a mutex, recovering from poisoning (cache entries are plain data,
/// valid regardless of where a panicking thread stopped).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl FileCodes {
    /// Raw positioned read of `buf.len()` codes starting at code offset
    /// `code_off` (no cache).
    fn read_codes_at(&self, code_off: usize, buf: &mut [u32]) -> io::Result<()> {
        let mut bytes = vec![0u8; buf.len() * 4];
        self.file.read_exact_at(&mut bytes, (code_off * 4) as u64)?;
        for (dst, src) in buf.iter_mut().zip(bytes.chunks_exact(4)) {
            *dst = u32::from_le_bytes([src[0], src[1], src[2], src[3]]);
        }
        Ok(())
    }

    /// Cached single-row read.
    fn read_row_into(&self, row: usize, buf: &mut [u32]) -> io::Result<()> {
        if row >= self.rows || buf.len() != self.width {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row {row} / width {} out of range", buf.len()),
            ));
        }
        let page = row / self.page_rows;
        let offset_in_page = (row % self.page_rows) * self.width;
        let mut cache = lock_unpoisoned(&self.cache);
        if let Some(pos) = cache.iter().position(|(p, _)| *p == page) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let entry = cache.remove(pos);
            buf.copy_from_slice(&entry.1[offset_in_page..offset_in_page + self.width]);
            cache.insert(0, entry);
            return Ok(());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let rows_here = self.page_rows.min(self.rows - page * self.page_rows);
        let mut data = vec![0u32; rows_here * self.width];
        self.read_codes_at(page * self.page_rows * self.width, &mut data)?;
        buf.copy_from_slice(&data[offset_in_page..offset_in_page + self.width]);
        cache.insert(0, (page, data));
        cache.truncate(CACHE_PAGES);
        Ok(())
    }
}

/// A [`MicrodataView`] whose code matrix lives in a [`CodeStore`]:
/// dictionaries, null masks and weights stay resident (O(rows) small
/// constants), the matrix pages in on demand, so a table larger than RAM
/// is grouped with bounded resident memory.
pub struct OutOfCoreView {
    /// Names of the projected quasi-identifier attributes.
    pub qi_names: Vec<String>,
    dicts: Vec<ColumnDict>,
    store: CodeStore,
    null_masks: Vec<u64>,
    /// Sampling weights, when present.
    pub weights: Option<Vec<f64>>,
    /// Null-matching semantics.
    pub semantics: NullSemantics,
}

impl OutOfCoreView {
    /// Spill `view`'s code matrix to `<dir>/<name>.codes` and return the
    /// paged equivalent.
    pub fn spill(view: &MicrodataView, dir: &Path, name: &str) -> io::Result<Self> {
        Self::spill_with_page_rows(view, dir, name, page_rows_for(view.qi_names.len()))
    }

    /// [`OutOfCoreView::spill`] with explicit page geometry (tests).
    pub fn spill_with_page_rows(
        view: &MicrodataView,
        dir: &Path,
        name: &str,
        page_rows: usize,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let width = view.qi_names.len();
        let path = dir.join(format!("{name}.codes"));
        let store = CodeStore::spill_with_page_rows(view.codes(), width, &path, page_rows)?;
        Ok(OutOfCoreView {
            qi_names: view.qi_names.clone(),
            dicts: view.dicts().to_vec(),
            store,
            null_masks: view.null_masks().to_vec(),
            weights: view.weights.clone(),
            semantics: view.semantics,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.null_masks.len()
    }

    /// The backing store.
    pub fn store(&self) -> &CodeStore {
        &self.store
    }

    /// Read one row's codes.
    pub fn row_codes_into(&self, row: usize, buf: &mut [u32]) -> io::Result<()> {
        self.store.read_row_into(row, buf)
    }

    /// Bring the whole view back into RAM (`risk_threads` as requested).
    /// This is the documented fallback for queries that need random
    /// access to the full matrix (maybe-match grouping with nulls,
    /// per-cell patching).
    pub fn materialize(&self, risk_threads: usize) -> io::Result<MicrodataView> {
        Ok(MicrodataView::from_parts(
            self.qi_names.clone(),
            self.dicts.clone(),
            self.store.to_vec()?,
            self.null_masks.clone(),
            self.weights.clone(),
            self.semantics,
            risk_threads,
        ))
    }

    /// Equivalence-class statistics over the paged matrix.
    ///
    /// When matching is exact code equality — standard semantics, or
    /// maybe-match with no projected null — this is a single streaming
    /// pass: one page resident at a time, an aggregation map keyed by
    /// the (distinct) row codes, accumulation in row order, so the
    /// result is **bitwise identical** to
    /// [`MicrodataView::group_stats`] (same order, and under the
    /// exact-summability gate order is immaterial anyway). Maybe-match
    /// with nulls present materializes the view and delegates — the
    /// documented cold fallback.
    pub fn group_stats(&self) -> io::Result<GroupStats> {
        let n = self.rows();
        if n == 0 {
            return Ok(GroupStats {
                count: Vec::new(),
                weight_sum: Vec::new(),
            });
        }
        let has_nulls = self.null_masks.iter().any(|&m| m != 0);
        if self.semantics == NullSemantics::MaybeMatch && has_nulls {
            return Ok(self.materialize(1)?.group_stats());
        }
        let w = |i: usize| self.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
        // Aggregate pass: group id per row, count/weight per group.
        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut row_group: Vec<u32> = Vec::with_capacity(n);
        let mut count: Vec<usize> = Vec::new();
        let mut weight_sum: Vec<f64> = Vec::new();
        self.store.for_each_row(|i, codes| {
            let next = ids.len() as u32;
            let gid = *ids.entry(codes.to_vec()).or_insert(next);
            if gid == next {
                count.push(0);
                weight_sum.push(0.0);
            }
            count[gid as usize] += 1;
            weight_sum[gid as usize] += w(i);
            row_group.push(gid);
        })?;
        // Fill pass: every row reports its group's totals.
        Ok(GroupStats {
            count: row_group.iter().map(|&g| count[g as usize]).collect(),
            weight_sum: row_group.iter().map(|&g| weight_sum[g as usize]).collect(),
        })
    }
}

// --- durable view artifacts -------------------------------------------

/// Freeze `view` into `store` under `name`, CRC-framed and stamped with
/// `fingerprint`. Returns the framed size in bytes.
pub fn spill_view(
    view: &MicrodataView,
    store: &mut dyn StorageBackend,
    name: &str,
    fingerprint: u64,
) -> Result<usize, StorageError> {
    let width = view.qi_names.len();
    let mut payload = Vec::new();
    wire::put_u32(&mut payload, width as u32);
    for q in &view.qi_names {
        wire::put_str(&mut payload, q);
    }
    for dict in view.dicts() {
        wire::put_u32(&mut payload, dict.len() as u32);
        for v in dict.values() {
            wire::put_value(&mut payload, v);
        }
    }
    let masks = view.null_masks();
    wire::put_u32(&mut payload, masks.len() as u32);
    for &m in masks {
        wire::put_u64(&mut payload, m);
    }
    for &c in view.codes() {
        wire::put_u32(&mut payload, c);
    }
    match &view.weights {
        Some(ws) => {
            payload.push(1);
            for &wv in ws {
                wire::put_u64(&mut payload, wv.to_bits());
            }
        }
        None => payload.push(0),
    }
    payload.push(match view.semantics {
        NullSemantics::Standard => 0,
        NullSemantics::MaybeMatch => 1,
    });
    let framed = backend::encode_artifact(VIEW_ARTIFACT_VERSION, fingerprint, &payload);
    store.put(name, &framed)?;
    Ok(framed.len())
}

/// Restore a view spilled by [`spill_view`]. Total: every malformation
/// returns a structured [`StorageError`]. `expected_fingerprint = None`
/// skips the provenance check.
pub fn load_view(
    store: &dyn StorageBackend,
    name: &str,
    expected_fingerprint: Option<u64>,
    risk_threads: usize,
) -> Result<MicrodataView, StorageError> {
    let bytes = store.get(name)?.ok_or_else(|| StorageError::Missing {
        artifact: name.to_string(),
    })?;
    let (_, _, payload) =
        backend::decode_artifact(name, VIEW_ARTIFACT_VERSION, expected_fingerprint, &bytes)?;
    let corrupt = |reason: String| StorageError::Corrupt {
        artifact: name.to_string(),
        reason,
    };
    let mut r = wire::Reader::new(&payload);
    let width = r.u32().map_err(&corrupt)? as usize;
    if width > 64 {
        return Err(corrupt(format!(
            "width {width} exceeds the 64-column limit"
        )));
    }
    let mut qi_names = Vec::with_capacity(width);
    for _ in 0..width {
        qi_names.push(r.string().map_err(&corrupt)?);
    }
    let mut dicts = Vec::with_capacity(width);
    for _ in 0..width {
        let nvals = r.u32().map_err(&corrupt)? as usize;
        if nvals > r.remaining() {
            return Err(corrupt("dictionary size exceeds payload".into()));
        }
        let mut dict = ColumnDict::new();
        for _ in 0..nvals {
            let v = r.value().map_err(&corrupt)?;
            dict.intern(&v);
        }
        if dict.len() != nvals {
            return Err(corrupt("duplicate value in column dictionary".into()));
        }
        dicts.push(dict);
    }
    let rows = r.u32().map_err(&corrupt)? as usize;
    if rows.saturating_mul(width.max(1)) > r.remaining() {
        return Err(corrupt("row count exceeds payload".into()));
    }
    let mut null_masks = Vec::with_capacity(rows);
    for _ in 0..rows {
        null_masks.push(r.u64().map_err(&corrupt)?);
    }
    let mut codes = Vec::with_capacity(rows * width);
    for _ in 0..rows * width {
        codes.push(r.u32().map_err(&corrupt)?);
    }
    for (i, &c) in codes.iter().enumerate() {
        if c as usize >= dicts[i % width.max(1)].len() {
            return Err(corrupt(format!("code {c} outside its column dictionary")));
        }
    }
    let weights = match r.u8().map_err(&corrupt)? {
        0 => None,
        1 => {
            let mut ws = Vec::with_capacity(rows);
            for _ in 0..rows {
                ws.push(f64::from_bits(r.u64().map_err(&corrupt)?));
            }
            Some(ws)
        }
        t => return Err(corrupt(format!("unknown weights tag {t}"))),
    };
    let semantics = match r.u8().map_err(&corrupt)? {
        0 => NullSemantics::Standard,
        1 => NullSemantics::MaybeMatch,
        t => return Err(corrupt(format!("unknown semantics tag {t}"))),
    };
    if !r.done() {
        return Err(corrupt("trailing bytes after view".into()));
    }
    Ok(MicrodataView::from_parts(
        qi_names,
        dicts,
        codes,
        null_masks,
        weights,
        semantics,
        risk_threads,
    ))
}

// --- the cycle's warm-statistics artifact ------------------------------

/// A decoded [`WARM_STATS_ARTIFACT`]: the equivalence-class statistics
/// the cycle maintained, stamped with the run it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStats {
    /// Cycle iterations completed when the stats were persisted. Resume
    /// only seeds from an artifact whose iteration count matches the
    /// journal's recovered count *exactly* — anything else is stale and
    /// falls back to a cold regroup.
    pub iterations: u64,
    /// The journal run fingerprint the stats belong to.
    pub fingerprint: u64,
    /// The maintained per-row statistics.
    pub stats: GroupStats,
}

/// Frame the cycle's maintained statistics for persistence.
pub fn encode_warm_stats(iterations: u64, fingerprint: u64, stats: &GroupStats) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + stats.count.len() * 16);
    wire::put_u64(&mut payload, iterations);
    wire::put_u32(&mut payload, stats.count.len() as u32);
    for &c in &stats.count {
        wire::put_u64(&mut payload, c as u64);
    }
    for &s in &stats.weight_sum {
        wire::put_u64(&mut payload, s.to_bits());
    }
    backend::encode_artifact(WARM_STATS_VERSION, fingerprint, &payload)
}

/// Decode a persisted warm-statistics artifact. Total; structured errors
/// for every malformation, fingerprint mismatch included.
pub fn decode_warm_stats(
    bytes: &[u8],
    expected_fingerprint: Option<u64>,
) -> Result<WarmStats, StorageError> {
    let artifact = WARM_STATS_ARTIFACT;
    let (_, fingerprint, payload) =
        backend::decode_artifact(artifact, WARM_STATS_VERSION, expected_fingerprint, bytes)?;
    let corrupt = |reason: String| StorageError::Corrupt {
        artifact: artifact.to_string(),
        reason,
    };
    let mut r = wire::Reader::new(&payload);
    let iterations = r.u64().map_err(&corrupt)?;
    let n = r.u32().map_err(&corrupt)? as usize;
    if n.saturating_mul(16) > r.remaining() {
        return Err(corrupt("stats length exceeds payload".into()));
    }
    let mut count = Vec::with_capacity(n);
    for _ in 0..n {
        count.push(r.u64().map_err(&corrupt)? as usize);
    }
    let mut weight_sum = Vec::with_capacity(n);
    for _ in 0..n {
        weight_sum.push(f64::from_bits(r.u64().map_err(&corrupt)?));
    }
    if !r.done() {
        return Err(corrupt("trailing bytes after stats".into()));
    }
    Ok(WarmStats {
        iterations,
        fingerprint,
        stats: GroupStats { count, weight_sum },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::backend::MemBackend;
    use vadalog::Value;

    fn sample_view(rows: usize, width: usize, with_nulls: bool) -> MicrodataView {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let qi: Vec<String> = (0..width).map(|c| format!("q{c}")).collect();
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        let r = rng();
                        if with_nulls && r % 11 == 0 {
                            Value::Null(r % 5)
                        } else {
                            Value::Int((r % 7) as i64)
                        }
                    })
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (0..rows).map(|i| (1 + i % 4) as f64).collect();
        MicrodataView::from_rows(
            qi,
            data,
            Some(weights),
            if with_nulls {
                NullSemantics::MaybeMatch
            } else {
                NullSemantics::Standard
            },
        )
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vadasa-colstore-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_codes_equal_mem_codes_row_by_row() {
        let dir = tmp("rows");
        let view = sample_view(500, 5, false);
        // page_rows=7 forces many pages and cache evictions
        let oo = OutOfCoreView::spill_with_page_rows(&view, &dir, "t", 7).unwrap();
        let mut buf = vec![0u32; 5];
        for i in 0..500 {
            oo.row_codes_into(i, &mut buf).unwrap();
            assert_eq!(&buf[..], view.row_codes(i), "row {i}");
        }
        let (hits, misses) = oo.store().cache_stats();
        assert!(misses > CACHE_PAGES as u64, "paging must have engaged");
        assert!(hits > 0, "sequential reads must hit the cache");
        assert!(
            oo.store().resident_bytes() < 500 * 5 * 4,
            "resident memory must stay below the full matrix"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_group_stats_bitwise_equals_in_memory() {
        let dir = tmp("stats");
        for threads in [1, 4] {
            let mut view = sample_view(1200, 6, false);
            view.risk_threads = threads;
            let oo = OutOfCoreView::spill_with_page_rows(&view, &dir, "s", 11).unwrap();
            let cold = view.group_stats();
            let streamed = oo.group_stats().unwrap();
            assert_eq!(streamed.count, cold.count, "threads={threads}");
            let a: Vec<u64> = streamed.weight_sum.iter().map(|f| f.to_bits()).collect();
            let b: Vec<u64> = cold.weight_sum.iter().map(|f| f.to_bits()).collect();
            assert_eq!(a, b, "threads={threads}: weight bits must match");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maybe_match_with_nulls_falls_back_to_materialize() {
        let dir = tmp("mm");
        let view = sample_view(300, 4, true);
        let oo = OutOfCoreView::spill_with_page_rows(&view, &dir, "m", 13).unwrap();
        let cold = view.group_stats();
        let streamed = oo.group_stats().unwrap();
        assert_eq!(streamed.count, cold.count);
        let a: Vec<u64> = streamed.weight_sum.iter().map(|f| f.to_bits()).collect();
        let b: Vec<u64> = cold.weight_sum.iter().map(|f| f.to_bits()).collect();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_code_file_is_a_structured_error() {
        let dir = tmp("torn");
        let view = sample_view(100, 3, false);
        let oo = OutOfCoreView::spill_with_page_rows(&view, &dir, "t", 16).unwrap();
        let path = oo.store().path().unwrap().to_path_buf();
        drop(oo);
        // tear the file mid-row
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2 - 1]).unwrap();
        let err = match CodeStore::open(&path, 100, 3, 16) {
            Ok(_) => panic!("torn code file must not open"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn view_artifact_roundtrips_and_validates() {
        let mut store = MemBackend::new();
        let view = sample_view(200, 4, true);
        spill_view(&view, &mut store, "view.test", 77).unwrap();
        let back = load_view(&store, "view.test", Some(77), view.risk_threads).unwrap();
        assert_eq!(back.qi_names, view.qi_names);
        assert_eq!(back.codes(), view.codes());
        assert_eq!(back.null_masks(), view.null_masks());
        assert_eq!(back.semantics, view.semantics);
        let a: Vec<u64> = back
            .weights
            .as_ref()
            .unwrap()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        let b: Vec<u64> = view
            .weights
            .as_ref()
            .unwrap()
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(a, b);
        // restored dictionaries decode codes to the same values
        let cold = view.group_stats();
        let warm = back.group_stats();
        assert_eq!(cold.count, warm.count);
        // provenance check
        assert!(matches!(
            load_view(&store, "view.test", Some(78), 1),
            Err(StorageError::Fingerprint { .. })
        ));
        assert!(matches!(
            load_view(&store, "absent", None, 1),
            Err(StorageError::Missing { .. })
        ));
    }

    #[test]
    fn hostile_view_artifacts_never_panic() {
        let mut store = MemBackend::new();
        let view = sample_view(40, 3, false);
        spill_view(&view, &mut store, "v", 5).unwrap();
        let good = store.get("v").unwrap().unwrap();
        for k in 0..good.len() {
            assert!(
                load_view_from_bytes(&good[..k]).is_err(),
                "truncation at {k} must error"
            );
        }
        for k in 0..good.len() {
            let mut bad = good.clone();
            bad[k] ^= 0xFF;
            let _ = load_view_from_bytes(&bad); // must not panic (may even decode if CRC collides — it cannot — but the call itself is the assertion)
        }
    }

    fn load_view_from_bytes(bytes: &[u8]) -> Result<MicrodataView, StorageError> {
        let mut store = MemBackend::new();
        if !bytes.is_empty() {
            store.put("x", bytes).unwrap();
            load_view(&store, "x", None, 1)
        } else {
            Err(StorageError::Missing {
                artifact: "x".into(),
            })
        }
    }

    #[test]
    fn warm_stats_roundtrip_and_hostile_bytes() {
        let stats = GroupStats {
            count: vec![3, 3, 1, 3],
            weight_sum: vec![6.0, 6.0, 2.5, 6.0],
        };
        let framed = encode_warm_stats(17, 0xABCD, &stats);
        let back = decode_warm_stats(&framed, Some(0xABCD)).unwrap();
        assert_eq!(back.iterations, 17);
        assert_eq!(back.fingerprint, 0xABCD);
        assert_eq!(back.stats.count, stats.count);
        let a: Vec<u64> = back.stats.weight_sum.iter().map(|f| f.to_bits()).collect();
        let b: Vec<u64> = stats.weight_sum.iter().map(|f| f.to_bits()).collect();
        assert_eq!(a, b);
        assert!(matches!(
            decode_warm_stats(&framed, Some(0xABCE)),
            Err(StorageError::Fingerprint { .. })
        ));
        for k in 0..framed.len() {
            assert!(decode_warm_stats(&framed[..k], None).is_err());
            let mut bad = framed.clone();
            bad[k] ^= 0x55;
            let _ = decode_warm_stats(&bad, Some(0xABCD)); // total, never panics
        }
    }
}
