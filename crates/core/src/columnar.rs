//! Columnar quasi-identifier storage and partitioned group statistics.
//!
//! The row-based [`group_stats`](crate::maybe_match::group_stats) pass
//! clones and hashes `Value`s per cell, which caps the cycle at tens of
//! thousands of rows. This module stores the projected quasi-identifier
//! table *columnarly*: every column gets a [`ColumnDict`] interning each
//! distinct `Value` once, rows become flat `u32` code slices, and labelled
//! nulls are additionally tracked in a per-row bitmask. Group formation
//! then runs over integer codes — no `Value` clones, no deep hashing —
//! and, because equivalence classes are disjoint by construction, the
//! regrouping and per-row scoring passes shard across a
//! [`std::thread::scope`] pool with a deterministic sequential merge (the
//! same discipline the engine uses for parallel rule evaluation).
//!
//! # Determinism
//!
//! Counts are integers and therefore exact regardless of evaluation
//! order. Weight sums are `f64` additions, whose bit pattern depends on
//! association order, so the parallel path is only taken when
//! [`weights_exactly_summable`] holds (every weight an integer-valued
//! `f64` below `2^53`, where addition is exact and order-free). Under
//! that gate the result is bit-identical at *any* thread count; without
//! it the kernel silently falls back to the sequential order. The
//! maybe-match null phases iterate masks in sorted order (`BTreeMap`),
//! never in hash order, so repeated runs are byte-stable even for
//! non-summable weights.

use crate::maybe_match::{weights_exactly_summable, GroupStats, NullSemantics};
use std::collections::{BTreeMap, HashMap};
use vadalog::Value;

/// Rows below this count are never sharded: thread spawn overhead
/// dominates the work.
const MIN_ROWS_PER_THREAD: usize = 4096;

/// Per-column dictionary interning each distinct cell `Value` once.
///
/// Codes are dense (`0..len`) and assigned in first-appearance order, so
/// building a dictionary from the same column always yields the same
/// codes — snapshots and fingerprints may rely on this.
#[derive(Debug, Clone, Default)]
pub struct ColumnDict {
    values: Vec<Value>,
    lookup: HashMap<Value, u32>,
}

impl ColumnDict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Code for `v`, interning it on first sight. Clones `v` only when it
    /// is new to the column.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&c) = self.lookup.get(v) {
            return c;
        }
        let c = self.values.len() as u32;
        self.values.push(v.clone());
        self.lookup.insert(v.clone(), c);
        c
    }

    /// The value a code stands for.
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// Code for `v` if it is already interned.
    pub fn code(&self, v: &Value) -> Option<u32> {
        self.lookup.get(v).copied()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Distinct values in code order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Approximate retained heap bytes (dictionary side only).
    pub fn retained_bytes(&self) -> usize {
        self.values.len() * (std::mem::size_of::<Value>() + std::mem::size_of::<u64>())
    }
}

/// Do two coded rows match under `sem`? `am`/`bm` are the rows' null
/// bitmasks over the same column positions as the code slices.
#[inline]
pub fn codes_match(a: &[u32], am: u64, b: &[u32], bm: u64, sem: NullSemantics) -> bool {
    match sem {
        // Labelled nulls intern to distinct codes, so plain code equality
        // is exactly Skolem-chase equality.
        NullSemantics::Standard => a == b,
        NullSemantics::MaybeMatch => {
            let union = am | bm;
            if union == 0 {
                a == b
            } else {
                a.iter()
                    .zip(b.iter())
                    .enumerate()
                    .all(|(c, (x, y))| (union >> c) & 1 == 1 || x == y)
            }
        }
    }
}

/// Even row-range split for `threads` workers over `n` rows.
fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.max(1).min(n.max(1));
    let base = n / t;
    let extra = n % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for i in 0..t {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// How many shards to actually use for `n` rows, honouring the
/// summability gate (parallel weight sums must be exact to stay
/// bit-identical to the sequential order).
fn effective_threads(n: usize, threads: usize, weights: Option<&[f64]>) -> usize {
    if threads <= 1 || n < 2 * MIN_ROWS_PER_THREAD || !weights_exactly_summable(weights) {
        1
    } else {
        threads.min(n / MIN_ROWS_PER_THREAD).max(1)
    }
}

/// Map rows `0..n` through `f` into a fresh `Vec`, sharding across
/// `threads` scoped workers. Chunks are written into pre-allocated slots
/// and concatenated in chunk order, so the output is identical to the
/// sequential map for any thread count.
pub fn par_map_rows<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let t = if threads <= 1 || n < 2 * MIN_ROWS_PER_THREAD {
        1
    } else {
        threads.min(n / MIN_ROWS_PER_THREAD).max(1)
    };
    if t == 1 {
        return (0..n).map(f).collect();
    }
    let ranges = chunk_ranges(n, t);
    let mut slots: Vec<Option<Vec<T>>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|s| {
        for (slot, &(lo, hi)) in slots.iter_mut().zip(ranges.iter()) {
            let f = &f;
            s.spawn(move || {
                *slot = Some((lo..hi).map(f).collect());
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for chunk in slots.into_iter().flatten() {
        out.extend(chunk);
    }
    out
}

/// Group statistics over a coded table restricted to the listed column
/// `positions`, the columnar equivalent of
/// [`group_stats_on`](crate::maybe_match::group_stats_on) (pass all
/// positions for the full [`group_stats`](crate::maybe_match::group_stats)
/// semantics). `codes` is row-major with stride `width`;
/// `null_masks[i] & (1 << c)` says row `i` is null in column `c`.
///
/// Produces exactly the per-row counts and weight sums of the row-based
/// pass; see the module docs for when the sharded path engages and why
/// it is bit-identical.
pub fn group_stats_codes(
    codes: &[u32],
    null_masks: &[u64],
    width: usize,
    positions: &[usize],
    weights: Option<&[f64]>,
    sem: NullSemantics,
    threads: usize,
) -> GroupStats {
    let n = null_masks.len();
    let w = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);
    if n == 0 {
        return GroupStats {
            count: Vec::new(),
            weight_sum: Vec::new(),
        };
    }
    if positions.is_empty() {
        // Zero projected columns: every row matches every row.
        let total: f64 = (0..n).map(w).sum();
        return GroupStats {
            count: vec![n; n],
            weight_sum: vec![total; n],
        };
    }

    let pos_bits: u64 = positions.iter().fold(0u64, |m, &p| m | (1 << p));
    let full = positions.len() == width && positions.iter().enumerate().all(|(i, &p)| i == p);

    // Under standard semantics — or maybe-match with no null in any
    // projected cell — matching is exact code equality, a single
    // shardable hash-grouping pass.
    let no_nulls = null_masks.iter().all(|&m| m & pos_bits == 0);
    if sem == NullSemantics::Standard || no_nulls {
        return exact_grouping(codes, width, positions, full, None, n, weights, threads);
    }

    // --- maybe-match with nulls present ---
    let nulled: Vec<usize> = (0..n).filter(|&i| null_masks[i] & pos_bits != 0).collect();

    // Exact grouping of the complete rows (rows with no projected null).
    let skip_mask = pos_bits;
    let mut stats = exact_grouping(
        codes,
        width,
        positions,
        full,
        Some((null_masks, skip_mask)),
        n,
        weights,
        threads,
    );

    // Group nulled rows by their projected null mask; masks iterate in
    // sorted order so the accumulation order never depends on hash seeds.
    let mut by_mask: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for &i in &nulled {
        by_mask.entry(null_masks[i] & pos_bits).or_default().push(i);
    }

    for (mask, members) in &by_mask {
        let const_cols: Vec<usize> = positions
            .iter()
            .copied()
            .filter(|&c| mask & (1 << c) == 0)
            .collect();
        // Index the complete rows on the mask's constant positions.
        let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for i in 0..n {
            if null_masks[i] & pos_bits != 0 {
                continue;
            }
            let key: Vec<u32> = const_cols.iter().map(|&c| codes[i * width + c]).collect();
            index.entry(key).or_default().push(i);
        }
        for &i in members {
            let key: Vec<u32> = const_cols.iter().map(|&c| codes[i * width + c]).collect();
            if let Some(bucket) = index.get(&key) {
                // Nulled row i matches every complete row in the bucket,
                // and vice versa (maybe-match is symmetric).
                stats.count[i] += bucket.len();
                for &j in bucket {
                    stats.weight_sum[i] += w(j);
                    stats.count[j] += 1;
                    stats.weight_sum[j] += w(i);
                }
            }
        }
    }

    // Nulled-vs-nulled (including self): pairwise over the null-carrying
    // rows, mirroring the row-based pass increment for increment.
    for (a_pos, &i) in nulled.iter().enumerate() {
        stats.count[i] += 1; // self
        stats.weight_sum[i] += w(i);
        for &j in nulled.iter().skip(a_pos + 1) {
            if projected_maybe_match(codes, null_masks, width, positions, pos_bits, i, j) {
                stats.count[i] += 1;
                stats.weight_sum[i] += w(j);
                stats.count[j] += 1;
                stats.weight_sum[j] += w(i);
            }
        }
    }

    stats
}

/// Maybe-match between rows `i` and `j` on the projected positions.
#[inline]
fn projected_maybe_match(
    codes: &[u32],
    null_masks: &[u64],
    width: usize,
    positions: &[usize],
    pos_bits: u64,
    i: usize,
    j: usize,
) -> bool {
    let union = (null_masks[i] | null_masks[j]) & pos_bits;
    positions
        .iter()
        .all(|&c| (union >> c) & 1 == 1 || codes[i * width + c] == codes[j * width + c])
}

/// One exact hash-grouping pass over the coded table. `skip` optionally
/// excludes rows whose null mask intersects the given bits (their slots
/// stay zero for the caller's null phases). Shards when profitable and
/// exact; merges shard subtotals in chunk order.
#[allow(clippy::too_many_arguments)]
fn exact_grouping(
    codes: &[u32],
    width: usize,
    positions: &[usize],
    full: bool,
    skip: Option<(&[u64], u64)>,
    n: usize,
    weights: Option<&[f64]>,
    threads: usize,
) -> GroupStats {
    let w = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);
    let skipped = |i: usize| match skip {
        Some((masks, bits)) => masks[i] & bits != 0,
        None => false,
    };
    let key_of =
        |i: usize| -> Vec<u32> { positions.iter().map(|&p| codes[i * width + p]).collect() };

    let t = effective_threads(n, threads, weights);

    // Aggregate. Full-width keys borrow the code slice directly (zero
    // allocation); sub-projections build small `Vec<u32>` keys.
    let mut count = vec![0usize; n];
    let mut weight_sum = vec![0.0f64; n];
    if full {
        let agg: HashMap<&[u32], (usize, f64)> = if t == 1 {
            let mut agg: HashMap<&[u32], (usize, f64)> = HashMap::with_capacity(n.min(1 << 20));
            for i in 0..n {
                if skipped(i) {
                    continue;
                }
                let e = agg
                    .entry(&codes[i * width..(i + 1) * width])
                    .or_insert((0, 0.0));
                e.0 += 1;
                e.1 += w(i);
            }
            agg
        } else {
            let ranges = chunk_ranges(n, t);
            type ShardAgg<'a> = Option<HashMap<&'a [u32], (usize, f64)>>;
            let mut slots: Vec<ShardAgg<'_>> = Vec::new();
            slots.resize_with(ranges.len(), || None);
            std::thread::scope(|s| {
                for (slot, &(lo, hi)) in slots.iter_mut().zip(ranges.iter()) {
                    s.spawn(move || {
                        let mut local: HashMap<&[u32], (usize, f64)> = HashMap::new();
                        for i in lo..hi {
                            if skipped(i) {
                                continue;
                            }
                            let e = local
                                .entry(&codes[i * width..(i + 1) * width])
                                .or_insert((0, 0.0));
                            e.0 += 1;
                            e.1 += w(i);
                        }
                        *slot = Some(local);
                    });
                }
            });
            // Deterministic sequential merge in chunk order; integer
            // counts and gate-exact weight sums make the grouping of the
            // additions immaterial to the result bits.
            let mut agg: HashMap<&[u32], (usize, f64)> = HashMap::with_capacity(n.min(1 << 20));
            for slot in slots.into_iter().flatten() {
                for (k, (c, s2)) in slot {
                    let e = agg.entry(k).or_insert((0, 0.0));
                    e.0 += c;
                    e.1 += s2;
                }
            }
            agg
        };
        // Fill phase: read-only lookups into disjoint output chunks.
        if t == 1 {
            for i in 0..n {
                if skipped(i) {
                    continue;
                }
                if let Some(&(c, s2)) = agg.get(&codes[i * width..(i + 1) * width]) {
                    count[i] = c;
                    weight_sum[i] = s2;
                }
            }
            return GroupStats { count, weight_sum };
        }
        let ranges = chunk_ranges(n, t);
        std::thread::scope(|s| {
            let mut crem: &mut [usize] = &mut count;
            let mut wrem: &mut [f64] = &mut weight_sum;
            for &(lo, hi) in &ranges {
                let (chead, ctail) = crem.split_at_mut(hi - lo);
                let (whead, wtail) = wrem.split_at_mut(hi - lo);
                crem = ctail;
                wrem = wtail;
                let agg = &agg;
                s.spawn(move || {
                    for i in lo..hi {
                        if skipped(i) {
                            continue;
                        }
                        if let Some(&(c, s2)) = agg.get(&codes[i * width..(i + 1) * width]) {
                            chead[i - lo] = c;
                            whead[i - lo] = s2;
                        }
                    }
                });
            }
        });
    } else {
        // Sub-projection path (SUDA's subset sweeps): small tables,
        // sequential is fine.
        let mut agg: HashMap<Vec<u32>, (usize, f64)> = HashMap::with_capacity(n);
        for i in 0..n {
            if skipped(i) {
                continue;
            }
            let e = agg.entry(key_of(i)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += w(i);
        }
        for i in 0..n {
            if skipped(i) {
                continue;
            }
            if let Some(&(c, s2)) = agg.get(&key_of(i)) {
                count[i] = c;
                weight_sum[i] = s2;
            }
        }
    }
    GroupStats { count, weight_sum }
}

/// Incrementally repair `stats` after row `row` changed a single cell:
/// the columnar analogue of
/// [`GroupStats::apply_row_change`](crate::maybe_match::GroupStats::apply_row_change),
/// with the same flip-then-rescan shape and the same exactness caveat
/// (gate on [`weights_exactly_summable`] for bit-identical warm ≡ cold).
/// `codes`/`null_masks` must already hold the *new* contents;
/// `old_codes`/`old_mask` are the row's previous coded contents.
#[allow(clippy::too_many_arguments)]
pub fn apply_cell_change_codes(
    codes: &[u32],
    null_masks: &[u64],
    width: usize,
    weights: Option<&[f64]>,
    sem: NullSemantics,
    row: usize,
    old_codes: &[u32],
    old_mask: u64,
    stats: &mut GroupStats,
) {
    let n = null_masks.len();
    let w = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);
    let w_row = w(row);
    let new_codes = &codes[row * width..(row + 1) * width];
    let new_mask = null_masks[row];
    for j in 0..n {
        if j == row {
            continue;
        }
        let other = &codes[j * width..(j + 1) * width];
        let om = null_masks[j];
        let was = codes_match(old_codes, old_mask, other, om, sem);
        let now = codes_match(new_codes, new_mask, other, om, sem);
        if was == now {
            continue;
        }
        if now {
            stats.count[j] += 1;
            stats.weight_sum[j] += w_row;
        } else {
            stats.count[j] -= 1;
            stats.weight_sum[j] -= w_row;
        }
    }
    // The changed row's own group may have been reshaped arbitrarily:
    // recompute it from scratch.
    let mut c = 0usize;
    let mut s = 0.0f64;
    for j in 0..n {
        if codes_match(
            new_codes,
            new_mask,
            &codes[j * width..(j + 1) * width],
            null_masks[j],
            sem,
        ) {
            c += 1;
            s += w(j);
        }
    }
    stats.count[row] = c;
    stats.weight_sum[row] = s;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maybe_match::{group_stats, group_stats_on};

    /// Encode a row-major `Value` table into (codes, masks, width).
    fn encode(rows: &[Vec<Value>]) -> (Vec<u32>, Vec<u64>, usize) {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut dicts: Vec<ColumnDict> = (0..width).map(|_| ColumnDict::new()).collect();
        let mut codes = Vec::with_capacity(rows.len() * width);
        let mut masks = Vec::with_capacity(rows.len());
        for r in rows {
            let mut m = 0u64;
            for (c, v) in r.iter().enumerate() {
                if v.is_null() {
                    m |= 1 << c;
                }
                codes.push(dicts[c].intern(v));
            }
            masks.push(m);
        }
        (codes, masks, width)
    }

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    fn mixed_table() -> Vec<Vec<Value>> {
        vec![
            vec![s("Roma"), Value::Null(0), s("1000+"), s("0-30")],
            vec![s("Roma"), s("Commerce"), s("1000+"), s("0-30")],
            vec![s("Roma"), s("Commerce"), s("1000+"), s("0-30")],
            vec![s("Roma"), s("Financial"), s("1000+"), s("0-30")],
            vec![s("Roma"), s("Financial"), Value::Null(3), s("0-30")],
            vec![s("Milano"), s("Construction"), s("0-200"), s("60-90")],
            vec![
                Value::Null(1),
                s("Construction"),
                s("0-200"),
                Value::Null(2),
            ],
        ]
    }

    fn assert_same(a: &GroupStats, b: &GroupStats) {
        assert_eq!(a.count, b.count, "counts diverged");
        assert_eq!(a.weight_sum, b.weight_sum, "weight sums diverged");
    }

    #[test]
    fn matches_row_based_group_stats_on_mixed_nulls() {
        let rows = mixed_table();
        let (codes, masks, width) = encode(&rows);
        let all: Vec<usize> = (0..width).collect();
        let weights: Vec<f64> = (0..rows.len()).map(|i| (i as f64 + 1.0) * 2.0).collect();
        for sem in [NullSemantics::MaybeMatch, NullSemantics::Standard] {
            for w in [None, Some(weights.as_slice())] {
                let colv = group_stats_codes(&codes, &masks, width, &all, w, sem, 1);
                let rowv = group_stats(&rows, w, sem);
                assert_same(&colv, &rowv);
            }
        }
    }

    #[test]
    fn matches_row_based_on_sub_projections() {
        let rows = mixed_table();
        let (codes, masks, width) = encode(&rows);
        let weights: Vec<f64> = vec![10.0, 20.0, 20.0, 30.0, 30.0, 5.0, 5.0];
        for positions in [vec![0], vec![1, 3], vec![0, 2, 3], vec![2]] {
            for sem in [NullSemantics::MaybeMatch, NullSemantics::Standard] {
                let colv =
                    group_stats_codes(&codes, &masks, width, &positions, Some(&weights), sem, 1);
                let rowv = group_stats_on(&rows, &positions, Some(&weights), sem);
                assert_same(&colv, &rowv);
            }
        }
    }

    #[test]
    fn sharded_equals_sequential_bitwise() {
        // Large enough to clear the per-thread row floor; integer weights
        // keep the parallel sums exact.
        let n = 3 * MIN_ROWS_PER_THREAD;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                if i % 97 == 0 {
                    vec![Value::Null(i as u64), Value::Int((i % 7) as i64)]
                } else {
                    vec![Value::Int((i % 23) as i64), Value::Int((i % 7) as i64)]
                }
            })
            .collect();
        let weights: Vec<f64> = (0..n).map(|i| ((i % 13) + 1) as f64).collect();
        let (codes, masks, width) = encode(&rows);
        let all: Vec<usize> = (0..width).collect();
        for sem in [NullSemantics::MaybeMatch, NullSemantics::Standard] {
            let seq = group_stats_codes(&codes, &masks, width, &all, Some(&weights), sem, 1);
            let par = group_stats_codes(&codes, &masks, width, &all, Some(&weights), sem, 4);
            assert_same(&seq, &par);
            let rowv = group_stats(&rows, Some(&weights), sem);
            assert_same(&par, &rowv);
        }
    }

    #[test]
    fn non_summable_weights_fall_back_to_sequential() {
        let n = 3 * MIN_ROWS_PER_THREAD;
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int((i % 11) as i64)]).collect();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect();
        let (codes, masks, width) = encode(&rows);
        let seq = group_stats_codes(
            &codes,
            &masks,
            width,
            &[0],
            Some(&weights),
            NullSemantics::MaybeMatch,
            1,
        );
        let par = group_stats_codes(
            &codes,
            &masks,
            width,
            &[0],
            Some(&weights),
            NullSemantics::MaybeMatch,
            8,
        );
        // The gate forces both through the same sequential order.
        assert_same(&seq, &par);
    }

    #[test]
    fn cell_patch_matches_cold_recompute() {
        let mut rows = mixed_table();
        let weights: Vec<f64> = vec![10.0, 20.0, 20.0, 30.0, 30.0, 5.0, 5.0];
        let (mut codes, mut masks, width) = encode(&rows);
        let all: Vec<usize> = (0..width).collect();
        let mut dicts: Vec<ColumnDict> = (0..width).map(|_| ColumnDict::new()).collect();
        for (i, r) in rows.iter().enumerate() {
            for (c, v) in r.iter().enumerate() {
                assert_eq!(dicts[c].intern(v), codes[i * width + c]);
            }
        }
        for sem in [NullSemantics::MaybeMatch, NullSemantics::Standard] {
            let mut stats = group_stats_codes(&codes, &masks, width, &all, Some(&weights), sem, 1);
            // Suppress row 3's sector, then recode row 5's area.
            for (row, col, v) in [(3usize, 1usize, Value::Null(9)), (5, 0, s("Torino"))] {
                let old_codes: Vec<u32> = codes[row * width..(row + 1) * width].to_vec();
                let old_mask = masks[row];
                let code = dicts[col].intern(&v);
                codes[row * width + col] = code;
                if v.is_null() {
                    masks[row] |= 1 << col;
                } else {
                    masks[row] &= !(1 << col);
                }
                rows[row][col] = v;
                apply_cell_change_codes(
                    &codes,
                    &masks,
                    width,
                    Some(&weights),
                    sem,
                    row,
                    &old_codes,
                    old_mask,
                    &mut stats,
                );
                let cold = group_stats_codes(&codes, &masks, width, &all, Some(&weights), sem, 1);
                assert_same(&stats, &cold);
                let rowv = group_stats(&rows, Some(&weights), sem);
                assert_same(&stats, &rowv);
            }
            // restore for the next semantics round
            rows = mixed_table();
            let (c2, m2, _) = encode(&rows);
            codes = c2;
            masks = m2;
            dicts = (0..width).map(|_| ColumnDict::new()).collect();
            for r in &rows {
                for (c, v) in r.iter().enumerate() {
                    dicts[c].intern(v);
                }
            }
        }
    }

    #[test]
    fn par_map_rows_preserves_order() {
        let n = 3 * MIN_ROWS_PER_THREAD;
        let seq = par_map_rows(n, 1, |i| i * 3);
        let par = par_map_rows(n, 4, |i| i * 3);
        assert_eq!(seq, par);
        assert_eq!(seq[17], 51);
        assert_eq!(seq.len(), n);
    }

    #[test]
    fn dictionary_interning_is_stable_and_cheap() {
        let mut d = ColumnDict::new();
        let a = d.intern(&s("x"));
        let b = d.intern(&s("y"));
        assert_eq!(d.intern(&s("x")), a);
        assert_ne!(a, b);
        assert_eq!(d.value(b), &s("y"));
        assert_eq!(d.code(&s("y")), Some(b));
        assert_eq!(d.code(&s("z")), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_and_zero_width_inputs() {
        let gs = group_stats_codes(&[], &[], 0, &[], None, NullSemantics::MaybeMatch, 4);
        assert!(gs.count.is_empty());
        // zero projected columns over 3 rows: one universal group
        let gs = group_stats_codes(&[], &[0, 0, 0], 0, &[], None, NullSemantics::Standard, 1);
        assert_eq!(gs.count, vec![3, 3, 3]);
        assert_eq!(gs.weight_sum, vec![3.0, 3.0, 3.0]);
    }
}
