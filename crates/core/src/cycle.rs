//! The anonymization cycle (paper §4.1, Algorithms 2 and 9).
//!
//! Risk evaluation and anonymization alternate until every tuple's
//! disclosure risk is at or below the threshold `T`:
//!
//! ```text
//! Tuple(M, I, VSet), #risk(I, R), R > T → #anonymize(I)
//! Tuple(M, I, VSet), #risk(I, R), R ≤ T → TupleA(M, I, VSet)
//! ```
//!
//! Both `risk` and `anonymize` are *polymorphic* plug-ins: any
//! [`RiskMeasure`] and any [`Anonymizer`] can be combined. Each iteration
//! applies one minimal anonymization step per violating tuple and
//! re-evaluates, so the cycle is preemptive (risk is scored before
//! sharing), active (it rewrites the data only when the threshold is
//! violated) and statistics-preserving (it stops as soon as the threshold
//! holds). Every decision lands in the [`AuditLog`] for full
//! explainability.

use crate::anonymize::{AnonymizationAction, AnonymizeError, Anonymizer};
use crate::checkpoint::Checkpoint;
use crate::colstore::{self, WARM_STATS_ARTIFACT};
use crate::degrade::{self, DegradeTrigger, FallbackPolicy, FallbackRecord};
use crate::dictionary::MetadataDictionary;
use crate::explain::{AuditLog, Decision};
use crate::journal::record::JournalRecord;
use crate::journal::{self, JournalConfig, JournalError, JournalProfile, JournalWriter};
use crate::maybe_match::{weights_exactly_summable, GroupStats, NullSemantics};
use crate::metrics::information_loss;
use crate::model::MicrodataDb;
use crate::progress::{self, ProgressEstimate};
use crate::risk::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vadalog::backend::{ArtifactIo, FileBackend, StorageBackend, StorageEngine};
use vadalog::CancelToken;
use vadasa_obs::metrics::MetricsRegistry;
use vadasa_obs::{fields, next_span_id, Collector, Obs};

/// Which violating tuples to anonymize first (paper §4.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TupleOrder {
    /// "Less significant first": ascending sampling weight, so the cycle
    /// spends information loss on tuples that matter least statistically.
    #[default]
    LessSignificantFirst,
    /// "Most risky first": descending risk score.
    MostRiskyFirst,
    /// Row order (no heuristic) — the ablation baseline.
    Fifo,
}

/// How much work one cycle iteration performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StepGranularity {
    /// One anonymization step for *every* violating tuple, then re-evaluate.
    /// Converges in few iterations; the default for large tables.
    #[default]
    AllRiskyPerIteration,
    /// One step for the single highest-priority tuple, then re-evaluate.
    /// Maximally greedy (closest to the paper's per-binding activation):
    /// each step sees the effect of the previous one, at the price of one
    /// risk evaluation per step.
    OneTuplePerIteration,
}

/// How many equivalence classes one batched iteration anonymizes (the
/// million-row heuristic). With batching on, the cycle hands the
/// anonymizer *all* rows of the selected classes in one iteration and
/// recomputes group statistics once afterwards — one `O(n)` regroup per
/// iteration instead of one `O(n)` statistics repair per row.
///
/// Suppressing one member of an exact equivalence class never changes its
/// siblings' match sets (the suppressed row still maybe-matches its old
/// class), so whole-class batching skips no within-class defusal; only
/// cross-class defusal inside one batch is conceded, which can at worst
/// over-suppress — never end less safe than the one-tuple path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStrategy {
    /// One row per iteration — the naive baseline the scale benchmark
    /// compares against (equivalent to
    /// [`StepGranularity::OneTuplePerIteration`] with per-row rechecks).
    OneTuple,
    /// All rows of the single highest-priority equivalence class.
    PerClass,
    /// All rows of the `n` highest-priority equivalence classes
    /// (`TopN(1)` ≡ [`BatchStrategy::PerClass`]).
    TopN(usize),
}

/// Storage backend selection for the cycle's persisted warm artifacts.
///
/// With the default in-memory engine the cycle behaves exactly as before:
/// nothing but the journal (when configured) touches disk. Selecting
/// [`StorageEngine::File`] additionally persists the warm-start
/// equivalence-group statistics beside the journal at every snapshot
/// boundary, so [`AnonymizationCycle::resume`] can re-seed its warm state
/// from disk instead of regrouping cold. The artifact is strictly a
/// *cache*: any load failure — missing, torn, corrupt, alien magic,
/// future version, stale iteration count — is discarded and the first
/// evaluation regroups from the recovered table, converging to the
/// bit-identical result.
#[derive(Clone, Default)]
pub struct StorageOptions {
    /// Which storage engine backs persisted warm artifacts.
    pub engine: StorageEngine,
    /// Artifact byte-I/O override for fault injection (see
    /// [`crate::faults::faulty_artifact_io`]); `None` uses real files.
    /// Ignored under the in-memory engine.
    pub artifact_io: Option<Arc<dyn ArtifactIo>>,
}

impl fmt::Debug for StorageOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StorageOptions")
            .field("engine", &self.engine)
            .field(
                "artifact_io",
                &self.artifact_io.as_ref().map(|_| "<injected>"),
            )
            .finish()
    }
}

/// Cycle configuration.
#[derive(Debug, Clone)]
pub struct CycleConfig {
    /// Risk threshold `T ∈ [0, 1]` (Algorithm 2).
    pub threshold: f64,
    /// Tuple prioritization heuristic.
    pub tuple_order: TupleOrder,
    /// Iteration granularity.
    pub granularity: StepGranularity,
    /// Null semantics used for risk-group formation.
    pub semantics: NullSemantics,
    /// Hard cap on cycle iterations.
    pub max_iterations: usize,
    /// Record the audit trail (cheap; on by default).
    pub audit: bool,
    /// Optional wall-clock deadline for the whole run, checked between
    /// iterations. On expiry the cycle reacts per [`CycleConfig::fallback`].
    pub deadline: Option<Duration>,
    /// What to do when the cycle cannot converge normally (iteration cap,
    /// deadline, cancellation, plug-in panic). The default degrades
    /// gracefully via [`degrade::suppress_all_risky`].
    pub fallback: FallbackPolicy,
    /// Warm-start incremental re-evaluation (on by default). The
    /// [`MicrodataView`] is built once and patched across iterations, and
    /// risk evaluation is served from incrementally maintained
    /// equivalence-group statistics whenever the measure supports
    /// [`RiskMeasure::report_from_groups`] and the weights are exactly
    /// summable. `false` restores the cold per-iteration rebuild — the
    /// equivalence baseline and the benchmark reference point.
    pub warm_start: bool,
    /// Crash-safe persistence: when set, every committed action is
    /// journaled and the working state is periodically snapshotted, so an
    /// interrupted run can continue via [`AnonymizationCycle::resume`] —
    /// bit-identically to a run that was never interrupted. `None` (the
    /// default) keeps the cycle purely in-memory.
    pub journal: Option<JournalConfig>,
    /// Batched heuristic (§4.4 at scale): `None` (the default) keeps the
    /// legacy per-tuple behaviour byte-for-byte; `Some` selects how many
    /// equivalence classes each iteration anonymizes at once.
    pub batch: Option<BatchStrategy>,
    /// Worker threads for partitioned risk evaluation (group-stats
    /// regrouping and per-row scoring). `1` keeps everything sequential;
    /// more threads shard the row space and merge deterministically, so
    /// any thread count yields bitwise-identical reports.
    pub risk_threads: usize,
    /// Storage backend for persisted warm artifacts (see
    /// [`StorageOptions`]). The default in-memory engine keeps legacy
    /// behaviour byte-for-byte; the file engine persists warm group
    /// statistics beside the journal so resumed runs re-warm from disk.
    /// Deliberately excluded from the journal fingerprint: the backend
    /// choice affects where caches live, never what the cycle computes.
    pub storage: StorageOptions,
}

impl Default for CycleConfig {
    fn default() -> Self {
        CycleConfig {
            threshold: 0.5,
            tuple_order: TupleOrder::default(),
            granularity: StepGranularity::default(),
            semantics: NullSemantics::MaybeMatch,
            max_iterations: 10_000,
            audit: true,
            deadline: None,
            fallback: FallbackPolicy::default(),
            warm_start: true,
            journal: None,
            batch: None,
            risk_threads: 1,
            storage: StorageOptions::default(),
        }
    }
}

/// One observed iteration of the cycle: the risk landscape the iteration
/// saw, what the heuristic decided, and what the anonymizer did about it.
#[derive(Debug, Clone, Default)]
pub struct IterationRecord {
    /// Iteration ordinal (0-based). The final, converged evaluation is
    /// also recorded (with `targets == 0`), so a converging run produces
    /// `CycleOutcome::iterations + 1` records.
    pub iteration: usize,
    /// Tuples above the threshold (excluding already-exhausted tuples).
    pub risky: usize,
    /// Tuples the anonymizer has given up on so far.
    pub exhausted: usize,
    /// Minimum per-tuple risk over the whole table.
    pub min_risk: f64,
    /// Mean per-tuple risk over the whole table.
    pub mean_risk: f64,
    /// Maximum per-tuple risk over the whole table.
    pub max_risk: f64,
    /// The heuristic decision taken, e.g.
    /// `less-significant-first/all-risky → row 5`.
    pub heuristic: String,
    /// Rows handed to the anonymizer this iteration (after granularity
    /// truncation; some may be skipped by the incremental recheck).
    pub targets: usize,
    /// Suppression steps applied this iteration.
    pub suppressions: usize,
    /// Global recodings applied this iteration.
    pub recodings: usize,
    /// Wall-clock nanoseconds inside risk evaluation this iteration.
    pub risk_eval_ns: u64,
    /// Wall-clock nanoseconds of the whole iteration.
    pub dur_ns: u64,
}

/// Warm-start telemetry: how much work the incremental path saved (and
/// how often it had to give up). All counters stay zero when
/// [`CycleConfig::warm_start`] is off, so cold runs emit exactly what they
/// did before. When an engine session drives the risk program, its
/// [`vadalog::SessionStats`] can be folded in via
/// [`WarmCycleProfile::absorb_engine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmCycleProfile {
    /// Risk evaluations served from incrementally patched group statistics.
    pub warm_evals: u64,
    /// Risk evaluations that regrouped the table from scratch (the first
    /// evaluation of a run always does).
    pub cold_evals: u64,
    /// View rows patched in place instead of rebuilding the view.
    pub patched_facts: u64,
    /// Engine strata skipped by warm re-derivation (engine-backed runs).
    pub strata_skipped: u64,
    /// Times the warm path fell back to a cold evaluation (unsupported
    /// measure, inexact weights, or an engine-side fallback).
    pub fallback_to_cold: u64,
    /// Estimated bytes of retained state (view + group statistics, or
    /// engine hash indexes) reused instead of rebuilt, summed over warm
    /// evaluations.
    pub reused_index_bytes: u64,
    /// Warm seeds restored from a persisted on-disk artifact instead of a
    /// cold regroup (file-backed resumed runs only). Not persisted in
    /// checkpoints: it describes this process's runs, not the journal's.
    pub disk_restores: u64,
    /// Warm-artifact persist attempts that failed. Non-fatal — the run
    /// continues unchanged; only a later resume loses its disk warm seed.
    pub persist_errors: u64,
}

impl WarmCycleProfile {
    /// Fold an engine session's warm-start statistics into this profile,
    /// bridging `engine.warm.*` into the `cycle.warm.*` counters.
    pub fn absorb_engine(&mut self, stats: &vadalog::SessionStats) {
        self.patched_facts += stats.patched_facts;
        self.strata_skipped += stats.strata_skipped;
        self.reused_index_bytes += stats.reused_index_bytes;
        self.fallback_to_cold += stats.cold_fallbacks;
        self.warm_evals += stats.warm_patches;
    }
}

/// Telemetry profile of one cycle run: per-iteration records plus totals.
#[derive(Debug, Clone, Default)]
pub struct CycleProfile {
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationRecord>,
    /// Total wall-clock nanoseconds inside risk evaluation.
    pub risk_eval_ns: u64,
    /// Total wall-clock nanoseconds of the run.
    pub total_ns: u64,
    /// The degradation event, when the run fell back to
    /// [`degrade::suppress_all_risky`] — a first-class part of the
    /// profile, replayed to collectors as a `cycle.fallback` event.
    pub fallback: Option<FallbackRecord>,
    /// Warm-start counters (all zero on cold runs).
    pub warm: WarmCycleProfile,
    /// Write-ahead-journal counters (all zero on unjournaled runs).
    pub journal: JournalProfile,
    /// Final convergence estimate fitted from the per-iteration
    /// rows-at-risk series (`None` when no iteration ever ran).
    pub progress: Option<ProgressEstimate>,
}

impl CycleProfile {
    /// Seconds spent in risk evaluation (the dotted lines of Figures
    /// 7e/7f) — a derived view over [`CycleProfile::risk_eval_ns`].
    pub fn risk_eval_seconds(&self) -> f64 {
        self.risk_eval_ns as f64 / 1e9
    }

    /// Replay the profile into a collector as an explicitly placed trace
    /// tree: one `cycle.run` root covering the whole run, one
    /// `cycle.iteration` child per record at its cumulative offset, and
    /// one `cycle.iter.risk_eval` grandchild carrying each iteration's
    /// risk-evaluation share. Child intervals are clamped into their
    /// parent's, so exporters always see properly nested spans.
    pub fn emit(&self, obs: &Obs<'_>) {
        if !obs.enabled() {
            return;
        }
        let run_id = next_span_id();
        let mut cursor = 0u64;
        for r in &self.iterations {
            let start = cursor.min(self.total_ns);
            let dur = r.dur_ns.min(self.total_ns - start);
            let iter_id = next_span_id();
            obs.span_in(
                "cycle.iteration",
                iter_id,
                run_id,
                start,
                dur,
                fields![
                    "iteration" => r.iteration,
                    "risky" => r.risky,
                    "exhausted" => r.exhausted,
                    "min_risk" => r.min_risk,
                    "mean_risk" => r.mean_risk,
                    "max_risk" => r.max_risk,
                    "heuristic" => r.heuristic.as_str(),
                    "targets" => r.targets,
                    "suppressions" => r.suppressions,
                    "recodings" => r.recodings,
                    "risk_eval_ns" => r.risk_eval_ns
                ],
            );
            obs.span_in(
                "cycle.iter.risk_eval",
                next_span_id(),
                iter_id,
                start,
                r.risk_eval_ns.min(dur),
                fields!["iteration" => r.iteration],
            );
            cursor = cursor.saturating_add(r.dur_ns);
        }
        obs.span_in(
            "cycle.risk_eval",
            next_span_id(),
            run_id,
            0,
            self.risk_eval_ns.min(self.total_ns),
            fields!["iterations" => self.iterations.len()],
        );
        obs.span_in(
            "cycle.run",
            run_id,
            0,
            0,
            self.total_ns,
            fields!["iterations" => self.iterations.len()],
        );
        if let Some(p) = &self.progress {
            obs.counter(
                "cycle.progress.rows_at_risk",
                p.rows_at_risk,
                fields!["trend" => p.trend, "confidence" => p.confidence],
            );
            if let Some(eta) = p.eta_iterations {
                obs.counter(
                    "cycle.progress.eta_iterations",
                    eta,
                    fields!["confidence" => p.confidence],
                );
            }
        }
        if let Some(fb) = &self.fallback {
            obs.counter(
                "cycle.fallback",
                1,
                fields![
                    "trigger" => fb.trigger.to_string(),
                    "passes" => fb.passes,
                    "rows_suppressed" => fb.rows_suppressed,
                    "cells_suppressed" => fb.cells_suppressed,
                    "residual_risky" => fb.residual_risky
                ],
            );
        }
        if self.warm != WarmCycleProfile::default() {
            let w = &self.warm;
            obs.counter(
                "cycle.warm.evals",
                w.warm_evals,
                fields!["cold_evals" => w.cold_evals],
            );
            obs.counter("cycle.warm.patched_facts", w.patched_facts, fields![]);
            obs.counter("cycle.warm.strata_skipped", w.strata_skipped, fields![]);
            obs.counter("cycle.warm.fallback_cold", w.fallback_to_cold, fields![]);
            obs.counter(
                "cycle.warm.reused_index_bytes",
                w.reused_index_bytes,
                fields![],
            );
            obs.counter("cycle.warm.disk_restores", w.disk_restores, fields![]);
            obs.counter("cycle.warm.persist_errors", w.persist_errors, fields![]);
        }
        if self.journal != JournalProfile::default() {
            let j = &self.journal;
            obs.counter(
                "cycle.journal.records",
                j.records_written,
                fields!["bytes" => j.bytes_written],
            );
            obs.counter(
                "cycle.journal.fsyncs",
                j.fsyncs,
                fields!["dir" => j.dir_fsyncs],
            );
            obs.counter(
                "cycle.journal.snapshots",
                j.snapshots_written,
                fields!["bytes" => j.snapshot_bytes],
            );
            obs.counter(
                "cycle.journal.replayed_actions",
                j.replayed_actions,
                fields!["discarded" => j.discarded_actions],
            );
            obs.counter(
                "cycle.journal.truncated_bytes",
                j.truncated_bytes,
                fields![],
            );
            obs.counter("cycle.journal.io_errors", j.io_errors, fields![]);
        }
    }
}

/// What a non-converging run had produced when the iteration cap hit:
/// carried on [`CycleError::DidNotConverge`] so the cap is debuggable.
#[derive(Debug)]
pub struct PartialCycle {
    /// Per-iteration telemetry up to (and including) the capped iteration.
    pub profile: CycleProfile,
    /// The audit trail of the decisions taken so far.
    pub audit: AuditLog,
}

/// Cycle failure.
#[derive(Debug)]
pub enum CycleError {
    /// Risk evaluation failed.
    Risk(RiskError),
    /// Anonymization failed.
    Anonymize(AnonymizeError),
    /// The iteration cap was hit before convergence.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Tuples still violating the threshold.
        still_risky: usize,
        /// Telemetry and audit trail accumulated before the cap.
        partial: Box<PartialCycle>,
    },
    /// A plug-in (risk measure or anonymizer) panicked and
    /// [`FallbackPolicy::Error`] was configured. Under the default
    /// [`FallbackPolicy::SuppressRisky`] the panic triggers graceful
    /// degradation instead.
    Plugin {
        /// Name of the panicking plug-in.
        plugin: String,
        /// The rendered panic payload.
        message: String,
    },
    /// The write-ahead journal failed: creation refused, recovery found a
    /// mismatched or unusable journal, or an I/O error occurred under
    /// [`crate::journal::IoErrorPolicy::Fail`].
    Journal(JournalError),
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::Risk(e) => write!(f, "{e}"),
            CycleError::Anonymize(e) => write!(f, "{e}"),
            CycleError::DidNotConverge {
                iterations,
                still_risky,
                ..
            } => write!(
                f,
                "anonymization cycle did not converge after {iterations} iterations ({still_risky} tuples still risky)"
            ),
            CycleError::Plugin { plugin, message } => {
                write!(f, "plug-in {plugin} panicked: {message}")
            }
            CycleError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CycleError {}

impl From<RiskError> for CycleError {
    fn from(e: RiskError) -> Self {
        CycleError::Risk(e)
    }
}
impl From<AnonymizeError> for CycleError {
    fn from(e: AnonymizeError) -> Self {
        CycleError::Anonymize(e)
    }
}
impl From<JournalError> for CycleError {
    fn from(e: JournalError) -> Self {
        CycleError::Journal(e)
    }
}

/// How a cycle run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CycleTermination {
    /// The cycle converged normally: risk ≤ `T` everywhere (modulo
    /// exhausted tuples).
    Converged,
    /// The cycle could not converge and fell back to
    /// [`degrade::suppress_all_risky`]; the released table is maximally
    /// suppressed where it matters, and the audit log records why.
    Degraded {
        /// What forced the fallback.
        trigger: DegradeTrigger,
    },
}

impl CycleTermination {
    /// Did the cycle converge without degradation?
    pub fn is_converged(&self) -> bool {
        matches!(self, CycleTermination::Converged)
    }
}

/// Outcome of a completed cycle.
#[derive(Debug)]
pub struct CycleOutcome {
    /// The anonymized microdata DB (`TupleA` of Algorithm 2).
    pub db: MicrodataDb,
    /// Iterations performed.
    pub iterations: usize,
    /// Labelled nulls injected by suppression steps.
    pub nulls_injected: usize,
    /// Global recodings applied.
    pub recodings: usize,
    /// Tuples violating the threshold before the first step.
    pub initial_risky: usize,
    /// Tuples that remain over the threshold (only possible when the
    /// anonymizer exhausted its options on them).
    pub final_risky: usize,
    /// Information loss per the paper's Figure 7b definition.
    pub information_loss: f64,
    /// Final risk report over the anonymized table.
    pub final_report: RiskReport,
    /// The decision-by-decision audit trail.
    pub audit: AuditLog,
    /// Per-iteration telemetry: risk landscape, heuristic decisions,
    /// actions, risk-evaluation time.
    pub profile: CycleProfile,
    /// Whether the run converged or degraded (and why).
    pub termination: CycleTermination,
}

impl CycleOutcome {
    /// Wall-clock seconds spent inside risk evaluation (the dotted lines
    /// of Figures 7e/7f) — derived from the profile.
    pub fn risk_eval_seconds(&self) -> f64 {
        self.profile.risk_eval_seconds()
    }
}

/// Estimated bytes of retained warm-start state: the live columnar view
/// (code arrays, null bitmaps, dictionaries) plus the maintained group
/// statistics — the allocation a cold iteration would have rebuilt from
/// scratch.
fn retained_bytes(view: &MicrodataView, stats: &GroupStats) -> u64 {
    let stats_bytes =
        stats.count.len() * (std::mem::size_of::<usize>() + std::mem::size_of::<f64>());
    (view.retained_bytes() + stats_bytes) as u64
}

/// Group the heuristic-ordered risky rows into exact equivalence classes
/// (keyed by their coded QI row — equal codes ⇔ equal cells) and keep the
/// first `classes` classes, class-major: all rows of the first class, then
/// all rows of the second, … Rows of unselected classes are left for later
/// iterations. Returns the selected rows and the class count.
fn select_batch(risky: &[usize], view: &MicrodataView, classes: usize) -> (Vec<usize>, usize) {
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
    for &row in risky {
        let key = view.row_codes(row).to_vec();
        match index.get(&key) {
            Some(&i) => members[i].push(row),
            None => {
                if members.len() >= classes {
                    continue;
                }
                index.insert(key, members.len());
                members.push(vec![row]);
            }
        }
    }
    let count = members.len();
    (members.into_iter().flatten().collect(), count)
}

/// How the main loop of [`AnonymizationCycle::run`] ended.
enum LoopEnd {
    /// Risk ≤ `T` everywhere (modulo exhausted tuples).
    Converged(RiskReport),
    /// A degradation trigger fired; `still_risky` is known for the
    /// iteration-cap case.
    Trigger(DegradeTrigger, Option<usize>),
}

/// The anonymization cycle: a risk measure, an anonymizer, a threshold.
pub struct AnonymizationCycle<'a> {
    risk: &'a dyn RiskMeasure,
    anonymizer: &'a dyn Anonymizer,
    /// Configuration knobs.
    pub config: CycleConfig,
    collector: Option<Arc<dyn Collector>>,
    cancel: Option<CancelToken>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<'a> AnonymizationCycle<'a> {
    /// Build a cycle from plug-ins and configuration.
    pub fn new(
        risk: &'a dyn RiskMeasure,
        anonymizer: &'a dyn Anonymizer,
        config: CycleConfig,
    ) -> Self {
        AnonymizationCycle {
            risk,
            anonymizer,
            config,
            collector: None,
            cancel: None,
            metrics: None,
        }
    }

    /// Attach a telemetry collector; it receives the per-iteration
    /// [`CycleProfile`] replayed as events after the run (including a run
    /// that hits the iteration cap).
    pub fn with_collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Attach a cooperative cancellation token, polled between iterations.
    /// Cancellation triggers the configured [`FallbackPolicy`], so under
    /// the default the caller still receives a safe (maximally suppressed)
    /// dataset.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attach a live metrics registry. Unlike the collector (which sees
    /// the profile replayed *after* the run), the registry is updated at
    /// every iteration boundary — `cycle.iteration`,
    /// `cycle.rows_at_risk`, `cycle.eta_iterations` and friends — so
    /// another thread can poll a mid-flight run.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Run the cycle on a copy of `db`; the input table is untouched.
    ///
    /// With [`CycleConfig::journal`] set, a **fresh** journal is started
    /// (an existing one is refused with
    /// [`JournalError::AlreadyExists`] — use
    /// [`resume`](Self::resume) for that).
    pub fn run(
        &self,
        db: &MicrodataDb,
        dict: &MetadataDictionary,
    ) -> Result<CycleOutcome, CycleError> {
        self.run_with(db, dict, None)
    }

    /// Resume an interrupted journaled run: recover the journal in
    /// [`CycleConfig::journal`] (truncating any torn tail), replay the
    /// committed actions onto the newest valid snapshot or the original
    /// table, and continue the cycle to its end. The outcome — final
    /// table, risk report, audit trail — is bit-identical to a run that
    /// was never interrupted.
    pub fn resume(
        &self,
        db: &MicrodataDb,
        dict: &MetadataDictionary,
    ) -> Result<CycleOutcome, CycleError> {
        let Some(jcfg) = &self.config.journal else {
            return Err(CycleError::Journal(JournalError::NotConfigured));
        };
        let fp = journal::fingerprint(
            db,
            dict,
            &self.config,
            self.risk.name(),
            self.anonymizer.name(),
        );
        let recovery = journal::recover(jcfg, db, self.config.threshold, fp)?;
        self.run_with(db, dict, Some(recovery))
    }

    fn run_with(
        &self,
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        recovery: Option<journal::Recovery>,
    ) -> Result<CycleOutcome, CycleError> {
        let mut profile = CycleProfile::default();
        let resumed = recovery.is_some();
        let (
            mut work,
            mut audit,
            mut exhausted,
            mut iterations,
            mut nulls_injected,
            mut recodings,
            mut initial_risky,
            recovered_profile,
            append_offset,
        ) = match recovery {
            Some(r) => (
                r.db,
                if self.config.audit {
                    r.audit
                } else {
                    AuditLog::default()
                },
                r.exhausted,
                r.iterations,
                r.nulls_injected,
                r.recodings,
                r.initial_risky,
                r.profile,
                r.append_offset,
            ),
            None => (
                db.clone(),
                AuditLog::default(),
                HashSet::new(),
                0,
                0,
                0,
                0,
                JournalProfile::default(),
                0,
            ),
        };
        let run_start = Instant::now();
        let t = self.config.threshold;
        let obs = Obs::new(self.collector.as_deref());

        // The write-ahead journal: one Action record per committed step,
        // one Commit per finished iteration, periodic atomic snapshots.
        let run_fp = self.config.journal.as_ref().map(|_| {
            journal::fingerprint(
                db,
                dict,
                &self.config,
                self.risk.name(),
                self.anonymizer.name(),
            )
        });
        let mut wal: Option<JournalWriter> = match (&self.config.journal, run_fp) {
            (Some(jcfg), Some(fp)) => {
                let begin = JournalRecord::Begin {
                    version: crate::journal::record::FORMAT_VERSION,
                    fingerprint: fp,
                    measure: self.risk.name().to_string(),
                    anonymizer: self.anonymizer.name().to_string(),
                    rows: db.len() as u64,
                };
                Some(if resumed {
                    JournalWriter::resume(jcfg, &begin, fp, append_offset, recovered_profile)?
                } else {
                    JournalWriter::create(jcfg, &begin, fp)?
                })
            }
            _ => None,
        };

        // The artifact store holding persisted warm state, colocated with
        // the journal. Only the file engine persists; a store that fails
        // to open is counted and skipped — the run proceeds cold-capable
        // exactly as under the in-memory engine.
        let mut artifact_store: Option<FileBackend> = None;
        if self.config.storage.engine == StorageEngine::File {
            if let Some(jcfg) = &self.config.journal {
                let opened = match &self.config.storage.artifact_io {
                    Some(io) => FileBackend::with_io(&jcfg.dir, Arc::clone(io)),
                    None => FileBackend::create(&jcfg.dir),
                };
                match opened {
                    Ok(b) => artifact_store = Some(b),
                    Err(_) => profile.warm.persist_errors += 1,
                }
            }
        }

        // A disk-persisted warm seed: group statistics restored from the
        // artifact store when their run fingerprint and iteration count
        // match the recovered journal *exactly*. Anything else — missing,
        // torn, corrupt, alien magic, future version, stale — is
        // discarded here and the first evaluation regroups cold from the
        // recovered table, converging to the bit-identical result.
        let mut recovered_warm: Option<GroupStats> = None;
        if resumed && self.config.warm_start {
            if let (Some(store), Some(fp)) = (&artifact_store, run_fp) {
                if let Ok(Some(bytes)) = store.get(WARM_STATS_ARTIFACT) {
                    if let Ok(ws) = colstore::decode_warm_stats(&bytes, Some(fp)) {
                        if ws.iterations == iterations as u64 {
                            recovered_warm = Some(ws.stats);
                        }
                    }
                }
            }
        }

        let qi_count = dict
            .quasi_identifiers(&work.name)
            .map(|v| v.len())
            .unwrap_or(0);

        // Warm-start state, retained across iterations: the live view
        // (patched in place by `patch_view`) and the incrementally
        // maintained equivalence-group statistics. `groups_supported`
        // latches to `false` the first time the warm fast path proves
        // inapplicable (unsupported measure, inexact weights) so the
        // fallback cost is paid once, not per iteration.
        let mut live_view: Option<MicrodataView> = None;
        let mut warm_stats: Option<GroupStats> = None;
        let mut groups_supported = self.config.warm_start;

        // Rows-above-threshold per evaluation, in order: the convergence
        // trajectory [`crate::progress::estimate`] fits. A resumed run
        // restarts the in-process series; the journal's `Progress`
        // records carry the full history for external monitors.
        let mut rows_series: Vec<u64> = Vec::new();

        let end: LoopEnd = 'cycle: loop {
            // Cooperative degradation checks, once per iteration.
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    break LoopEnd::Trigger(DegradeTrigger::Cancelled, None);
                }
            }
            if let Some(d) = self.config.deadline {
                if run_start.elapsed() >= d {
                    break LoopEnd::Trigger(DegradeTrigger::Deadline, None);
                }
            }

            let iter_start = Instant::now();
            let view = match &mut live_view {
                Some(v) if self.config.warm_start => v,
                slot => {
                    warm_stats = None;
                    slot.insert(MicrodataView::from_db_with(
                        &work,
                        dict,
                        self.config.semantics,
                        None,
                    )?)
                }
            };
            view.risk_threads = self.config.risk_threads.max(1);
            let t0 = Instant::now();
            // Warm path: serve the report from the maintained group
            // statistics when the measure supports it; otherwise (or on
            // the first iteration, which must group from scratch) run the
            // cold evaluation. `evaluated` unifies both paths for the
            // panic/err handling below.
            let mut evaluated: Option<
                Result<Result<RiskReport, RiskError>, Box<dyn std::any::Any + Send>>,
            > = None;
            if groups_supported {
                let had_stats = warm_stats.is_some();
                if !had_stats {
                    if weights_exactly_summable(view.weights.as_deref()) {
                        // A disk-restored seed stands in for the regroup
                        // only when it describes exactly this many rows;
                        // the incremental-maintenance invariant makes the
                        // two bitwise interchangeable.
                        let disk = recovered_warm
                            .take()
                            .filter(|s| s.count.len() == view.len());
                        warm_stats = Some(match disk {
                            Some(stats) => {
                                profile.warm.disk_restores += 1;
                                stats
                            }
                            None => view.group_stats(),
                        });
                    } else {
                        // fractional weights: incremental ± updates would
                        // not be bit-identical to a cold regroup
                        groups_supported = false;
                        profile.warm.fallback_to_cold += 1;
                    }
                }
                if let Some(stats) = &warm_stats {
                    match catch_unwind(AssertUnwindSafe(|| {
                        self.risk.report_from_groups(view, stats)
                    })) {
                        Ok(Some(r)) => {
                            if had_stats {
                                profile.warm.warm_evals += 1;
                                profile.warm.reused_index_bytes += retained_bytes(view, stats);
                            } else {
                                // first evaluation grouped from scratch
                                profile.warm.cold_evals += 1;
                            }
                            evaluated = Some(Ok(r));
                        }
                        Ok(None) => {
                            // measure opted out of the warm path for good
                            groups_supported = false;
                            warm_stats = None;
                            profile.warm.fallback_to_cold += 1;
                        }
                        Err(payload) => evaluated = Some(Err(payload)),
                    }
                }
            }
            let evaluated = match evaluated {
                Some(e) => e,
                None => {
                    if self.config.warm_start {
                        profile.warm.cold_evals += 1;
                    }
                    catch_unwind(AssertUnwindSafe(|| self.risk.evaluate(view)))
                }
            };
            let mut risk_eval_ns = t0.elapsed().as_nanos() as u64;
            let report = match evaluated {
                Ok(Ok(r)) => r,
                Ok(Err(e)) => return Err(CycleError::Risk(e)),
                Err(payload) => {
                    break LoopEnd::Trigger(
                        DegradeTrigger::PluginPanic {
                            plugin: self.risk.name().to_string(),
                            message: degrade::panic_text(payload.as_ref()),
                        },
                        None,
                    )
                }
            };

            let mut risky: Vec<usize> = report
                .risky_tuples(t)
                .into_iter()
                .filter(|r| !exhausted.contains(r))
                .collect();
            if iterations == 0 {
                initial_risky = risky.len() + exhausted.len();
            }

            let mut record = IterationRecord {
                iteration: iterations,
                risky: risky.len(),
                exhausted: exhausted.len(),
                min_risk: report.risks.iter().copied().fold(f64::INFINITY, f64::min),
                mean_risk: report.mean_risk(),
                max_risk: report.max_risk(),
                ..IterationRecord::default()
            };
            if !record.min_risk.is_finite() {
                record.min_risk = 0.0;
            }

            // Convergence trajectory: fit the series up to and including
            // this evaluation, publish it live, and carry the latest
            // estimate on the profile so every exit path reports it.
            rows_series.push(risky.len() as u64);
            profile.progress = progress::estimate(&rows_series);
            if let Some(m) = &self.metrics {
                m.set_gauge("cycle.iteration", iterations as f64);
                m.set_gauge("cycle.rows_at_risk", risky.len() as f64);
                m.set_gauge("cycle.exhausted", exhausted.len() as f64);
                m.set_gauge("cycle.mean_risk", record.mean_risk);
                m.set_gauge("cycle.max_risk", record.max_risk);
                m.inc_counter("cycle.risk_evals", 1);
                m.observe_rate("cycle.iterations_per_sec", iterations as f64);
                if let Some(e) = &profile.progress {
                    m.set_gauge("cycle.trend", e.trend);
                    m.set_gauge("cycle.eta_confidence", e.confidence);
                    m.set_gauge(
                        "cycle.eta_iterations",
                        e.eta_iterations.map(|n| n as f64).unwrap_or(-1.0),
                    );
                }
            }

            if risky.is_empty() {
                record.heuristic = "converged".to_string();
                record.dur_ns = iter_start.elapsed().as_nanos() as u64;
                record.risk_eval_ns = risk_eval_ns;
                profile.risk_eval_ns += risk_eval_ns;
                profile.iterations.push(record);
                break LoopEnd::Converged(report);
            }
            if iterations >= self.config.max_iterations {
                record.heuristic = "iteration cap hit".to_string();
                record.dur_ns = iter_start.elapsed().as_nanos() as u64;
                record.risk_eval_ns = risk_eval_ns;
                profile.risk_eval_ns += risk_eval_ns;
                let still_risky = risky.len();
                profile.iterations.push(record);
                break LoopEnd::Trigger(DegradeTrigger::IterationCap, Some(still_risky));
            }

            self.order_tuples(&mut risky, &report, view);
            let order_name = match self.config.tuple_order {
                TupleOrder::LessSignificantFirst => "less-significant-first",
                TupleOrder::MostRiskyFirst => "most-risky-first",
                TupleOrder::Fifo => "fifo",
            };
            // `batched` ⇔ this iteration may take several actions whose
            // combined statistics repair would cost more than one regroup:
            // per-row rechecks and incremental patches are skipped and the
            // group statistics are recomputed once, next iteration.
            let mut batched = false;
            match self.config.batch {
                None => {
                    // legacy path, byte-stable transcripts
                    if self.config.granularity == StepGranularity::OneTuplePerIteration {
                        risky.truncate(1);
                    }
                    record.heuristic = format!(
                        "{}/{} → row {}",
                        order_name,
                        match self.config.granularity {
                            StepGranularity::AllRiskyPerIteration => "all-risky",
                            StepGranularity::OneTuplePerIteration => "one-tuple",
                        },
                        risky[0]
                    );
                }
                Some(BatchStrategy::OneTuple) => {
                    risky.truncate(1);
                    record.heuristic =
                        format!("{}/batch(one-tuple) → row {}", order_name, risky[0]);
                }
                Some(BatchStrategy::PerClass) | Some(BatchStrategy::TopN(_)) => {
                    let classes = match self.config.batch {
                        Some(BatchStrategy::TopN(n)) => n.max(1),
                        _ => 1,
                    };
                    let (selected, class_count) = select_batch(&risky, view, classes);
                    risky = selected;
                    batched = true;
                    record.heuristic = format!(
                        "{}/batch({} class(es)) → {} row(s), head row {}",
                        order_name,
                        class_count,
                        risky.len(),
                        risky[0]
                    );
                }
            }
            record.targets = risky.len();

            let mut data_changed = false;
            for row in risky {
                // Monotonic-aggregation semantics (§4.3): suppressions made
                // earlier in this iteration already count. If this tuple's
                // risk has been defused by a neighbour's labelled null, skip
                // it rather than remove more information. Batched
                // iterations skip the recheck: their targets were validated
                // by this iteration's report, within-class siblings cannot
                // defuse each other, and cross-class defusal inside one
                // batch at worst over-suppresses — never under-protects.
                if !batched {
                    let t1 = Instant::now();
                    let current = match warm_stats.as_ref() {
                        // O(1) recheck from the maintained statistics when
                        // the measure supports it (bit-identical to
                        // `evaluate_tuple` by contract)
                        Some(stats) => self
                            .risk
                            .tuple_risk_from_stats(view, stats, row)
                            .or_else(|| self.risk.evaluate_tuple(view, row)),
                        None => self.risk.evaluate_tuple(view, row),
                    };
                    risk_eval_ns += t1.elapsed().as_nanos() as u64;
                    if let Some(r) = current {
                        if r <= t {
                            continue;
                        }
                    }
                }
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    self.anonymizer.anonymize_step(&mut work, dict, row)
                }));
                let action = match stepped {
                    Ok(Ok(a)) => a,
                    Ok(Err(e)) => return Err(CycleError::Anonymize(e)),
                    Err(payload) => {
                        record.risk_eval_ns = risk_eval_ns;
                        record.dur_ns = iter_start.elapsed().as_nanos() as u64;
                        profile.risk_eval_ns += risk_eval_ns;
                        profile.iterations.push(record);
                        break 'cycle LoopEnd::Trigger(
                            DegradeTrigger::PluginPanic {
                                plugin: self.anonymizer.name().to_string(),
                                message: degrade::panic_text(payload.as_ref()),
                            },
                            None,
                        );
                    }
                };
                match &action {
                    AnonymizationAction::Suppress { .. } => {
                        nulls_injected += 1;
                        record.suppressions += 1;
                    }
                    AnonymizationAction::Recode { .. } => {
                        recodings += 1;
                        record.recodings += 1;
                    }
                    AnonymizationAction::Exhausted { .. } => {
                        exhausted.insert(row);
                    }
                }
                let patched = self.patch_view(
                    view,
                    &work,
                    &action,
                    // batched iterations defer the statistics to one
                    // regroup at the next latch instead of per-row repairs
                    if batched { None } else { warm_stats.as_mut() },
                );
                if patched > 0 {
                    data_changed = true;
                }
                if self.config.warm_start {
                    profile.warm.patched_facts += patched;
                }
                if let Some(w) = wal.as_mut() {
                    w.append(&JournalRecord::Action {
                        iteration: iterations as u64,
                        row: row as u64,
                        risk_bits: report.risks[row].to_bits(),
                        measure: report.measure.clone(),
                        action: action.clone(),
                    })?;
                }
                if self.config.audit {
                    audit.record(Decision {
                        iteration: iterations,
                        row,
                        measure: report.measure.clone(),
                        risk: report.risks[row],
                        threshold: t,
                        action,
                    });
                }
            }
            if batched && data_changed {
                // One parallel regroup at the next iteration's latch costs
                // O(n) total; repairing the statistics per batched row
                // would have cost O(batch · n).
                warm_stats = None;
            }
            record.risk_eval_ns = risk_eval_ns;
            record.dur_ns = iter_start.elapsed().as_nanos() as u64;
            profile.risk_eval_ns += risk_eval_ns;
            profile.iterations.push(record);
            iterations += 1;
            // Iteration boundary: commit, then snapshot when due. A crash
            // after the commit loses at most the (re-derivable) work of
            // the next iteration.
            if let Some(w) = wal.as_mut() {
                w.append(&JournalRecord::Progress {
                    iteration: (iterations - 1) as u64,
                    rows_at_risk: rows_series.last().copied().unwrap_or(0),
                })?;
                w.append(&JournalRecord::Commit {
                    iterations: iterations as u64,
                    nulls_injected: nulls_injected as u64,
                    recodings: recodings as u64,
                    initial_risky: initial_risky as u64,
                    exhausted: exhausted.len() as u64,
                })?;
                let due = self
                    .config
                    .journal
                    .as_ref()
                    .and_then(|j| j.snapshot_every)
                    .is_some_and(|n| n > 0 && iterations % n as usize == 0);
                if due {
                    let cp = Checkpoint {
                        iterations: iterations as u64,
                        fingerprint: w.run_fingerprint(),
                        next_null: work.nulls_minted(),
                        db: work.clone(),
                        exhausted: exhausted.iter().copied().collect(),
                        nulls_injected: nulls_injected as u64,
                        recodings: recodings as u64,
                        initial_risky: initial_risky as u64,
                        warm: profile.warm,
                    };
                    w.snapshot(&cp)?;
                    // Persist the maintained group statistics beside the
                    // snapshot so a later resume can re-warm from disk.
                    // Failure is non-fatal: the artifact is a cache, and
                    // resume falls back to the cold regroup.
                    if let (Some(store), Some(fp), Some(stats)) =
                        (artifact_store.as_mut(), run_fp, warm_stats.as_ref())
                    {
                        if groups_supported {
                            let bytes = colstore::encode_warm_stats(iterations as u64, fp, stats);
                            if store.put(WARM_STATS_ARTIFACT, &bytes).is_err() {
                                profile.warm.persist_errors += 1;
                            }
                        }
                    }
                }
            }
        };

        let report = match end {
            LoopEnd::Converged(report) => report,
            LoopEnd::Trigger(trigger, still_risky) => {
                // Mark the degradation in the journal *before* the
                // fallback mutates the table: fallback suppressions are
                // deliberately not journaled, so a later resume truncates
                // this marker and re-runs the loop toward convergence
                // (e.g. under a raised iteration cap) instead of
                // replaying a cap-shaped ending.
                if let Some(w) = wal.as_mut() {
                    w.append_durable(&JournalRecord::Degraded {
                        trigger: trigger.to_string(),
                    })?;
                }
                if self.config.fallback == FallbackPolicy::Error {
                    if let Some(w) = wal.as_ref() {
                        profile.journal = w.profile;
                    }
                    profile.total_ns = run_start.elapsed().as_nanos() as u64;
                    profile.emit(&obs);
                    return Err(match trigger {
                        DegradeTrigger::PluginPanic { plugin, message } => {
                            CycleError::Plugin { plugin, message }
                        }
                        _ => CycleError::DidNotConverge {
                            iterations,
                            still_risky: still_risky.unwrap_or(0),
                            partial: Box::new(PartialCycle { profile, audit }),
                        },
                    });
                }
                // Graceful degradation: guarantee the risk bound by
                // suppressing every quasi-identifier of every still-risky
                // tuple, recorded in the audit log and profile.
                let summary = degrade::suppress_all_risky(
                    &mut work,
                    dict,
                    self.risk,
                    t,
                    self.config.semantics,
                    if self.config.audit {
                        Some((&mut audit, iterations))
                    } else {
                        None
                    },
                );
                nulls_injected += summary.cells_suppressed;
                if iterations == 0 && initial_risky == 0 {
                    // the trigger fired before the first evaluation; the
                    // fallback's view is the best initial-risk estimate
                    initial_risky = summary.rows_suppressed + summary.residual_risky;
                }
                profile.fallback = Some(FallbackRecord {
                    trigger: trigger.clone(),
                    passes: summary.passes,
                    rows_suppressed: summary.rows_suppressed,
                    cells_suppressed: summary.cells_suppressed,
                    residual_risky: summary.residual_risky,
                });
                if let Some(w) = wal.as_mut() {
                    // final trajectory sample, so a monitor reading the
                    // journal sees the state the run ended on
                    w.append(&JournalRecord::Progress {
                        iteration: iterations as u64,
                        rows_at_risk: rows_series.last().copied().unwrap_or(0),
                    })?;
                    w.append_durable(&JournalRecord::Finished { converged: false })?;
                    profile.journal = w.profile;
                }
                profile.total_ns = run_start.elapsed().as_nanos() as u64;
                profile.emit(&obs);
                // Fail closed when the measure could not re-verify: treat
                // every tuple as risky rather than silently fail open.
                let final_risky = match &summary.final_report {
                    Some(r) => r.risky_tuples(t).len(),
                    None => work.len(),
                };
                let final_report = summary.final_report.unwrap_or_else(|| RiskReport {
                    measure: format!("{} (risk-unavailable)", self.risk.name()),
                    risks: vec![1.0; work.len()],
                    details: vec![TupleRiskDetail::default(); work.len()],
                });
                return Ok(CycleOutcome {
                    db: work,
                    iterations,
                    nulls_injected,
                    recodings,
                    initial_risky,
                    final_risky,
                    information_loss: information_loss(nulls_injected, initial_risky, qi_count),
                    final_report,
                    audit,
                    profile,
                    termination: CycleTermination::Degraded { trigger },
                });
            }
        };

        if let Some(w) = wal.as_mut() {
            // final trajectory sample, so a monitor reading the journal
            // sees the converged (or exhausted-only) end state
            w.append(&JournalRecord::Progress {
                iteration: iterations as u64,
                rows_at_risk: rows_series.last().copied().unwrap_or(0),
            })?;
            w.append_durable(&JournalRecord::Finished { converged: true })?;
            profile.journal = w.profile;
        }
        profile.total_ns = run_start.elapsed().as_nanos() as u64;
        profile.emit(&obs);
        let final_risky = report
            .risky_tuples(t)
            .into_iter()
            .filter(|r| exhausted.contains(r))
            .count();
        Ok(CycleOutcome {
            db: work,
            iterations,
            nulls_injected,
            recodings,
            initial_risky,
            final_risky,
            information_loss: information_loss(nulls_injected, initial_risky, qi_count),
            final_report: report,
            audit,
            profile,
            termination: CycleTermination::Converged,
        })
    }

    /// Reflect an anonymization action into the live columnar view so that
    /// `evaluate_tuple` rechecks (and, warm-started, the *next iteration's*
    /// risk evaluation) see the current state — this is the patch that
    /// replaces rebuilding the whole [`MicrodataView`]. When `stats` is
    /// supplied the maintained group statistics are repaired row by row
    /// (each change must be applied against the state the statistics
    /// currently describe). Returns the number of view rows patched.
    fn patch_view(
        &self,
        view: &mut MicrodataView,
        work: &MicrodataDb,
        action: &AnonymizationAction,
        stats: Option<&mut GroupStats>,
    ) -> u64 {
        match action {
            AnonymizationAction::Suppress { row, attr, .. } => {
                if let Some(col) = view.qi_names.iter().position(|q| q == attr) {
                    if let Ok(v) = work.value(*row, attr) {
                        view.patch_cell(*row, col, v, stats);
                        return 1;
                    }
                }
                0
            }
            AnonymizationAction::Recode { attr, from, to, .. } => {
                match view.qi_names.iter().position(|q| q == attr) {
                    Some(col) => view.patch_recode(col, from, to, stats).len() as u64,
                    None => 0,
                }
            }
            AnonymizationAction::Exhausted { .. } => 0,
        }
    }

    fn order_tuples(&self, risky: &mut [usize], report: &RiskReport, view: &MicrodataView) {
        match self.config.tuple_order {
            TupleOrder::Fifo => {}
            TupleOrder::MostRiskyFirst => {
                risky.sort_by(|&a, &b| report.risks[b].total_cmp(&report.risks[a]));
            }
            TupleOrder::LessSignificantFirst => {
                if let Some(w) = &view.weights {
                    risky.sort_by(|&a, &b| w[a].total_cmp(&w[b]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymize::{AttributeOrder, LocalSuppression};
    use crate::dictionary::Category;
    use crate::risk::{KAnonymity, ReIdentification};
    use vadalog::Value;

    fn fig5_db() -> (MicrodataDb, MetadataDictionary) {
        let mut db =
            MicrodataDb::new("fig5", ["Id", "Area", "Sector", "Employees", "ResRev", "W"]).unwrap();
        let rows = [
            ("099876", "Roma", "Textiles", "1000+", "0-30", 10),
            ("765389", "Roma", "Commerce", "1000+", "0-30", 20),
            ("231654", "Roma", "Commerce", "1000+", "0-30", 20),
            ("097302", "Roma", "Financial", "1000+", "0-30", 30),
            ("120967", "Roma", "Financial", "1000+", "0-30", 30),
            ("232498", "Milano", "Construction", "0-200", "60-90", 5),
            ("340901", "Torino", "Construction", "0-200", "60-90", 5),
        ];
        for (id, a, s, e, r, w) in rows {
            db.push_row(vec![
                Value::str(id),
                Value::str(a),
                Value::str(s),
                Value::str(e),
                Value::str(r),
                Value::Int(w),
            ])
            .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["Id", "Area", "Sector", "Employees", "ResRev", "W"] {
            dict.register_attr("fig5", a, "");
        }
        dict.set_category("fig5", "Id", Category::Identifier)
            .unwrap();
        for a in ["Area", "Sector", "Employees", "ResRev"] {
            dict.set_category("fig5", a, Category::QuasiIdentifier)
                .unwrap();
        }
        dict.set_category("fig5", "W", Category::Weight).unwrap();
        (db, dict)
    }

    #[test]
    fn cycle_reaches_2_anonymity_on_figure5() {
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::new(AttributeOrder::MostSelectiveFirst);
        let cycle = AnonymizationCycle::new(&risk, &anon, CycleConfig::default());
        let out = cycle.run(&db, &dict).unwrap();
        assert_eq!(out.final_risky, 0);
        assert!(out.nulls_injected >= 1);
        assert_eq!(out.final_report.risky_tuples(0.5).len(), 0);
        // the input table is untouched
        assert_eq!(db.null_cells(&[]), 0);
        assert!(out.db.null_cells(&[]) >= 1);
        // explainability: every suppression is audited
        assert_eq!(out.audit.suppressions(), out.nulls_injected);
    }

    #[test]
    fn greedy_suppression_on_figure5_tuple1_needs_one_null() {
        // With OneTuplePerIteration and most-selective-first, tuple 1's
        // Sector is suppressed first, which simultaneously fixes tuple 1
        // (frequency 5) — the paper's §4.4 worked example.
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::new(AttributeOrder::MostSelectiveFirst);
        let mut config = CycleConfig {
            granularity: StepGranularity::OneTuplePerIteration,
            tuple_order: TupleOrder::Fifo,
            ..CycleConfig::default()
        };
        config.audit = true;
        let cycle = AnonymizationCycle::new(&risk, &anon, config);
        let out = cycle.run(&db, &dict).unwrap();
        // tuples 0 (Textiles), 5 (Milano) and 6 (Torino) are risky at k=2;
        // tuple 0 needs exactly one null, 5 and 6 need work too.
        let t0_decisions = out.audit.for_tuple(0);
        assert_eq!(t0_decisions.len(), 1);
        assert!(out.final_risky == 0);
    }

    #[test]
    fn zero_threshold_converges_or_exhausts() {
        // T = 0 forces anonymization of everything until groups are huge or
        // tuples exhaust; the cycle must terminate either way.
        let (db, dict) = fig5_db();
        let risk = ReIdentification;
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                threshold: 0.0,
                ..CycleConfig::default()
            },
        );
        let out = cycle.run(&db, &dict).unwrap();
        assert!(out.iterations <= 10_000);
    }

    #[test]
    fn already_safe_table_is_untouched() {
        let (db, dict) = fig5_db();
        // k = 1: every tuple trivially safe
        let risk = KAnonymity::new(1);
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(&risk, &anon, CycleConfig::default());
        let out = cycle.run(&db, &dict).unwrap();
        assert_eq!(out.nulls_injected, 0);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.initial_risky, 0);
        assert_eq!(out.information_loss, 0.0);
    }

    #[test]
    fn higher_k_injects_more_nulls() {
        let (db, dict) = fig5_db();
        let anon = LocalSuppression::default();
        let mut previous = 0usize;
        for k in [2usize, 3, 4] {
            let risk = KAnonymity::new(k);
            let cycle = AnonymizationCycle::new(&risk, &anon, CycleConfig::default());
            let out = cycle.run(&db, &dict).unwrap();
            assert!(
                out.nulls_injected >= previous,
                "k={k}: {} < {previous}",
                out.nulls_injected
            );
            previous = out.nulls_injected;
        }
    }

    #[test]
    fn information_loss_is_bounded() {
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(3);
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(&risk, &anon, CycleConfig::default());
        let out = cycle.run(&db, &dict).unwrap();
        assert!(out.information_loss >= 0.0 && out.information_loss <= 1.0);
    }

    #[test]
    fn iteration_cap_degrades_to_safe_fallback() {
        // With the cap at zero the loop cannot do a single refinement pass,
        // so the default SuppressRisky policy must kick in: the released
        // table still honours the risk bound, the degradation is recorded
        // first-class, and the audit log explains every suppression.
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                max_iterations: 0,
                ..CycleConfig::default()
            },
        );
        let out = cycle.run(&db, &dict).unwrap();
        assert_eq!(
            out.termination,
            CycleTermination::Degraded {
                trigger: DegradeTrigger::IterationCap
            }
        );
        let fallback = out.profile.fallback.as_ref().expect("fallback recorded");
        assert_eq!(fallback.trigger, DegradeTrigger::IterationCap);
        assert!(fallback.cells_suppressed > 0);
        assert_eq!(fallback.residual_risky, 0);
        assert_eq!(out.final_risky, 0, "risk bound holds after degradation");
        assert!(out.final_report.risky_tuples(0.5).is_empty());
        assert_eq!(out.audit.suppressions(), fallback.cells_suppressed);
    }

    #[test]
    fn iteration_cap_with_error_policy_reports_non_convergence() {
        // The historical strict behaviour stays available behind
        // FallbackPolicy::Error.
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                max_iterations: 0,
                fallback: FallbackPolicy::Error,
                ..CycleConfig::default()
            },
        );
        match cycle.run(&db, &dict) {
            Err(CycleError::DidNotConverge { still_risky, .. }) => assert!(still_risky > 0),
            other => panic!("expected DidNotConverge, got {other:?}"),
        }
    }

    #[test]
    fn most_risky_first_with_one_tuple_granularity() {
        let (db, dict) = fig5_db();
        let risk = ReIdentification;
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                granularity: StepGranularity::OneTuplePerIteration,
                tuple_order: TupleOrder::MostRiskyFirst,
                threshold: 0.05,
                ..CycleConfig::default()
            },
        );
        let out = cycle.run(&db, &dict).unwrap();
        // the first decision must target the highest-risk binding
        let first = &out.audit.decisions[0];
        let view = MicrodataView::from_db(&db, &dict).unwrap();
        let initial = ReIdentification.evaluate(&view).unwrap();
        let max_risk = initial.risks.iter().copied().fold(0.0f64, f64::max);
        assert!((initial.risks[first.row] - max_risk).abs() < 1e-12);
        assert_eq!(out.final_report.risky_tuples(0.05).len(), out.final_risky);
    }

    #[test]
    fn incremental_recheck_skips_defused_tuples() {
        // two rows that defuse each other: suppressing one lifts both, so
        // the second must be skipped within the same iteration
        let mut db = MicrodataDb::new("pair", ["id", "a", "b", "w"]).unwrap();
        db.push_row(vec![
            Value::Int(1),
            Value::str("x"),
            Value::str("p"),
            Value::Int(5),
        ])
        .unwrap();
        db.push_row(vec![
            Value::Int(2),
            Value::str("x"),
            Value::str("q"),
            Value::Int(5),
        ])
        .unwrap();
        let mut dict = MetadataDictionary::new();
        for a in ["id", "a", "b", "w"] {
            dict.register_attr("pair", a, "");
        }
        dict.set_category("pair", "id", Category::Identifier)
            .unwrap();
        dict.set_category("pair", "a", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("pair", "b", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("pair", "w", Category::Weight).unwrap();

        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(&risk, &anon, CycleConfig::default());
        let out = cycle.run(&db, &dict).unwrap();
        assert_eq!(
            out.nulls_injected, 1,
            "one suppression lifts both rows; the recheck must spare the second"
        );
        assert_eq!(out.final_risky, 0);
    }

    /// Run the same cycle warm and cold and require identical outcomes:
    /// same anonymized table, same (bitwise) final report, same iteration
    /// count, audit trail length and termination.
    fn assert_warm_equals_cold(
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        risk: &dyn RiskMeasure,
        config: CycleConfig,
    ) -> (CycleOutcome, CycleOutcome) {
        let anon = LocalSuppression::default();
        let warm_cfg = CycleConfig {
            warm_start: true,
            ..config.clone()
        };
        let cold_cfg = CycleConfig {
            warm_start: false,
            ..config
        };
        let warm = AnonymizationCycle::new(risk, &anon, warm_cfg)
            .run(db, dict)
            .unwrap();
        let cold = AnonymizationCycle::new(risk, &anon, cold_cfg)
            .run(db, dict)
            .unwrap();
        assert_eq!(warm.iterations, cold.iterations, "iteration counts");
        assert_eq!(warm.nulls_injected, cold.nulls_injected, "nulls injected");
        assert_eq!(warm.recodings, cold.recodings, "recodings");
        assert_eq!(warm.final_risky, cold.final_risky, "final risky");
        assert_eq!(warm.termination, cold.termination, "termination");
        assert_eq!(
            warm.audit.decisions.len(),
            cold.audit.decisions.len(),
            "audit length"
        );
        assert_eq!(warm.final_report.risks, cold.final_report.risks, "risks");
        assert_eq!(
            warm.final_report.details, cold.final_report.details,
            "details"
        );
        for i in 0..db.len() {
            assert_eq!(
                warm.db.row(i).unwrap(),
                cold.db.row(i).unwrap(),
                "row {i} of the anonymized table"
            );
        }
        (warm, cold)
    }

    #[test]
    fn warm_start_matches_cold_on_figure5_kanon() {
        let (db, dict) = fig5_db();
        let (warm, cold) = assert_warm_equals_cold(
            &db,
            &dict,
            &KAnonymity::new(2),
            CycleConfig {
                granularity: StepGranularity::OneTuplePerIteration,
                ..CycleConfig::default()
            },
        );
        // the warm run must actually have exercised the fast path
        assert!(warm.profile.warm.warm_evals >= 1, "{:?}", warm.profile.warm);
        assert!(warm.profile.warm.patched_facts >= 1);
        assert!(warm.profile.warm.reused_index_bytes > 0);
        assert_eq!(warm.profile.warm.fallback_to_cold, 0);
        // and the cold run must not have touched the warm counters
        assert_eq!(cold.profile.warm, WarmCycleProfile::default());
    }

    #[test]
    fn warm_start_matches_cold_on_figure5_reident() {
        let (db, dict) = fig5_db();
        assert_warm_equals_cold(
            &db,
            &dict,
            &ReIdentification,
            CycleConfig {
                threshold: 0.05,
                tuple_order: TupleOrder::MostRiskyFirst,
                ..CycleConfig::default()
            },
        );
    }

    #[test]
    fn simulated_library_falls_back_to_cold() {
        use crate::risk::{IndividualRisk, IrEstimator};
        let (db, dict) = fig5_db();
        let risk = IndividualRisk::new(IrEstimator::SimulatedLibrary { samples: 64 });
        let (warm, _cold) = assert_warm_equals_cold(
            &db,
            &dict,
            &risk,
            CycleConfig {
                threshold: 0.05,
                ..CycleConfig::default()
            },
        );
        // the measure opts out of report_from_groups: the warm path must
        // fall back (documented rule) and keep producing cold-identical
        // results via full evaluations
        assert_eq!(warm.profile.warm.warm_evals, 0);
        assert!(warm.profile.warm.fallback_to_cold >= 1);
    }

    #[test]
    fn fractional_weights_disable_the_warm_fast_path() {
        // 2.5 is not exactly summable in arbitrary order: the gate must
        // refuse incremental stats and fall back to full evaluations
        let mut db = MicrodataDb::new("frac", ["id", "a", "w"]).unwrap();
        for (id, a) in [(1, "x"), (2, "x"), (3, "y")] {
            db.push_row(vec![Value::Int(id), Value::str(a), Value::Float(2.5)])
                .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "a", "w"] {
            dict.register_attr("frac", a, "");
        }
        dict.set_category("frac", "id", Category::Identifier)
            .unwrap();
        dict.set_category("frac", "a", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("frac", "w", Category::Weight).unwrap();
        let (warm, _cold) =
            assert_warm_equals_cold(&db, &dict, &KAnonymity::new(2), CycleConfig::default());
        assert_eq!(warm.profile.warm.warm_evals, 0);
        assert!(warm.profile.warm.fallback_to_cold >= 1);
    }

    #[test]
    fn batched_per_class_converges_on_figure5() {
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::new(AttributeOrder::MostSelectiveFirst);
        let cycle = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                batch: Some(BatchStrategy::PerClass),
                ..CycleConfig::default()
            },
        );
        let out = cycle.run(&db, &dict).unwrap();
        assert_eq!(out.final_risky, 0);
        assert!(out.final_report.risky_tuples(0.5).is_empty());
        assert!(out
            .profile
            .iterations
            .iter()
            .any(|r| r.heuristic.contains("batch(")));
    }

    #[test]
    fn batched_is_never_less_safe_than_one_tuple() {
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::new(AttributeOrder::MostSelectiveFirst);
        let one = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                batch: Some(BatchStrategy::OneTuple),
                ..CycleConfig::default()
            },
        )
        .run(&db, &dict)
        .unwrap();
        let batched = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                batch: Some(BatchStrategy::TopN(4)),
                ..CycleConfig::default()
            },
        )
        .run(&db, &dict)
        .unwrap();
        assert_eq!(one.final_risky, 0);
        assert_eq!(batched.final_risky, 0);
        assert!(batched.final_report.risky_tuples(0.5).is_empty());
        // batching may over-suppress across classes, never under-protect
        assert!(batched.nulls_injected >= one.nulls_injected);
        assert!(batched.iterations <= one.iterations);
    }

    #[test]
    fn risk_threads_do_not_change_the_outcome() {
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::new(AttributeOrder::MostSelectiveFirst);
        let run_with_threads = |threads: usize| {
            AnonymizationCycle::new(
                &risk,
                &anon,
                CycleConfig {
                    batch: Some(BatchStrategy::TopN(2)),
                    risk_threads: threads,
                    ..CycleConfig::default()
                },
            )
            .run(&db, &dict)
            .unwrap()
        };
        let a = run_with_threads(1);
        let b = run_with_threads(4);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.nulls_injected, b.nulls_injected);
        assert_eq!(a.final_report.risks, b.final_report.risks);
        assert_eq!(a.audit.decisions.len(), b.audit.decisions.len());
        for i in 0..db.len() {
            assert_eq!(a.db.row(i).unwrap(), b.db.row(i).unwrap(), "row {i}");
        }
    }

    #[test]
    fn less_significant_first_hits_low_weight_tuples() {
        let (db, dict) = fig5_db();
        let risk = KAnonymity::new(2);
        let anon = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                granularity: StepGranularity::OneTuplePerIteration,
                tuple_order: TupleOrder::LessSignificantFirst,
                ..CycleConfig::default()
            },
        );
        let out = cycle.run(&db, &dict).unwrap();
        // first decision must target one of the weight-5 tuples (5 or 6)
        let first = &out.audit.decisions[0];
        assert!(first.row == 5 || first.row == 6, "row {}", first.row);
    }
}
