//! Graceful degradation: the safety-first fallback of the anonymization
//! cycle.
//!
//! The cycle's contract is *"always hand back a dataset whose per-tuple
//! disclosure risk is at or below `T`"*. When the normal iterate-and-refine
//! loop cannot finish — iteration cap, wall-clock deadline, cooperative
//! cancellation, or a panicking plug-in — Vada-SA must degrade **into more
//! suppression, never less**: trading utility for a guaranteed risk bound
//! beats aborting with the data unprotected.
//!
//! [`suppress_all_risky`] implements that fallback: it local-suppresses
//! *every* quasi-identifier of *every* still-risky tuple with fresh
//! labelled nulls, re-evaluates, and repeats until no tuple exceeds the
//! threshold or nothing suppressible remains. Under the maybe-match null
//! semantics a fully-suppressed tuple matches everything, so its
//! equivalence group is maximal and its risk minimal — the fallback
//! converges. Under [`NullSemantics::Standard`] fresh nulls only equal
//! their own label, so a fully-suppressed singleton can stay "risky" by
//! the letter of the measure; the fallback then reports the residual
//! honestly instead of looping.
//!
//! The function is deliberately *total*: it returns a [`DegradeSummary`]
//! in every case and converts internal failures (a risk measure that
//! panics even during the fallback, a view that cannot be built) into
//! **fail-closed** behaviour — suppress everything in sight and report
//! `final_report: None` so the caller knows the risk bound could not be
//! re-verified.

use crate::anonymize::AnonymizationAction;
use crate::dictionary::MetadataDictionary;
use crate::explain::{AuditLog, Decision};
use crate::maybe_match::NullSemantics;
use crate::model::MicrodataDb;
use crate::risk::{MicrodataView, RiskMeasure, RiskReport};
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What the cycle does when it cannot converge normally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Degrade gracefully: run [`suppress_all_risky`] and return a
    /// [`CycleOutcome`](crate::cycle::CycleOutcome) with the fallback
    /// recorded. The SDC-safe default.
    #[default]
    SuppressRisky,
    /// Preserve the historical behaviour: fail with
    /// [`CycleError::DidNotConverge`](crate::cycle::CycleError) (or the
    /// underlying error) and no released dataset.
    Error,
}

/// Why the cycle degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeTrigger {
    /// The cycle's iteration cap was reached before convergence.
    IterationCap,
    /// The wall-clock deadline expired.
    Deadline,
    /// A [`CancelToken`](vadalog::CancelToken) fired.
    Cancelled,
    /// A plug-in (risk measure or anonymizer) panicked mid-cycle.
    PluginPanic {
        /// Which plug-in panicked (measure / anonymizer name).
        plugin: String,
        /// The rendered panic payload.
        message: String,
    },
}

impl fmt::Display for DegradeTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeTrigger::IterationCap => write!(f, "iteration cap"),
            DegradeTrigger::Deadline => write!(f, "deadline expired"),
            DegradeTrigger::Cancelled => write!(f, "cancelled"),
            DegradeTrigger::PluginPanic { plugin, message } => {
                write!(f, "plug-in {plugin} panicked: {message}")
            }
        }
    }
}

/// First-class record of a degradation event, carried on
/// [`CycleProfile`](crate::cycle::CycleProfile) and replayed to telemetry
/// collectors as a `cycle.fallback` counter event.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackRecord {
    /// What forced the fallback.
    pub trigger: DegradeTrigger,
    /// Suppress-and-reverify passes the fallback performed.
    pub passes: usize,
    /// Distinct rows whose quasi-identifiers were suppressed.
    pub rows_suppressed: usize,
    /// Quasi-identifier cells replaced with fresh labelled nulls.
    pub cells_suppressed: usize,
    /// Tuples still above the threshold after the fallback (non-zero only
    /// when nothing suppressible remained, e.g. under
    /// [`NullSemantics::Standard`]).
    pub residual_risky: usize,
}

/// What [`suppress_all_risky`] did and verified.
#[derive(Debug)]
pub struct DegradeSummary {
    /// Suppress-and-reverify passes performed.
    pub passes: usize,
    /// Distinct rows whose quasi-identifiers were suppressed.
    pub rows_suppressed: usize,
    /// Quasi-identifier cells replaced with fresh labelled nulls.
    pub cells_suppressed: usize,
    /// Tuples still above the threshold at the end (see
    /// [`FallbackRecord::residual_risky`]).
    pub residual_risky: usize,
    /// The re-verification risk report over the suppressed table. `None`
    /// when the measure could not be (re-)evaluated — the fail-closed
    /// path: the caller must treat every tuple as risky.
    pub final_report: Option<RiskReport>,
}

/// Suppress every non-null quasi-identifier cell of `row`, recording each
/// suppression as an audited decision when a log is provided. Returns the
/// number of cells suppressed.
fn suppress_row(
    db: &mut MicrodataDb,
    qis: &[String],
    row: usize,
    risk_score: f64,
    threshold: f64,
    measure: &str,
    audit: &mut Option<(&mut AuditLog, usize)>,
) -> usize {
    let mut cells = 0usize;
    for attr in qis {
        let previous = match db.value(row, attr) {
            Ok(v) if !v.is_null() => v.clone(),
            _ => continue,
        };
        let null = db.fresh_null();
        if db.set_value(row, attr, null).is_err() {
            continue;
        }
        cells += 1;
        if let Some((log, iteration)) = audit.as_mut() {
            log.record(Decision {
                iteration: *iteration,
                row,
                measure: measure.to_string(),
                risk: risk_score,
                threshold,
                action: AnonymizationAction::Suppress {
                    row,
                    attr: attr.clone(),
                    previous,
                },
            });
        }
    }
    cells
}

/// The safety-first fallback: local-suppress every quasi-identifier of
/// every still-risky tuple until the threshold holds or nothing
/// suppressible remains.
///
/// Total by design — it never returns an error and never panics:
///
/// - a risk measure that fails or panics during re-verification triggers
///   the **fail-closed** path (suppress all quasi-identifier cells of all
///   rows, return `final_report: None`);
/// - a row or cell that cannot be touched is skipped, not fatal;
/// - passes are bounded by the table size, so the loop always ends.
///
/// When `audit` is provided every suppression is recorded as a
/// [`Decision`] under the given iteration ordinal, keeping the fallback
/// as explainable as the normal cycle.
pub fn suppress_all_risky(
    db: &mut MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    threshold: f64,
    semantics: NullSemantics,
    mut audit: Option<(&mut AuditLog, usize)>,
) -> DegradeSummary {
    let qis = dict.quasi_identifiers(&db.name).unwrap_or_default();
    let measure = risk.name().to_string();
    let mut summary = DegradeSummary {
        passes: 0,
        rows_suppressed: 0,
        cells_suppressed: 0,
        residual_risky: 0,
        final_report: None,
    };
    if qis.is_empty() {
        // No quasi-identifiers: nothing to suppress and no QI-based risk.
        summary.final_report = evaluate_guarded(db, dict, risk, semantics);
        summary.residual_risky = match &summary.final_report {
            Some(r) => r.risky_tuples(threshold).len(),
            None => db.len(),
        };
        return summary;
    }

    let mut touched: HashSet<usize> = HashSet::new();
    // Each pass fully suppresses the risky rows it sees, so `rows + 1`
    // passes suffice even if suppression exposes new risky rows (possible
    // under Standard semantics, where a null shrinks its old group).
    let max_passes = db.len() + 1;

    loop {
        summary.passes += 1;
        let Some(report) = evaluate_guarded(db, dict, risk, semantics) else {
            // Fail-closed: the measure is unusable, so the risk bound
            // cannot be verified. Suppress every QI cell of every row and
            // report the table as unverified.
            for row in 0..db.len() {
                let cells = suppress_row(db, &qis, row, 1.0, threshold, &measure, &mut audit);
                if cells > 0 {
                    touched.insert(row);
                    summary.cells_suppressed += cells;
                }
            }
            summary.rows_suppressed = touched.len();
            summary.residual_risky = db.len();
            summary.final_report = None;
            return summary;
        };

        let risky = report.risky_tuples(threshold);
        if risky.is_empty() {
            summary.rows_suppressed = touched.len();
            summary.residual_risky = 0;
            summary.final_report = Some(report);
            return summary;
        }

        let mut suppressed_this_pass = 0usize;
        for &row in &risky {
            let score = report.risks.get(row).copied().unwrap_or(1.0);
            let cells = suppress_row(db, &qis, row, score, threshold, &measure, &mut audit);
            if cells > 0 {
                touched.insert(row);
                suppressed_this_pass += cells;
            }
        }
        summary.cells_suppressed += suppressed_this_pass;

        if suppressed_this_pass == 0 || summary.passes >= max_passes {
            // Nothing suppressible remains (every risky tuple is already
            // fully suppressed) — report the residual honestly.
            summary.rows_suppressed = touched.len();
            summary.residual_risky = risky.len();
            summary.final_report = Some(report);
            return summary;
        }
    }
}

/// Render a panic payload for humans: panics raised with a string literal
/// or a formatted message are shown verbatim, anything else generically.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluate `risk` over the current table, absorbing both errors and
/// panics into `None` (the fail-closed signal).
fn evaluate_guarded(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    semantics: NullSemantics,
) -> Option<RiskReport> {
    let view = MicrodataView::from_db_with(db, dict, semantics, None).ok()?;
    match catch_unwind(AssertUnwindSafe(|| risk.evaluate(&view))) {
        Ok(Ok(report)) => Some(report),
        Ok(Err(_)) | Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Category;
    use crate::risk::{KAnonymity, RiskError};
    use vadalog::Value;

    fn risky_db() -> (MicrodataDb, MetadataDictionary) {
        let mut db = MicrodataDb::new("t", ["id", "a", "b", "w"]).unwrap();
        let rows = [
            (1, "x", "p", 5),
            (2, "x", "q", 5),
            (3, "y", "q", 5),
            (4, "y", "q", 5),
        ];
        for (id, a, b, w) in rows {
            db.push_row(vec![
                Value::Int(id),
                Value::str(a),
                Value::str(b),
                Value::Int(w),
            ])
            .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "a", "b", "w"] {
            dict.register_attr("t", a, "");
        }
        dict.set_category("t", "id", Category::Identifier).unwrap();
        dict.set_category("t", "a", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("t", "b", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("t", "w", Category::Weight).unwrap();
        (db, dict)
    }

    #[test]
    fn fallback_reaches_threshold_under_maybe_match() {
        let (mut db, dict) = risky_db();
        let risk = KAnonymity::new(2);
        let summary =
            suppress_all_risky(&mut db, &dict, &risk, 0.5, NullSemantics::MaybeMatch, None);
        assert_eq!(summary.residual_risky, 0);
        assert!(summary.cells_suppressed >= 1);
        let report = summary.final_report.expect("verified");
        assert!(report.risky_tuples(0.5).is_empty());
    }

    #[test]
    fn fallback_is_audited() {
        let (mut db, dict) = risky_db();
        let risk = KAnonymity::new(2);
        let mut audit = AuditLog::default();
        let summary = suppress_all_risky(
            &mut db,
            &dict,
            &risk,
            0.5,
            NullSemantics::MaybeMatch,
            Some((&mut audit, 7)),
        );
        assert_eq!(audit.suppressions(), summary.cells_suppressed);
        assert!(audit.decisions.iter().all(|d| d.iteration == 7));
    }

    #[test]
    fn panicking_measure_fails_closed() {
        struct AlwaysPanics;
        impl RiskMeasure for AlwaysPanics {
            fn name(&self) -> &str {
                "always-panics"
            }
            fn evaluate(&self, _view: &MicrodataView) -> Result<RiskReport, RiskError> {
                panic!("injected"); // gate-allow: deliberate fault for the fail-closed test
            }
        }
        let (mut db, dict) = risky_db();
        let summary = suppress_all_risky(
            &mut db,
            &dict,
            &AlwaysPanics,
            0.5,
            NullSemantics::MaybeMatch,
            None,
        );
        // fail-closed: everything suppressed, nothing verified
        assert!(summary.final_report.is_none());
        assert_eq!(summary.residual_risky, db.len());
        for row in 0..db.len() {
            for attr in ["a", "b"] {
                assert!(db.value(row, attr).unwrap().is_null());
            }
        }
        // weights and identifiers untouched
        assert!(!db.value(0, "w").unwrap().is_null());
    }

    #[test]
    fn standard_semantics_reports_residual_honestly() {
        let (mut db, dict) = risky_db();
        let risk = KAnonymity::new(2);
        let summary = suppress_all_risky(&mut db, &dict, &risk, 0.5, NullSemantics::Standard, None);
        // under Standard semantics fresh nulls are unique labels, so the
        // suppressed singletons stay singletons: residual must be honest,
        // and the loop must have terminated regardless.
        assert!(summary.final_report.is_some());
        assert!(summary.passes <= db.len() + 1);
    }

    #[test]
    fn already_safe_table_is_left_alone() {
        let (mut db, dict) = risky_db();
        let risk = KAnonymity::new(1); // everything trivially safe
        let summary =
            suppress_all_risky(&mut db, &dict, &risk, 0.5, NullSemantics::MaybeMatch, None);
        assert_eq!(summary.cells_suppressed, 0);
        assert_eq!(summary.residual_risky, 0);
        assert_eq!(db.null_cells(&[]), 0);
    }
}
