//! The metadata dictionary (paper §4.1, Figure 4).
//!
//! Vada-SA achieves schema independence by reasoning over *metadata facts*
//! — `MicroDB(name)`, `Att(microDB, name, description)`,
//! `Category(microDB, att, cat)` — rather than over the concrete schema of
//! each microdata DB. The dictionary is the in-memory form of those facts;
//! [`crate::programs`] round-trips it to engine facts for the declarative
//! encodings.

use std::collections::HashMap;
use std::fmt;

/// The category assigned to a microdata attribute (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Direct identifier: a single value discloses the respondent.
    Identifier,
    /// Quasi-identifier: combinations of values are disclosive.
    QuasiIdentifier,
    /// Not disclosive, alone or in combination.
    NonIdentifying,
    /// A sensitive attribute: not linkable itself, but the secret an
    /// attacker is after (used by attribute-disclosure measures such as
    /// l-diversity).
    Sensitive,
    /// The sampling weight column.
    Weight,
}

impl Category {
    /// Stable textual name used in dictionary facts.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Identifier => "identifier",
            Category::QuasiIdentifier => "quasi-identifier",
            Category::NonIdentifying => "non-identifying",
            Category::Sensitive => "sensitive",
            Category::Weight => "weight",
        }
    }

    /// Parse from the textual name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "identifier" => Category::Identifier,
            "quasi-identifier" => Category::QuasiIdentifier,
            "non-identifying" => Category::NonIdentifying,
            "sensitive" => Category::Sensitive,
            "weight" => Category::Weight,
            _ => return None,
        })
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata about one attribute of one microdata DB.
#[derive(Debug, Clone, Default)]
pub struct AttrMeta {
    /// Human-oriented description (Figure 4 "Description" column).
    pub description: String,
    /// Assigned category, if categorization has run.
    pub category: Option<Category>,
}

/// The dictionary: registered microdata DBs, their attributes, and the
/// categories inferred for them.
#[derive(Debug, Clone, Default)]
pub struct MetadataDictionary {
    /// microdata DB name → attribute name (in registration order) → meta.
    dbs: HashMap<String, Vec<(String, AttrMeta)>>,
}

/// Dictionary lookup failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictionaryError {
    /// The microdata DB is not registered.
    UnknownDb(String),
    /// The attribute is not registered for that DB.
    UnknownAttribute {
        /// Microdata DB name.
        db: String,
        /// Attribute name.
        attr: String,
    },
    /// No weight column has been categorized for that DB.
    NoWeight(String),
}

impl fmt::Display for DictionaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictionaryError::UnknownDb(d) => write!(f, "unknown microdata DB '{d}'"),
            DictionaryError::UnknownAttribute { db, attr } => {
                write!(f, "unknown attribute '{attr}' of microdata DB '{db}'")
            }
            DictionaryError::NoWeight(d) => {
                write!(f, "no weight attribute categorized for microdata DB '{d}'")
            }
        }
    }
}

impl std::error::Error for DictionaryError {}

impl MetadataDictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a microdata DB (idempotent).
    pub fn register_db(&mut self, db: impl Into<String>) {
        self.dbs.entry(db.into()).or_default();
    }

    /// Register an attribute with a description.
    pub fn register_attr(
        &mut self,
        db: impl Into<String>,
        attr: impl Into<String>,
        description: impl Into<String>,
    ) {
        let db = db.into();
        let attr = attr.into();
        let entry = self.dbs.entry(db).or_default();
        if let Some((_, meta)) = entry.iter_mut().find(|(a, _)| *a == attr) {
            meta.description = description.into();
        } else {
            entry.push((
                attr,
                AttrMeta {
                    description: description.into(),
                    category: None,
                },
            ));
        }
    }

    /// Assign a category to an attribute.
    pub fn set_category(
        &mut self,
        db: &str,
        attr: &str,
        cat: Category,
    ) -> Result<(), DictionaryError> {
        let entry = self
            .dbs
            .get_mut(db)
            .ok_or_else(|| DictionaryError::UnknownDb(db.to_string()))?;
        let slot = entry.iter_mut().find(|(a, _)| a == attr).ok_or_else(|| {
            DictionaryError::UnknownAttribute {
                db: db.to_string(),
                attr: attr.to_string(),
            }
        })?;
        slot.1.category = Some(cat);
        Ok(())
    }

    /// All registered microdata DB names.
    pub fn db_names(&self) -> impl Iterator<Item = &str> {
        self.dbs.keys().map(|s| s.as_str())
    }

    /// Attributes (with metadata) of a microdata DB, in registration order.
    pub fn attrs(&self, db: &str) -> Result<&[(String, AttrMeta)], DictionaryError> {
        self.dbs
            .get(db)
            .map(|v| v.as_slice())
            .ok_or_else(|| DictionaryError::UnknownDb(db.to_string()))
    }

    /// Category of one attribute (None if not yet categorized).
    pub fn category(&self, db: &str, attr: &str) -> Result<Option<Category>, DictionaryError> {
        let attrs = self.attrs(db)?;
        attrs
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, m)| m.category)
            .ok_or_else(|| DictionaryError::UnknownAttribute {
                db: db.to_string(),
                attr: attr.to_string(),
            })
    }

    /// Names of attributes with the given category.
    pub fn attrs_with_category(
        &self,
        db: &str,
        cat: Category,
    ) -> Result<Vec<String>, DictionaryError> {
        Ok(self
            .attrs(db)?
            .iter()
            .filter(|(_, m)| m.category == Some(cat))
            .map(|(a, _)| a.clone())
            .collect())
    }

    /// Quasi-identifier attribute names of a DB.
    pub fn quasi_identifiers(&self, db: &str) -> Result<Vec<String>, DictionaryError> {
        self.attrs_with_category(db, Category::QuasiIdentifier)
    }

    /// Direct identifier attribute names of a DB.
    pub fn identifiers(&self, db: &str) -> Result<Vec<String>, DictionaryError> {
        self.attrs_with_category(db, Category::Identifier)
    }

    /// The (single) weight attribute of a DB.
    pub fn weight_attr(&self, db: &str) -> Result<String, DictionaryError> {
        self.attrs_with_category(db, Category::Weight)?
            .into_iter()
            .next()
            .ok_or_else(|| DictionaryError::NoWeight(db.to_string()))
    }

    /// Are all attributes of the DB categorized?
    pub fn fully_categorized(&self, db: &str) -> Result<bool, DictionaryError> {
        Ok(self.attrs(db)?.iter().all(|(_, m)| m.category.is_some()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetadataDictionary {
        let mut d = MetadataDictionary::new();
        d.register_db("I&G");
        d.register_attr("I&G", "Id", "Company Identifier");
        d.register_attr("I&G", "Area", "Geographic Area");
        d.register_attr("I&G", "Weight", "Sampling Weight");
        d.set_category("I&G", "Id", Category::Identifier).unwrap();
        d.set_category("I&G", "Area", Category::QuasiIdentifier)
            .unwrap();
        d.set_category("I&G", "Weight", Category::Weight).unwrap();
        d
    }

    #[test]
    fn category_roundtrip() {
        for c in [
            Category::Identifier,
            Category::QuasiIdentifier,
            Category::NonIdentifying,
            Category::Sensitive,
            Category::Weight,
        ] {
            assert_eq!(Category::from_name(c.name()), Some(c));
        }
        assert_eq!(Category::from_name("nope"), None);
    }

    #[test]
    fn registration_and_lookup() {
        let d = sample();
        assert_eq!(d.quasi_identifiers("I&G").unwrap(), vec!["Area"]);
        assert_eq!(d.identifiers("I&G").unwrap(), vec!["Id"]);
        assert_eq!(d.weight_attr("I&G").unwrap(), "Weight");
        assert!(d.fully_categorized("I&G").unwrap());
    }

    #[test]
    fn unknown_db_and_attr_errors() {
        let d = sample();
        assert!(matches!(d.attrs("zz"), Err(DictionaryError::UnknownDb(_))));
        assert!(matches!(
            d.category("I&G", "zz"),
            Err(DictionaryError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn missing_weight_is_reported() {
        let mut d = MetadataDictionary::new();
        d.register_attr("m", "a", "");
        assert!(matches!(
            d.weight_attr("m"),
            Err(DictionaryError::NoWeight(_))
        ));
    }

    #[test]
    fn re_registration_updates_description() {
        let mut d = sample();
        d.register_attr("I&G", "Area", "Region of operation");
        let attrs = d.attrs("I&G").unwrap();
        let area = attrs.iter().find(|(a, _)| a == "Area").unwrap();
        assert_eq!(area.1.description, "Region of operation");
        // category preserved
        assert_eq!(area.1.category, Some(Category::QuasiIdentifier));
    }

    #[test]
    fn uncategorized_detected() {
        let mut d = sample();
        d.register_attr("I&G", "Sector", "Product Sector");
        assert!(!d.fully_categorized("I&G").unwrap());
    }
}
