//! Explainability: a structured audit trail of the anonymization cycle.
//!
//! The paper's desideratum (vi) demands that "the confidentiality score of
//! a candidate dataset as well as the reasons for specific anonymization
//! choices \[be\] completely understandable to domain experts". In the
//! declarative encoding each decision is justified by the binding of
//! Algorithm 2's Rule 2; the native cycle records the same information as
//! [`Decision`] values: which tuple violated the threshold, under which
//! measure and score, and what was changed as a consequence.

use crate::anonymize::AnonymizationAction;
use std::fmt;

/// One audited anonymization decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Cycle iteration (0-based) in which the decision was taken.
    pub iteration: usize,
    /// The tuple that violated the threshold.
    pub row: usize,
    /// The measure that produced the violating score.
    pub measure: String,
    /// The tuple's risk when the decision was taken.
    pub risk: f64,
    /// The threshold it violated.
    pub threshold: f64,
    /// The action applied.
    pub action: AnonymizationAction,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[iter {}] tuple {} had {} risk {:.4} > T={:.2}: ",
            self.iteration, self.row, self.measure, self.risk, self.threshold
        )?;
        match &self.action {
            AnonymizationAction::Suppress { attr, previous, .. } => {
                write!(f, "suppressed {attr} (was {previous})")
            }
            AnonymizationAction::Recode {
                attr,
                from,
                to,
                rows_affected,
            } => write!(
                f,
                "recoded {attr}: {from} → {to} ({rows_affected} cells, global)"
            ),
            AnonymizationAction::Exhausted { .. } => {
                write!(f, "no further anonymization possible")
            }
        }
    }
}

/// The full audit trail of one anonymization run.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    /// Decisions in the order they were taken.
    pub decisions: Vec<Decision>,
}

impl AuditLog {
    /// Record a decision.
    pub fn record(&mut self, d: Decision) {
        self.decisions.push(d);
    }

    /// Decisions affecting one tuple.
    pub fn for_tuple(&self, row: usize) -> Vec<&Decision> {
        self.decisions.iter().filter(|d| d.row == row).collect()
    }

    /// Number of suppression actions.
    pub fn suppressions(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.action, AnonymizationAction::Suppress { .. }))
            .count()
    }

    /// Number of recoding actions.
    pub fn recodings(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.action, AnonymizationAction::Recode { .. }))
            .count()
    }

    /// Tuples the cycle gave up on.
    pub fn exhausted_tuples(&self) -> Vec<usize> {
        self.decisions
            .iter()
            .filter_map(|d| match d.action {
                AnonymizationAction::Exhausted { row } => Some(row),
                _ => None,
            })
            .collect()
    }

    /// Render the full trail, one line per decision.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::Value;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::default();
        log.record(Decision {
            iteration: 0,
            row: 3,
            measure: "k-anonymity".into(),
            risk: 1.0,
            threshold: 0.5,
            action: AnonymizationAction::Suppress {
                row: 3,
                attr: "Sector".into(),
                previous: Value::str("Textiles"),
            },
        });
        log.record(Decision {
            iteration: 1,
            row: 3,
            measure: "k-anonymity".into(),
            risk: 1.0,
            threshold: 0.5,
            action: AnonymizationAction::Exhausted { row: 3 },
        });
        log.record(Decision {
            iteration: 0,
            row: 5,
            measure: "k-anonymity".into(),
            risk: 1.0,
            threshold: 0.5,
            action: AnonymizationAction::Recode {
                attr: "Area".into(),
                from: Value::str("Milano"),
                to: Value::str("North"),
                rows_affected: 2,
            },
        });
        log
    }

    #[test]
    fn counters_and_filters() {
        let log = sample_log();
        assert_eq!(log.suppressions(), 1);
        assert_eq!(log.recodings(), 1);
        assert_eq!(log.exhausted_tuples(), vec![3]);
        assert_eq!(log.for_tuple(3).len(), 2);
    }

    #[test]
    fn rendering_is_human_readable() {
        let log = sample_log();
        let text = log.render();
        assert!(text.contains("suppressed Sector"));
        assert!(text.contains("Milano"));
        assert!(text.contains("risk 1.0000 > T=0.50"));
        assert_eq!(text.lines().count(), 3);
    }
}
