//! Deterministic fault injection for the anonymization cycle.
//!
//! Robustness claims are cheap; this module makes them testable. It wraps
//! real plug-ins ([`FaultyRisk`], [`FaultyAnonymizer`]) so that a seeded
//! [`FaultPlan`] can make them panic at a chosen call ordinal, flip a
//! [`CancelToken`] mid-run, or pair with budget/deadline configuration —
//! always at the *same* point for the same seed, so a failing scenario
//! reproduces exactly.
//!
//! The harness lives in the library (not the test tree) so integration
//! tests, benches and downstream consumers can all drive the same
//! scenarios. Its deliberate panics carry `gate-allow` markers: they are
//! the faults under test, not accidental partiality.

use crate::anonymize::{AnonymizationAction, AnonymizeError, Anonymizer};
use crate::dictionary::MetadataDictionary;
use crate::model::MicrodataDb;
use crate::risk::{MicrodataView, RiskError, RiskMeasure, RiskReport};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use vadalog::CancelToken;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Configure the cycle with this iteration cap so it trips before
    /// convergence (a budget fault, not a plug-in fault).
    IterationCap(usize),
    /// Configure the cycle with a zero wall-clock deadline: the very
    /// first deadline check trips.
    ImmediateDeadline,
    /// The risk measure panics on its `n`-th `evaluate` call (1-based).
    PanicInRisk {
        /// Which evaluate call panics, counting from 1.
        at_eval: usize,
    },
    /// The anonymizer panics on its `n`-th `anonymize_step` call
    /// (1-based).
    PanicInAnonymizer {
        /// Which step call panics, counting from 1.
        at_step: usize,
    },
    /// A [`CancelToken`] is flipped after `n` risk evaluations, as if an
    /// operator pressed Ctrl-C mid-cycle.
    CancelAfterEvals(usize),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IterationCap(n) => write!(f, "iteration cap at {n}"),
            Fault::ImmediateDeadline => write!(f, "immediate deadline"),
            Fault::PanicInRisk { at_eval } => write!(f, "risk measure panics at eval #{at_eval}"),
            Fault::PanicInAnonymizer { at_step } => {
                write!(f, "anonymizer panics at step #{at_step}")
            }
            Fault::CancelAfterEvals(n) => write!(f, "cancelled after {n} evals"),
        }
    }
}

/// A named, reproducible fault scenario.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Human-readable scenario name (used in test output).
    pub name: String,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultPlan {
    /// The deterministic scenario matrix for `seed`: every fault kind,
    /// with call ordinals drawn from the seeded generator so different
    /// seeds probe different interleavings while any single seed
    /// reproduces exactly.
    pub fn scenarios(seed: u64) -> Vec<FaultPlan> {
        let mut rng = StdRng::seed_from_u64(seed);
        let eval_at = 1 + rng.gen_range(0..3usize);
        let step_at = 1 + rng.gen_range(0..5usize);
        let cancel_after = 1 + rng.gen_range(0..2usize);
        vec![
            FaultPlan {
                name: "budget:iteration-cap-0".into(),
                fault: Fault::IterationCap(0),
            },
            FaultPlan {
                name: "budget:iteration-cap-1".into(),
                fault: Fault::IterationCap(1),
            },
            FaultPlan {
                name: "budget:immediate-deadline".into(),
                fault: Fault::ImmediateDeadline,
            },
            FaultPlan {
                name: format!("panic:risk-eval-{eval_at}"),
                fault: Fault::PanicInRisk { at_eval: eval_at },
            },
            FaultPlan {
                name: "panic:risk-eval-1".into(),
                fault: Fault::PanicInRisk { at_eval: 1 },
            },
            FaultPlan {
                name: format!("panic:anonymizer-step-{step_at}"),
                fault: Fault::PanicInAnonymizer { at_step: step_at },
            },
            FaultPlan {
                name: format!("cancel:after-{cancel_after}-evals"),
                fault: Fault::CancelAfterEvals(cancel_after),
            },
        ]
    }
}

/// A risk measure that misbehaves on cue: panics on a chosen call ordinal
/// and/or flips a [`CancelToken`] after a number of evaluations, otherwise
/// delegating to the wrapped measure.
pub struct FaultyRisk<'a> {
    inner: &'a dyn RiskMeasure,
    panic_at: Option<usize>,
    cancel_after: Option<(usize, CancelToken)>,
    evals: AtomicUsize,
}

impl<'a> FaultyRisk<'a> {
    /// Wrap `inner` with no faults armed (a transparent pass-through).
    pub fn new(inner: &'a dyn RiskMeasure) -> Self {
        FaultyRisk {
            inner,
            panic_at: None,
            cancel_after: None,
            evals: AtomicUsize::new(0),
        }
    }

    /// Panic on the `n`-th `evaluate` call (1-based).
    pub fn panic_at(mut self, n: usize) -> Self {
        self.panic_at = Some(n);
        self
    }

    /// Flip `token` after `n` `evaluate` calls (1-based).
    pub fn cancel_after(mut self, n: usize, token: CancelToken) -> Self {
        self.cancel_after = Some((n, token));
        self
    }

    /// How many `evaluate` calls the wrapper has seen.
    pub fn evals(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }
}

impl RiskMeasure for FaultyRisk<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        let call = self.evals.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_at == Some(call) {
            panic!("injected risk fault at eval #{call}"); // gate-allow: the fault under test
        }
        if let Some((after, token)) = &self.cancel_after {
            if call >= *after {
                token.cancel();
            }
        }
        self.inner.evaluate(view)
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        self.inner.evaluate_tuple(view, row)
    }
}

/// An anonymizer that panics on a chosen `anonymize_step` call ordinal,
/// otherwise delegating to the wrapped anonymizer.
pub struct FaultyAnonymizer<'a> {
    inner: &'a dyn Anonymizer,
    panic_at: Option<usize>,
    steps: AtomicUsize,
}

impl<'a> FaultyAnonymizer<'a> {
    /// Wrap `inner` with no faults armed.
    pub fn new(inner: &'a dyn Anonymizer) -> Self {
        FaultyAnonymizer {
            inner,
            panic_at: None,
            steps: AtomicUsize::new(0),
        }
    }

    /// Panic on the `n`-th `anonymize_step` call (1-based).
    pub fn panic_at(mut self, n: usize) -> Self {
        self.panic_at = Some(n);
        self
    }

    /// How many `anonymize_step` calls the wrapper has seen.
    pub fn steps(&self) -> usize {
        self.steps.load(Ordering::Relaxed)
    }
}

impl Anonymizer for FaultyAnonymizer<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn anonymize_step(
        &self,
        db: &mut MicrodataDb,
        dict: &MetadataDictionary,
        row: usize,
    ) -> Result<AnonymizationAction, AnonymizeError> {
        let call = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_at == Some(call) {
            panic!("injected anonymizer fault at step #{call}"); // gate-allow: the fault under test
        }
        self.inner.anonymize_step(db, dict, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let a = FaultPlan::scenarios(42);
        let b = FaultPlan::scenarios(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.fault, y.fault);
        }
    }

    #[test]
    fn different_seeds_vary_ordinals() {
        // Not guaranteed for any two seeds, but these two differ — and
        // more importantly every kind of fault is present in both.
        let kinds = |plans: &[FaultPlan]| {
            plans
                .iter()
                .map(|p| std::mem::discriminant(&p.fault))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            kinds(&FaultPlan::scenarios(1)),
            kinds(&FaultPlan::scenarios(2))
        );
    }
}
