//! Deterministic fault injection for the anonymization cycle.
//!
//! Robustness claims are cheap; this module makes them testable. It wraps
//! real plug-ins ([`FaultyRisk`], [`FaultyAnonymizer`]) so that a seeded
//! [`FaultPlan`] can make them panic at a chosen call ordinal, flip a
//! [`CancelToken`] mid-run, or pair with budget/deadline configuration —
//! always at the *same* point for the same seed, so a failing scenario
//! reproduces exactly.
//!
//! The harness lives in the library (not the test tree) so integration
//! tests, benches and downstream consumers can all drive the same
//! scenarios. Its deliberate panics carry `gate-allow` markers: they are
//! the faults under test, not accidental partiality.

use crate::anonymize::{AnonymizationAction, AnonymizeError, Anonymizer};
use crate::dictionary::MetadataDictionary;
use crate::journal::io::{FileJournalIo, IoMode, JournalIo};
use crate::journal::IoFactory;
use crate::model::MicrodataDb;
use crate::risk::{MicrodataView, RiskError, RiskMeasure, RiskReport};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vadalog::backend::{ArtifactIo, RealArtifactIo};
use vadalog::CancelToken;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Configure the cycle with this iteration cap so it trips before
    /// convergence (a budget fault, not a plug-in fault).
    IterationCap(usize),
    /// Configure the cycle with a zero wall-clock deadline: the very
    /// first deadline check trips.
    ImmediateDeadline,
    /// The risk measure panics on its `n`-th `evaluate` call (1-based).
    PanicInRisk {
        /// Which evaluate call panics, counting from 1.
        at_eval: usize,
    },
    /// The anonymizer panics on its `n`-th `anonymize_step` call
    /// (1-based).
    PanicInAnonymizer {
        /// Which step call panics, counting from 1.
        at_step: usize,
    },
    /// A [`CancelToken`] is flipped after `n` risk evaluations, as if an
    /// operator pressed Ctrl-C mid-cycle.
    CancelAfterEvals(usize),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IterationCap(n) => write!(f, "iteration cap at {n}"),
            Fault::ImmediateDeadline => write!(f, "immediate deadline"),
            Fault::PanicInRisk { at_eval } => write!(f, "risk measure panics at eval #{at_eval}"),
            Fault::PanicInAnonymizer { at_step } => {
                write!(f, "anonymizer panics at step #{at_step}")
            }
            Fault::CancelAfterEvals(n) => write!(f, "cancelled after {n} evals"),
        }
    }
}

/// A named, reproducible fault scenario.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Human-readable scenario name (used in test output).
    pub name: String,
    /// The fault to inject.
    pub fault: Fault,
}

impl FaultPlan {
    /// The deterministic scenario matrix for `seed`: every fault kind,
    /// with call ordinals drawn from the seeded generator so different
    /// seeds probe different interleavings while any single seed
    /// reproduces exactly.
    pub fn scenarios(seed: u64) -> Vec<FaultPlan> {
        let mut rng = StdRng::seed_from_u64(seed);
        let eval_at = 1 + rng.gen_range(0..3usize);
        let step_at = 1 + rng.gen_range(0..5usize);
        let cancel_after = 1 + rng.gen_range(0..2usize);
        vec![
            FaultPlan {
                name: "budget:iteration-cap-0".into(),
                fault: Fault::IterationCap(0),
            },
            FaultPlan {
                name: "budget:iteration-cap-1".into(),
                fault: Fault::IterationCap(1),
            },
            FaultPlan {
                name: "budget:immediate-deadline".into(),
                fault: Fault::ImmediateDeadline,
            },
            FaultPlan {
                name: format!("panic:risk-eval-{eval_at}"),
                fault: Fault::PanicInRisk { at_eval: eval_at },
            },
            FaultPlan {
                name: "panic:risk-eval-1".into(),
                fault: Fault::PanicInRisk { at_eval: 1 },
            },
            FaultPlan {
                name: format!("panic:anonymizer-step-{step_at}"),
                fault: Fault::PanicInAnonymizer { at_step: step_at },
            },
            FaultPlan {
                name: format!("cancel:after-{cancel_after}-evals"),
                fault: Fault::CancelAfterEvals(cancel_after),
            },
        ]
    }
}

/// A risk measure that misbehaves on cue: panics on a chosen call ordinal
/// and/or flips a [`CancelToken`] after a number of evaluations, otherwise
/// delegating to the wrapped measure.
pub struct FaultyRisk<'a> {
    inner: &'a dyn RiskMeasure,
    panic_at: Option<usize>,
    cancel_after: Option<(usize, CancelToken)>,
    evals: AtomicUsize,
}

impl<'a> FaultyRisk<'a> {
    /// Wrap `inner` with no faults armed (a transparent pass-through).
    pub fn new(inner: &'a dyn RiskMeasure) -> Self {
        FaultyRisk {
            inner,
            panic_at: None,
            cancel_after: None,
            evals: AtomicUsize::new(0),
        }
    }

    /// Panic on the `n`-th `evaluate` call (1-based).
    pub fn panic_at(mut self, n: usize) -> Self {
        self.panic_at = Some(n);
        self
    }

    /// Flip `token` after `n` `evaluate` calls (1-based).
    pub fn cancel_after(mut self, n: usize, token: CancelToken) -> Self {
        self.cancel_after = Some((n, token));
        self
    }

    /// How many `evaluate` calls the wrapper has seen.
    pub fn evals(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }
}

impl RiskMeasure for FaultyRisk<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        let call = self.evals.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_at == Some(call) {
            panic!("injected risk fault at eval #{call}"); // gate-allow: the fault under test
        }
        if let Some((after, token)) = &self.cancel_after {
            if call >= *after {
                token.cancel();
            }
        }
        self.inner.evaluate(view)
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        self.inner.evaluate_tuple(view, row)
    }
}

/// An anonymizer that panics on a chosen `anonymize_step` call ordinal,
/// otherwise delegating to the wrapped anonymizer.
pub struct FaultyAnonymizer<'a> {
    inner: &'a dyn Anonymizer,
    panic_at: Option<usize>,
    steps: AtomicUsize,
}

impl<'a> FaultyAnonymizer<'a> {
    /// Wrap `inner` with no faults armed.
    pub fn new(inner: &'a dyn Anonymizer) -> Self {
        FaultyAnonymizer {
            inner,
            panic_at: None,
            steps: AtomicUsize::new(0),
        }
    }

    /// Panic on the `n`-th `anonymize_step` call (1-based).
    pub fn panic_at(mut self, n: usize) -> Self {
        self.panic_at = Some(n);
        self
    }

    /// How many `anonymize_step` calls the wrapper has seen.
    pub fn steps(&self) -> usize {
        self.steps.load(Ordering::Relaxed)
    }
}

impl Anonymizer for FaultyAnonymizer<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn anonymize_step(
        &self,
        db: &mut MicrodataDb,
        dict: &MetadataDictionary,
        row: usize,
    ) -> Result<AnonymizationAction, AnonymizeError> {
        let call = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_at == Some(call) {
            panic!("injected anonymizer fault at step #{call}"); // gate-allow: the fault under test
        }
        self.inner.anonymize_step(db, dict, row)
    }
}

/// One injectable journal-I/O fault, applied by [`FaultyJournalIo`] at a
/// chosen operation ordinal. Ordinals count `append` calls (for write
/// faults) or `sync` calls (for sync faults) across the whole run,
/// 1-based, journal and snapshot streams together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// The `n`-th append persists only the first `k` bytes of its buffer
    /// and then errors — a torn write, the canonical crash shape.
    ShortWriteThenError {
        /// Which append call tears, counting from 1.
        at_append: usize,
        /// How many bytes of that buffer still land on disk.
        keep_bytes: usize,
    },
    /// The `n`-th append fails outright, persisting nothing.
    WriteError {
        /// Which append call fails, counting from 1.
        at_append: usize,
    },
    /// The `n`-th fsync fails (data may or may not be durable — the
    /// recovery contract must hold either way).
    SyncError {
        /// Which sync call fails, counting from 1.
        at_sync: usize,
    },
    /// Every append from the `n`-th on fails with `ENOSPC`-like errors,
    /// as a full disk does.
    FullDisk {
        /// First failing append call, counting from 1.
        from_append: usize,
    },
    /// Every byte up to the `k`-th is persisted normally; at the `k`-th
    /// byte the process "crashes": the write stops there and every later
    /// operation fails. Sweeping `k` over a reference journal's length
    /// yields a kill point at every record boundary and mid-record.
    CrashAfterBytes {
        /// Total journal bytes persisted before the crash.
        bytes: usize,
    },
    /// The first `failing` appends fail transiently (persisting
    /// nothing); every later append succeeds. Because the factory's
    /// ordinal counter is shared across every sink it opens — including
    /// across *retry attempts* that reuse the same factory — this models
    /// a fault that heals by the time a supervisor retries the job: the
    /// canonical transient-then-ok shape the server's retry/backoff path
    /// must absorb.
    TransientAppends {
        /// How many leading appends fail, counting from 1.
        failing: usize,
    },
}

impl fmt::Display for JournalFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalFault::ShortWriteThenError {
                at_append,
                keep_bytes,
            } => write!(
                f,
                "short write at append #{at_append} (keeps {keep_bytes}B)"
            ),
            JournalFault::WriteError { at_append } => {
                write!(f, "write error at append #{at_append}")
            }
            JournalFault::SyncError { at_sync } => write!(f, "fsync failure at sync #{at_sync}"),
            JournalFault::FullDisk { from_append } => {
                write!(f, "disk full from append #{from_append}")
            }
            JournalFault::CrashAfterBytes { bytes } => write!(f, "crash after {bytes} bytes"),
            JournalFault::TransientAppends { failing } => {
                write!(f, "first {failing} append(s) fail transiently")
            }
        }
    }
}

/// Shared fault state so one [`JournalFault`] spans every sink a run
/// opens (the journal file and each snapshot temp file).
struct JournalFaultState {
    fault: JournalFault,
    appends: AtomicUsize,
    syncs: AtomicUsize,
    bytes: AtomicUsize,
}

/// A [`JournalIo`] wrapper that injects the planned fault and otherwise
/// delegates to a real file sink.
pub struct FaultyJournalIo {
    inner: FileJournalIo,
    state: Arc<JournalFaultState>,
}

impl JournalIo for FaultyJournalIo {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let call = self.state.appends.fetch_add(1, Ordering::Relaxed) + 1;
        match self.state.fault {
            JournalFault::ShortWriteThenError {
                at_append,
                keep_bytes,
            } if call == at_append => {
                let keep = keep_bytes.min(buf.len());
                self.inner.append(&buf[..keep])?;
                let _ = self.inner.sync(); // the torn prefix really lands
                Err(io::Error::other("injected short write"))
            }
            JournalFault::WriteError { at_append } if call == at_append => {
                Err(io::Error::other("injected write error"))
            }
            JournalFault::TransientAppends { failing } if call <= failing => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient append failure",
            )),
            JournalFault::FullDisk { from_append } if call >= from_append => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected disk full",
            )),
            JournalFault::CrashAfterBytes { bytes } => {
                let written = self.state.bytes.load(Ordering::Relaxed);
                if written >= bytes {
                    return Err(io::Error::other("injected crash"));
                }
                let keep = (bytes - written).min(buf.len());
                self.inner.append(&buf[..keep])?;
                let _ = self.inner.sync();
                self.state.bytes.fetch_add(keep, Ordering::Relaxed);
                if keep < buf.len() {
                    Err(io::Error::other("injected crash"))
                } else {
                    Ok(())
                }
            }
            _ => {
                self.state.bytes.fetch_add(buf.len(), Ordering::Relaxed);
                self.inner.append(buf)
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let call = self.state.syncs.fetch_add(1, Ordering::Relaxed) + 1;
        match self.state.fault {
            JournalFault::SyncError { at_sync } if call == at_sync => {
                Err(io::Error::other("injected fsync failure"))
            }
            JournalFault::CrashAfterBytes { bytes }
                if self.state.bytes.load(Ordering::Relaxed) >= bytes =>
            {
                Err(io::Error::other("injected crash"))
            }
            _ => self.inner.sync(),
        }
    }
}

/// Build a [`JournalConfig::io_factory`](crate::journal::JournalConfig)
/// that injects `fault` into every sink the run opens. Ordinals are
/// counted across all sinks, so one plan covers journal appends and
/// snapshot writes alike.
pub fn faulty_io_factory(fault: JournalFault) -> IoFactory {
    let state = Arc::new(JournalFaultState {
        fault,
        appends: AtomicUsize::new(0),
        syncs: AtomicUsize::new(0),
        bytes: AtomicUsize::new(0),
    });
    Arc::new(move |path: &Path, mode: IoMode| {
        let inner = match mode {
            IoMode::Journal => FileJournalIo::append_create(path)?,
            IoMode::Snapshot => FileJournalIo::create(path)?,
        };
        Ok(Box::new(FaultyJournalIo {
            inner,
            state: state.clone(),
        }) as Box<dyn JournalIo>)
    })
}

/// One injectable artifact-storage fault, applied by the [`ArtifactIo`]
/// built with [`faulty_artifact_io`] and slotted under a
/// [`FileBackend`](vadalog::backend::FileBackend). Write ordinals are
/// 1-based and shared across every artifact the backend touches, so one
/// plan covers a whole run's persistence traffic.
///
/// The matrix contract (see `tests/storage_matrix.rs`): every one of
/// these, injected at any point, must surface as a **structured
/// [`StorageError`](vadalog::backend::StorageError)** or a **documented
/// cold fallback** — never a panic, never silent divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The `n`-th write persists only the first `k` bytes of its buffer
    /// and then errors — a torn artifact write. The atomic-replace
    /// protocol (tmp + rename) must keep the previous artifact visible.
    TornWrite {
        /// Which write call tears, counting from 1.
        at_write: usize,
        /// How many bytes of that buffer still land on disk.
        keep_bytes: usize,
    },
    /// Every write from the `n`-th on fails with an `ENOSPC`-like error.
    FullDisk {
        /// First failing write call, counting from 1.
        from_write: usize,
    },
    /// Every byte up to the `k`-th (cumulative across writes) persists;
    /// then the process "crashes" — the write stops and all later writes
    /// fail. Sweeping `k` over a reference artifact's length gives a
    /// kill point at every byte.
    CrashAfterBytes {
        /// Total artifact bytes persisted before the crash.
        bytes: usize,
    },
    /// Reads succeed but return a corrupt page: the byte at
    /// `flip_byte % len` comes back bit-flipped.
    CorruptOnRead {
        /// Which byte of the artifact is flipped (wrapped into range).
        flip_byte: usize,
    },
    /// Every read is denied (`EACCES`-like) — the reopen-denied shape a
    /// permissions change or stale NFS handle produces.
    ReopenDenied,
    /// Reads return an alien file: the artifact magic is replaced.
    AlienMagic,
    /// Reads return the artifact with its format version bumped to
    /// `u32::MAX`, as a file written by a much newer build would carry.
    FutureVersion,
}

impl fmt::Display for StorageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageFault::TornWrite {
                at_write,
                keep_bytes,
            } => write!(f, "torn write at write #{at_write} (keeps {keep_bytes}B)"),
            StorageFault::FullDisk { from_write } => {
                write!(f, "disk full from write #{from_write}")
            }
            StorageFault::CrashAfterBytes { bytes } => {
                write!(f, "crash after {bytes} artifact bytes")
            }
            StorageFault::CorruptOnRead { flip_byte } => {
                write!(f, "corrupt page: byte {flip_byte} flipped on read")
            }
            StorageFault::ReopenDenied => write!(f, "artifact reopen denied"),
            StorageFault::AlienMagic => write!(f, "alien magic on read"),
            StorageFault::FutureVersion => write!(f, "future format version on read"),
        }
    }
}

impl StorageFault {
    /// The canonical storage fault matrix: one representative of every
    /// fault family, with fixed early ordinals so each fault actually
    /// fires on small workloads. Tests extend this with swept ordinals
    /// (`CrashAfterBytes` over a reference artifact's length).
    pub fn matrix() -> Vec<StorageFault> {
        vec![
            StorageFault::TornWrite {
                at_write: 1,
                keep_bytes: 7,
            },
            StorageFault::TornWrite {
                at_write: 2,
                keep_bytes: 0,
            },
            StorageFault::FullDisk { from_write: 1 },
            StorageFault::FullDisk { from_write: 2 },
            StorageFault::CrashAfterBytes { bytes: 0 },
            StorageFault::CrashAfterBytes { bytes: 13 },
            StorageFault::CorruptOnRead { flip_byte: 3 },
            StorageFault::CorruptOnRead { flip_byte: 40 },
            StorageFault::ReopenDenied,
            StorageFault::AlienMagic,
            StorageFault::FutureVersion,
        ]
    }
}

/// Shared fault state so one [`StorageFault`]'s ordinals span every
/// artifact a backend touches.
struct StorageFaultState {
    fault: StorageFault,
    writes: AtomicUsize,
    bytes: AtomicUsize,
}

/// An [`ArtifactIo`] that injects the planned [`StorageFault`] and
/// otherwise performs real file I/O.
pub struct FaultyArtifactIo {
    inner: RealArtifactIo,
    state: Arc<StorageFaultState>,
}

impl ArtifactIo for FaultyArtifactIo {
    fn write(&self, path: &Path, buf: &[u8]) -> io::Result<()> {
        let call = self.state.writes.fetch_add(1, Ordering::Relaxed) + 1;
        match self.state.fault {
            StorageFault::TornWrite {
                at_write,
                keep_bytes,
            } if call == at_write => {
                let keep = keep_bytes.min(buf.len());
                self.inner.write(path, &buf[..keep])?;
                Err(io::Error::other("injected torn artifact write"))
            }
            StorageFault::FullDisk { from_write } if call >= from_write => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected disk full",
            )),
            StorageFault::CrashAfterBytes { bytes } => {
                let written = self.state.bytes.load(Ordering::Relaxed);
                if written >= bytes {
                    return Err(io::Error::other("injected crash"));
                }
                let keep = (bytes - written).min(buf.len());
                self.inner.write(path, &buf[..keep])?;
                self.state.bytes.fetch_add(keep, Ordering::Relaxed);
                if keep < buf.len() {
                    Err(io::Error::other("injected crash"))
                } else {
                    Ok(())
                }
            }
            _ => self.inner.write(path, buf),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.state.fault {
            StorageFault::ReopenDenied => Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "injected reopen denial",
            )),
            StorageFault::CorruptOnRead { flip_byte } => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let i = flip_byte % bytes.len();
                    bytes[i] ^= 0x40;
                }
                Ok(bytes)
            }
            StorageFault::AlienMagic => {
                let mut bytes = self.inner.read(path)?;
                for (i, b) in bytes.iter_mut().take(8).enumerate() {
                    *b = b"NOTAVADA"[i];
                }
                Ok(bytes)
            }
            StorageFault::FutureVersion => {
                let mut bytes = self.inner.read(path)?;
                if bytes.len() >= 12 {
                    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
                }
                Ok(bytes)
            }
            _ => self.inner.read(path),
        }
    }
}

/// Build an [`ArtifactIo`] injecting `fault`, for
/// [`FileBackend::with_io`](vadalog::backend::FileBackend::with_io).
pub fn faulty_artifact_io(fault: StorageFault) -> Arc<dyn ArtifactIo> {
    Arc::new(FaultyArtifactIo {
        inner: RealArtifactIo,
        state: Arc::new(StorageFaultState {
            fault,
            writes: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }),
    })
}

/// Server-level fault injection: what a *job* submitted to the
/// `vadasa-server` supervisor should do wrong, and when. Unlike the
/// plug-in wrappers above (which a caller wires manually), a
/// `ServerFault` rides on the job specification and the server's worker
/// arms the corresponding machinery itself — so the retry/backoff,
/// panic-isolation and delayed-admission paths are all deterministically
/// testable from the outside.
///
/// Faults are an in-memory testing surface only: they are **not**
/// persisted into the job manifest, so a recovered job restarts clean
/// (exactly what a real transient fault looks like across a restart).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFault {
    /// Panic in the worker thread itself — outside the cycle's plug-in
    /// guard — when it begins the given attempt (1-based). Exercises the
    /// supervisor's `catch_unwind` isolation: the job must end `Failed`
    /// with a structured error while the worker pool keeps serving.
    pub panic_on_attempt: Option<u32>,
    /// Arm a [`FaultyRisk`] wrapper that panics on the `n`-th risk
    /// evaluation (1-based) — the in-cycle plug-in-panic path, handled
    /// by the cycle's own isolation per its fallback policy.
    pub risk_panic_at_eval: Option<usize>,
    /// Arm a [`JournalFault::TransientAppends`] I/O factory: the first
    /// `n` journal appends fail, later ones succeed. With the default
    /// fail-fast I/O policy the first attempt dies with a transient
    /// journal error and the retry converges — the retry/backoff path.
    pub transient_appends: Option<usize>,
    /// Sleep this long in the worker before the job actually starts —
    /// holds a worker slot deterministically so admission-control and
    /// cancellation windows can be pinned in tests.
    pub delay_start: Option<std::time::Duration>,
}

impl ServerFault {
    /// No faults armed (what `Default` also gives you).
    pub fn none() -> Self {
        ServerFault::default()
    }

    /// Is any fault armed?
    pub fn is_armed(&self) -> bool {
        *self != ServerFault::default()
    }

    /// Panic in the worker at the start of `attempt` (1-based).
    pub fn panic_on_attempt(mut self, attempt: u32) -> Self {
        self.panic_on_attempt = Some(attempt);
        self
    }

    /// Panic inside the risk measure at evaluation `n` (1-based).
    pub fn risk_panic_at_eval(mut self, n: usize) -> Self {
        self.risk_panic_at_eval = Some(n);
        self
    }

    /// Fail the first `n` journal appends, then heal.
    pub fn transient_appends(mut self, n: usize) -> Self {
        self.transient_appends = Some(n);
        self
    }

    /// Delay the job's start by `d`.
    pub fn delay_start(mut self, d: std::time::Duration) -> Self {
        self.delay_start = Some(d);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let a = FaultPlan::scenarios(42);
        let b = FaultPlan::scenarios(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.fault, y.fault);
        }
    }

    #[test]
    fn different_seeds_vary_ordinals() {
        // Not guaranteed for any two seeds, but these two differ — and
        // more importantly every kind of fault is present in both.
        let kinds = |plans: &[FaultPlan]| {
            plans
                .iter()
                .map(|p| std::mem::discriminant(&p.fault))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            kinds(&FaultPlan::scenarios(1)),
            kinds(&FaultPlan::scenarios(2))
        );
    }

    #[test]
    fn transient_appends_heal_across_reopened_sinks() {
        let dir = std::env::temp_dir().join(format!("vadasa-transient-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let factory = faulty_io_factory(JournalFault::TransientAppends { failing: 2 });
        // First sink: both appends fail (ordinals 1 and 2)...
        let mut a = factory(&dir.join("a.wal"), IoMode::Journal).unwrap();
        assert!(a.append(b"x").is_err());
        assert!(a.append(b"y").is_err());
        // ...and a *new* sink from the same factory — a retry attempt —
        // continues the shared count, so its appends succeed.
        let mut b = factory(&dir.join("b.wal"), IoMode::Journal).unwrap();
        b.append(b"z").unwrap();
        b.sync().unwrap();
        assert_eq!(std::fs::read(dir.join("b.wal")).unwrap(), b"z");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_fault_builders_compose() {
        let f = ServerFault::none()
            .panic_on_attempt(1)
            .transient_appends(3)
            .delay_start(std::time::Duration::from_millis(5));
        assert!(f.is_armed());
        assert_eq!(f.panic_on_attempt, Some(1));
        assert_eq!(f.transient_appends, Some(3));
        assert!(!ServerFault::none().is_armed());
    }
}
