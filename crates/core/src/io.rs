//! CSV import/export for microdata DBs.
//!
//! The Research Data Center setting exchanges survey extracts as flat
//! files; this module provides a dependency-free CSV reader/writer so a
//! microdata DB can round-trip through the anonymization cycle and back to
//! disk. Quoting follows RFC 4180 (double quotes, doubled to escape);
//! labelled nulls are serialized as `⊥N` and recovered on import, so an
//! anonymized file re-imported for a second pass keeps its suppression
//! structure.
//!
//! Cell typing on import: integers, then floats, then strings; the
//! per-column inference is *consistent* (a column with any non-numeric
//! entry is read entirely as strings) so equality-based grouping behaves
//! the same before and after a round-trip.

use crate::model::{MicrodataDb, ModelError};
use std::fmt;
use vadalog::Value;

/// CSV processing errors.
#[derive(Debug)]
pub enum CsvError {
    /// Structural problem in the input text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parsed rows do not form a rectangular table.
    Shape(String),
    /// Microdata construction failed.
    Model(ModelError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Parse { line, message } => {
                write!(f, "CSV parse error, line {line}: {message}")
            }
            CsvError::Shape(m) => write!(f, "CSV shape error: {m}"),
            CsvError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<ModelError> for CsvError {
    fn from(e: ModelError) -> Self {
        CsvError::Model(e)
    }
}

/// Split CSV text into records of fields (RFC-4180-style quoting).
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CsvError::Parse {
                        line,
                        message: "quote in the middle of an unquoted field".into(),
                    });
                }
                in_quotes = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {} // tolerate CRLF
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                line += 1;
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(CsvError::Parse {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

fn parse_null(s: &str) -> Option<u64> {
    s.strip_prefix('⊥').and_then(|n| n.parse().ok())
}

/// Read a microdata DB from CSV text. The first record is the header
/// (attribute names); `name` becomes the table name.
pub fn read_csv(name: &str, text: &str) -> Result<MicrodataDb, CsvError> {
    let records = parse_records(text)?;
    let Some((header, body)) = records.split_first() else {
        return Err(CsvError::Shape("empty input".into()));
    };
    let width = header.len();
    for (i, r) in body.iter().enumerate() {
        if r.len() != width {
            return Err(CsvError::Shape(format!(
                "record {} has {} fields, header has {width}",
                i + 2,
                r.len()
            )));
        }
    }

    // column-consistent type inference: Int ⊂ Float ⊂ Str; nulls are
    // orthogonal and allowed in any column
    #[derive(Clone, Copy, PartialEq)]
    enum ColTy {
        Int,
        Float,
        Str,
    }
    let mut col_ty = vec![ColTy::Int; width];
    for r in body {
        for (c, cell) in r.iter().enumerate() {
            if parse_null(cell).is_some() {
                continue;
            }
            col_ty[c] = match col_ty[c] {
                ColTy::Int if cell.parse::<i64>().is_ok() => ColTy::Int,
                ColTy::Int | ColTy::Float if cell.parse::<f64>().is_ok() => ColTy::Float,
                _ => ColTy::Str,
            };
        }
    }

    let mut db = MicrodataDb::new(name, header.iter().map(|h| h.as_str()))?;
    for (i, r) in body.iter().enumerate() {
        let mut row: Vec<Value> = Vec::with_capacity(width);
        for (c, cell) in r.iter().enumerate() {
            if let Some(n) = parse_null(cell) {
                row.push(Value::Null(n));
                continue;
            }
            // The second pass re-parses what inference already accepted,
            // so a failure here is unreachable in practice — but the
            // importer must be total on hostile input, so it reports
            // instead of trusting the first pass.
            let typed = match col_ty[c] {
                ColTy::Int => cell.parse().map(Value::Int).map_err(|e| e.to_string()),
                ColTy::Float => cell.parse().map(Value::Float).map_err(|e| e.to_string()),
                ColTy::Str => Ok(Value::str(cell.as_str())),
            };
            match typed {
                Ok(v) => row.push(v),
                Err(message) => {
                    return Err(CsvError::Parse {
                        line: i + 2,
                        message: format!("cell '{cell}' failed typed parse: {message}"),
                    })
                }
            }
        }
        db.push_row(row)?;
    }
    Ok(db)
}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r')
}

fn write_field(out: &mut String, s: &str) {
    if needs_quoting(s) {
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Serialize a microdata DB to CSV text (header + rows). Labelled nulls
/// become `⊥N`; strings keep their raw content (quoted when needed).
pub fn write_csv(db: &MicrodataDb) -> String {
    let mut out = String::new();
    for (i, attr) in db.attributes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, attr);
    }
    out.push('\n');
    for row in db.iter_rows() {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                Value::Str(s) => write_field(&mut out, s),
                Value::Null(n) => out.push_str(&format!("⊥{n}")),
                other => out.push_str(&other.to_string()),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values_and_types() {
        let csv = "id,area,w\n1,North,10\n2,\"South, deep\",20\n";
        let db = read_csv("t", csv).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.value(0, "id").unwrap(), &Value::Int(1));
        assert_eq!(db.value(1, "area").unwrap(), &Value::str("South, deep"));
        assert_eq!(db.value(1, "w").unwrap(), &Value::Int(20));
        let back = write_csv(&db);
        let db2 = read_csv("t", &back).unwrap();
        for i in 0..db.len() {
            assert_eq!(db.row(i).unwrap(), db2.row(i).unwrap());
        }
    }

    #[test]
    fn nulls_roundtrip() {
        let mut db = MicrodataDb::new("t", ["a", "b"]).unwrap();
        db.push_row(vec![Value::str("x"), Value::Int(1)]).unwrap();
        let null = db.fresh_null();
        db.set_value(0, "a", null.clone()).unwrap();
        let text = write_csv(&db);
        assert!(text.contains("⊥0"));
        let db2 = read_csv("t", &text).unwrap();
        assert_eq!(db2.value(0, "a").unwrap(), &null);
        // and the counter is advanced so new nulls stay fresh
        assert_eq!(db2.clone().fresh_null(), Value::Null(1));
    }

    #[test]
    fn column_type_inference_is_consistent() {
        // one non-numeric entry makes the whole column strings
        let csv = "x\n1\n2\nn/a\n";
        let db = read_csv("t", csv).unwrap();
        assert_eq!(db.value(0, "x").unwrap(), &Value::str("1"));
        assert_eq!(db.value(2, "x").unwrap(), &Value::str("n/a"));
        // ints promote to float when any cell is fractional
        let csv = "y\n1\n2.5\n";
        let db = read_csv("t", csv).unwrap();
        assert_eq!(db.value(0, "y").unwrap(), &Value::Float(1.0));
    }

    #[test]
    fn quoted_fields_with_escapes_and_newlines() {
        let csv = "a,b\n\"he said \"\"hi\"\"\",\"line1\nline2\"\n";
        let db = read_csv("t", csv).unwrap();
        assert_eq!(db.value(0, "a").unwrap(), &Value::str("he said \"hi\""));
        assert_eq!(db.value(0, "b").unwrap(), &Value::str("line1\nline2"));
        // round-trip keeps them intact
        let db2 = read_csv("t", &write_csv(&db)).unwrap();
        assert_eq!(db.row(0).unwrap(), db2.row(0).unwrap());
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(matches!(read_csv("t", ""), Err(CsvError::Shape(_))));
        assert!(matches!(read_csv("t", "a,b\n1\n"), Err(CsvError::Shape(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            read_csv("t", "a\n\"unterminated\n"),
            Err(CsvError::Parse { .. })
        ));
        assert!(matches!(
            read_csv("t", "a\nmid\"quote\n"),
            Err(CsvError::Parse { .. })
        ));
    }

    #[test]
    fn duplicate_header_names_are_rejected() {
        // Journal replay binds recorded actions to columns *by name*, so
        // an ambiguous header must never produce a table. The model layer
        // rejects it; pin that the CSV path surfaces the error cleanly.
        let err = read_csv("t", "a,b,a\n1,2,3\n").unwrap_err();
        match err {
            CsvError::Model(ModelError::DuplicateAttribute(name)) => assert_eq!(name, "a"),
            other => panic!("expected DuplicateAttribute, got {other:?}"),
        }
        // quoted duplicates collapse to the same name and are equally bad
        assert!(matches!(
            read_csv("t", "\"x\",x\n1,2\n"),
            Err(CsvError::Model(ModelError::DuplicateAttribute(_)))
        ));
    }

    #[test]
    fn crlf_is_tolerated() {
        let db = read_csv("t", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.value(0, "b").unwrap(), &Value::Int(2));
    }

    #[test]
    fn anonymized_table_survives_a_roundtrip() {
        use crate::dictionary::{Category, MetadataDictionary};
        use crate::prelude::*;
        let csv =
            "id,area,sector,w\n1,North,Textiles,60\n2,North,Commerce,90\n3,North,Commerce,90\n";
        let db = read_csv("survey", csv).unwrap();
        let mut dict = MetadataDictionary::new();
        for a in ["id", "area", "sector", "w"] {
            dict.register_attr("survey", a, "");
        }
        dict.set_category("survey", "id", Category::Identifier)
            .unwrap();
        dict.set_category("survey", "area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("survey", "sector", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("survey", "w", Category::Weight).unwrap();
        let risk = KAnonymity::new(2);
        let anonymizer = LocalSuppression::default();
        let out = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        let text = write_csv(&out.db);
        let back = read_csv("survey", &text).unwrap();
        // re-evaluating on the re-imported table gives the same risks
        let v1 = MicrodataView::from_db(&out.db, &dict).unwrap();
        let v2 = MicrodataView::from_db(&back, &dict).unwrap();
        let r1 = KAnonymity::new(2).evaluate(&v1).unwrap();
        let r2 = KAnonymity::new(2).evaluate(&v2).unwrap();
        assert_eq!(r1.risks, r2.risks);
    }
}
