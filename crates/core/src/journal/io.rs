//! The byte sink behind the journal writer.
//!
//! Production uses [`FileJournalIo`] (an append-mode `File`). The fault
//! harness ([`crate::faults`]) supplies failing implementations — short
//! writes, write errors, fsync failures, full disks — through
//! [`JournalConfig::io_factory`](crate::journal::JournalConfig), so
//! every I/O failure mode is testable without touching a real disk's
//! error paths.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Fsync a *directory*, making freshly created or renamed entries in it
/// durable. File-content fsyncs alone do not guarantee the dirent
/// survives a crash on filesystems with deferred directory durability
/// (ext4 `data=ordered`, xfs): the file bytes can be on disk while the
/// name pointing at them is not. The journal writer calls this after
/// creating `journal.wal` and after renaming a snapshot into place.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// An append-only byte sink with explicit durability points.
///
/// `append` must either write the whole buffer or return an error; a
/// *short* write (some bytes persisted, then failure) is modelled by
/// writing a prefix and then erroring, which is exactly what a crashing
/// kernel produces and what recovery's truncate-at-tear logic absorbs.
pub trait JournalIo: Send {
    /// Append `buf` at the end of the sink.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Make everything appended so far durable (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// How a [`JournalIo`] sink will be used; passed to the I/O factory so a
/// fault plan can target the journal and the snapshot stream separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// The write-ahead journal file itself.
    Journal,
    /// A snapshot temp file (atomically renamed into place afterwards).
    Snapshot,
}

/// Borrowed form of [`IoFactory`](crate::journal::IoFactory): opens one
/// sink for a path in the given [`IoMode`].
pub type OpenSink<'a> = dyn Fn(&Path, IoMode) -> io::Result<Box<dyn JournalIo>> + 'a;

/// The real thing: a buffered append to a file plus `File::sync_all`.
pub struct FileJournalIo {
    file: File,
}

impl FileJournalIo {
    /// Create `path` (truncating any existing file) for appending.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(FileJournalIo { file })
    }

    /// Open an existing `path` for appending (used by resume).
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(FileJournalIo { file })
    }

    /// Open `path` for appending, creating it if missing — the default
    /// mode for the journal file (fresh runs create, resumes append).
    pub fn append_create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileJournalIo { file })
    }
}

impl JournalIo for FileJournalIo {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_io_appends_and_syncs() {
        let dir = std::env::temp_dir().join(format!("vadasa-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        {
            let mut io = FileJournalIo::create(&path).unwrap();
            io.append(b"hello ").unwrap();
            io.sync().unwrap();
        }
        {
            let mut io = FileJournalIo::append_to(&path).unwrap();
            io.append(b"world").unwrap();
            io.sync().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_dir_accepts_directories_and_rejects_missing_paths() {
        let dir = std::env::temp_dir().join(format!("vadasa-fsyncdir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        fsync_dir(&dir).unwrap();
        assert!(fsync_dir(&dir.join("no-such-subdir")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
