//! Crash-safe persistence for the anonymization cycle: a write-ahead
//! action journal plus atomic snapshots (DESIGN.md §10).
//!
//! The cycle appends one checksummed record per committed
//! [`AnonymizationAction`](crate::anonymize::AnonymizationAction) and one
//! `Commit` marker per finished iteration; every `snapshot_every`
//! iterations the full working state is frozen into an atomically
//! renamed snapshot file (see [`crate::checkpoint`]). After a crash,
//! [`recover`] scans the journal, truncates at the first torn or corrupt
//! record, replays the surviving committed actions onto the newest valid
//! snapshot (or the original table) and hands the cycle a state from
//! which continuing is **bit-identical** to a run that was never
//! interrupted: the cycle is a deterministic function of its inputs, and
//! iteration boundaries are exactly the points where no intra-iteration
//! state is live.

pub mod io;
pub mod record;

use crate::checkpoint::Checkpoint;
use crate::cycle::CycleConfig;
use crate::dictionary::MetadataDictionary;
use crate::explain::{AuditLog, Decision};
use crate::model::MicrodataDb;
use io::{FileJournalIo, IoMode, JournalIo};
use record::{JournalRecord, MAGIC};
use std::collections::HashSet;
use std::fmt;
use std::io as stdio;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Name of the write-ahead journal file inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// When the journal writer calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// After every record — maximal durability, maximal overhead.
    #[default]
    EveryRecord,
    /// After every `n` unsynced records (and on every snapshot). A crash
    /// can lose at most the last `n` records; recovery re-derives them.
    EveryN(u32),
    /// Only when a snapshot is written. Cheapest; a crash rolls back to
    /// the last snapshot-or-sync point and recovery re-derives the rest.
    OnSnapshot,
}

/// What to do when journal I/O fails mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoErrorPolicy {
    /// Abort the cycle with [`JournalError::Io`] — durability is part of
    /// the contract.
    #[default]
    Fail,
    /// Log the failure into `cycle.journal.io_errors`, stop journaling,
    /// and let the in-memory run complete (the journal is left truncated
    /// but well-formed, so a later resume still works from its horizon).
    Disable,
}

/// Factory for the byte sinks the journal writes through. Production
/// leaves it `None` (plain files); the fault harness injects failing
/// implementations per [`IoMode`].
pub type IoFactory = Arc<dyn Fn(&Path, IoMode) -> stdio::Result<Box<dyn JournalIo>> + Send + Sync>;

/// Journal configuration, carried on
/// [`CycleConfig::journal`](crate::cycle::CycleConfig::journal).
#[derive(Clone)]
pub struct JournalConfig {
    /// Directory holding `journal.wal` and `snapshot-*.vsnap` files.
    /// Created if missing.
    pub dir: PathBuf,
    /// Durability policy.
    pub sync: SyncPolicy,
    /// Snapshot the full working state every `n` completed iterations
    /// (`None` disables snapshots; recovery then replays from the
    /// original table).
    pub snapshot_every: Option<u32>,
    /// Reaction to journal I/O failure.
    pub on_io_error: IoErrorPolicy,
    /// Byte-sink factory override for fault injection.
    pub io_factory: Option<IoFactory>,
}

impl JournalConfig {
    /// Journal into `dir` with default policies: fsync every record,
    /// snapshot every 16 iterations, fail on I/O errors.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            sync: SyncPolicy::EveryRecord,
            snapshot_every: Some(16),
            on_io_error: IoErrorPolicy::Fail,
            io_factory: None,
        }
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    fn open(&self, path: &Path, mode: IoMode) -> stdio::Result<Box<dyn JournalIo>> {
        match &self.io_factory {
            Some(f) => f(path, mode),
            None => match mode {
                IoMode::Journal => Ok(Box::new(FileJournalIo::append_create(path)?)),
                IoMode::Snapshot => Ok(Box::new(FileJournalIo::create(path)?)),
            },
        }
    }
}

impl fmt::Debug for JournalConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalConfig")
            .field("dir", &self.dir)
            .field("sync", &self.sync)
            .field("snapshot_every", &self.snapshot_every)
            .field("on_io_error", &self.on_io_error)
            .field(
                "io_factory",
                &self.io_factory.as_ref().map(|_| "<injected>"),
            )
            .finish()
    }
}

/// Journal failures.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O operation failed (and [`IoErrorPolicy::Fail`] applies).
    Io {
        /// What the journal was doing.
        context: String,
        /// The underlying error.
        source: stdio::Error,
    },
    /// The journal file is structurally beyond use (bad magic, torn
    /// header). Torn *tails* are not errors — they are truncated.
    Corrupt {
        /// Byte offset of the offending region.
        offset: u64,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// The journal belongs to a different run: wrong fingerprint, wrong
    /// table, wrong plug-ins.
    Mismatch(String),
    /// `run` refuses to overwrite an existing journal — use `resume`, or
    /// point at a fresh directory.
    AlreadyExists(PathBuf),
    /// `resume` found no journal file to resume from.
    Missing(PathBuf),
    /// `resume` was called without [`CycleConfig::journal`] configured.
    NotConfigured,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { context, source } => {
                write!(f, "journal i/o failed while {context}: {source}")
            }
            JournalError::Corrupt { offset, reason } => {
                write!(f, "journal corrupt at byte {offset}: {reason}")
            }
            JournalError::Mismatch(why) => {
                write!(f, "journal does not match this run: {why}")
            }
            JournalError::AlreadyExists(p) => write!(
                f,
                "journal {} already exists — resume it or choose a fresh directory",
                p.display()
            ),
            JournalError::Missing(p) => {
                write!(f, "no journal to resume at {}", p.display())
            }
            JournalError::NotConfigured => {
                write!(f, "resume requires CycleConfig::journal to be set")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Counters describing the journal's work during one run, surfaced as
/// `cycle.journal.*` telemetry and in
/// [`render_profile`](crate::report::render_profile).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalProfile {
    /// Records appended (including `Begin`/`Commit`/markers).
    pub records_written: u64,
    /// Bytes appended to the journal file.
    pub bytes_written: u64,
    /// `fsync` calls issued on the journal/snapshot files.
    pub fsyncs: u64,
    /// `fsync` calls issued on the journal *directory* (after creating
    /// `journal.wal` and after renaming a snapshot into place), so the
    /// dirents themselves survive a crash.
    pub dir_fsyncs: u64,
    /// Snapshot files atomically written.
    pub snapshots_written: u64,
    /// Total bytes of snapshot files written.
    pub snapshot_bytes: u64,
    /// Committed actions replayed during recovery.
    pub replayed_actions: u64,
    /// Bytes truncated off the journal tail during recovery.
    pub truncated_bytes: u64,
    /// Uncommitted (partial-iteration) actions discarded during recovery.
    pub discarded_actions: u64,
    /// I/O failures absorbed under [`IoErrorPolicy::Disable`].
    pub io_errors: u64,
}

/// The append side: owns the byte sink, enforces the sync policy, and
/// degrades per the I/O-error policy.
pub struct JournalWriter {
    cfg: JournalConfig,
    /// `None` once journaling was disabled by an absorbed I/O error.
    io: Option<Box<dyn JournalIo>>,
    unsynced: u32,
    /// Fingerprint of the run, stamped into snapshots.
    fingerprint: u64,
    /// Counters for telemetry.
    pub profile: JournalProfile,
}

impl JournalWriter {
    /// Start a fresh journal. Refuses to overwrite an existing one.
    pub fn create(
        cfg: &JournalConfig,
        begin: &JournalRecord,
        fingerprint: u64,
    ) -> Result<Self, JournalError> {
        let path = cfg.journal_path();
        if path.exists() {
            return Err(JournalError::AlreadyExists(path));
        }
        Self::start(cfg, begin, fingerprint)
    }

    /// Continue an existing journal whose tail [`recover`] already
    /// truncated. When the header itself was torn (`append_offset == 0`)
    /// the file is rewritten from scratch.
    pub fn resume(
        cfg: &JournalConfig,
        begin: &JournalRecord,
        fingerprint: u64,
        append_offset: u64,
        recovered: JournalProfile,
    ) -> Result<Self, JournalError> {
        if append_offset == 0 {
            if let Err(e) = std::fs::remove_file(cfg.journal_path()) {
                if e.kind() != stdio::ErrorKind::NotFound {
                    return Err(JournalError::Io {
                        context: "clearing torn journal header".to_string(),
                        source: e,
                    });
                }
            }
            let mut w = Self::start(cfg, begin, fingerprint)?;
            w.profile.replayed_actions = recovered.replayed_actions;
            w.profile.truncated_bytes = recovered.truncated_bytes;
            w.profile.discarded_actions = recovered.discarded_actions;
            return Ok(w);
        }
        let path = cfg.journal_path();
        let io = cfg
            .open(&path, IoMode::Journal)
            .map_err(|e| JournalError::Io {
                context: "reopening journal for append".to_string(),
                source: e,
            })?;
        Ok(JournalWriter {
            cfg: cfg.clone(),
            io: Some(io),
            unsynced: 0,
            fingerprint,
            profile: recovered,
        })
    }

    fn start(
        cfg: &JournalConfig,
        begin: &JournalRecord,
        fingerprint: u64,
    ) -> Result<Self, JournalError> {
        std::fs::create_dir_all(&cfg.dir).map_err(|e| JournalError::Io {
            context: "creating journal directory".to_string(),
            source: e,
        })?;
        let path = cfg.journal_path();
        let mut writer = JournalWriter {
            cfg: cfg.clone(),
            io: None,
            unsynced: 0,
            fingerprint,
            profile: JournalProfile::default(),
        };
        let mut io = match cfg.open(&path, IoMode::Journal) {
            Ok(io) => io,
            Err(e) => return writer.absorb(e, "opening journal"),
        };
        // header + Begin are written and synced unconditionally: without
        // a durable header the journal identifies nothing.
        let frame = begin.encode();
        let attempt = io
            .append(MAGIC)
            .and_then(|_| io.append(&frame))
            .and_then(|_| io.sync());
        if let Err(e) = attempt {
            return writer.absorb(e, "writing journal header");
        }
        writer.profile.records_written = 1;
        writer.profile.bytes_written = (MAGIC.len() + frame.len()) as u64;
        writer.profile.fsyncs = 1;
        // The file contents are durable; now make the *dirent* durable
        // too, or a crash can leave a fully-synced journal that simply
        // does not exist under its name.
        if let Err(e) = io::fsync_dir(&cfg.dir) {
            return writer.absorb(e, "fsyncing journal directory");
        }
        writer.profile.dir_fsyncs = 1;
        writer.io = Some(io);
        Ok(writer)
    }

    /// Apply the configured I/O-error policy to a failed operation; on
    /// `Disable` the writer survives with journaling off.
    fn absorb(&mut self, e: stdio::Error, context: &str) -> Result<Self, JournalError> {
        match self.cfg.on_io_error {
            IoErrorPolicy::Fail => Err(JournalError::Io {
                context: context.to_string(),
                source: e,
            }),
            IoErrorPolicy::Disable => {
                self.profile.io_errors += 1;
                self.io = None;
                Ok(JournalWriter {
                    cfg: self.cfg.clone(),
                    io: None,
                    unsynced: 0,
                    fingerprint: self.fingerprint,
                    profile: self.profile,
                })
            }
        }
    }

    fn on_error(&mut self, e: stdio::Error, context: &str) -> Result<(), JournalError> {
        match self.cfg.on_io_error {
            IoErrorPolicy::Fail => Err(JournalError::Io {
                context: context.to_string(),
                source: e,
            }),
            IoErrorPolicy::Disable => {
                self.profile.io_errors += 1;
                self.io = None;
                Ok(())
            }
        }
    }

    /// Is journaling still live (not disabled by an absorbed error)?
    pub fn active(&self) -> bool {
        self.io.is_some()
    }

    fn sync_now(&mut self) -> Result<(), JournalError> {
        let Some(io) = self.io.as_mut() else {
            return Ok(());
        };
        match io.sync() {
            Ok(()) => {
                self.profile.fsyncs += 1;
                self.unsynced = 0;
                Ok(())
            }
            Err(e) => self.on_error(e, "fsyncing journal"),
        }
    }

    /// Append one record, honouring the sync policy.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        let Some(io) = self.io.as_mut() else {
            return Ok(());
        };
        let frame = rec.encode();
        if let Err(e) = io.append(&frame) {
            return self.on_error(e, "appending journal record");
        }
        self.profile.records_written += 1;
        self.profile.bytes_written += frame.len() as u64;
        self.unsynced += 1;
        match self.cfg.sync {
            SyncPolicy::EveryRecord => self.sync_now(),
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync_now()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::OnSnapshot => Ok(()),
        }
    }

    /// Append one record and force durability regardless of policy —
    /// used for the terminal `Degraded`/`Finished` markers.
    pub fn append_durable(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        self.append(rec)?;
        self.sync_now()
    }

    /// Write an atomic snapshot, record it in the journal, and sync.
    pub fn snapshot(&mut self, cp: &Checkpoint) -> Result<(), JournalError> {
        if self.io.is_none() {
            return Ok(());
        }
        let open = |p: &Path, m: IoMode| self.cfg.open(p, m);
        match cp.write_atomic(&self.cfg.dir, &open) {
            Ok((file, bytes)) => {
                self.profile.snapshots_written += 1;
                self.profile.snapshot_bytes += bytes;
                self.profile.dir_fsyncs += 1; // write_atomic fsynced the dir

                self.append(&JournalRecord::Snapshot {
                    iterations: cp.iterations,
                    file,
                })?;
                self.sync_now()
            }
            Err(e) => self.on_error(e, "writing snapshot"),
        }
    }

    /// Fingerprint this writer stamps into snapshots.
    pub fn run_fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

// --- fingerprinting -------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn str(&mut self, s: &str) {
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Fingerprint of everything the cycle's trajectory depends on: table
/// content, dictionary roles, result-affecting configuration, and plug-in
/// names. Governor knobs (`max_iterations`, `deadline`), `fallback`,
/// `audit`, `warm_start` and `risk_threads` are deliberately **excluded**:
/// they bound or observe the trajectory without changing it (partitioned
/// risk evaluation is bit-identical to sequential), so a journal written
/// by a capped, warm, audited or parallel run resumes cleanly under
/// different settings of those knobs. The batch strategy **is** included:
/// batching changes which cells each iteration touches, so a journal is
/// only replayable under the strategy that wrote it.
pub fn fingerprint(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    config: &CycleConfig,
    risk_name: &str,
    anonymizer_name: &str,
) -> u64 {
    let mut h = Fnv::new();
    h.str("vadasa-journal-v1");
    h.str(&db.name);
    h.u64(db.attributes().len() as u64);
    for a in db.attributes() {
        h.str(a);
    }
    h.u64(db.len() as u64);
    let mut cell = Vec::with_capacity(32);
    for row in db.iter_rows() {
        for v in row {
            cell.clear();
            record::put_value(&mut cell, v);
            h.bytes(&cell);
        }
    }
    if let Ok(qis) = dict.quasi_identifiers(&db.name) {
        h.u64(qis.len() as u64);
        for q in &qis {
            h.str(q);
        }
    }
    if let Ok(w) = dict.weight_attr(&db.name) {
        h.str(&w);
    }
    h.u64(config.threshold.to_bits());
    h.u64(config.tuple_order as u64);
    h.u64(config.granularity as u64);
    h.u64(config.semantics as u64);
    match config.batch {
        None => h.u64(0),
        Some(crate::cycle::BatchStrategy::OneTuple) => h.u64(1),
        Some(crate::cycle::BatchStrategy::PerClass) => h.u64(2),
        Some(crate::cycle::BatchStrategy::TopN(n)) => {
            h.u64(3);
            h.u64(n as u64);
        }
    }
    h.str(risk_name);
    h.str(anonymizer_name);
    h.0
}

// --- recovery -------------------------------------------------------------

/// The state [`recover`] hands back to the cycle: everything needed to
/// continue from the last committed iteration boundary.
pub struct Recovery {
    /// The working table, replayed up to the recovery horizon.
    pub db: MicrodataDb,
    /// Audit trail rebuilt from every committed action record.
    pub audit: AuditLog,
    /// Rows the anonymizer had exhausted.
    pub exhausted: HashSet<usize>,
    /// Completed iterations at the horizon.
    pub iterations: usize,
    /// Labelled nulls injected so far.
    pub nulls_injected: usize,
    /// Global recodings applied so far.
    pub recodings: usize,
    /// Tuples at risk before the first iteration (0 when the crash
    /// predated the first commit; the cycle then recomputes it).
    pub initial_risky: usize,
    /// Recovery-side counters, folded into the resumed run's profile.
    pub profile: JournalProfile,
    /// Byte offset the writer should append from; `0` means the header
    /// itself was torn and the file must be rewritten.
    pub append_offset: u64,
}

/// Scan, validate, truncate and replay a journal directory.
///
/// Never panics on hostile input: an alien or mismatched file is a
/// structured [`JournalError`]; a torn tail (the normal crash outcome)
/// is truncated and recovery proceeds from the last committed boundary.
pub fn recover(
    cfg: &JournalConfig,
    original: &MicrodataDb,
    threshold: f64,
    expected_fingerprint: u64,
) -> Result<Recovery, JournalError> {
    let path = cfg.journal_path();
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == stdio::ErrorKind::NotFound => {
            return Err(JournalError::Missing(path));
        }
        Err(e) => {
            return Err(JournalError::Io {
                context: "reading journal".to_string(),
                source: e,
            })
        }
    };
    let mut profile = JournalProfile::default();

    // Header. A file shorter than the magic that is a *prefix* of the
    // magic is a crash during creation: restart from scratch. Anything
    // else under this name is not ours to touch.
    if bytes.len() < MAGIC.len() {
        if bytes.as_slice() == &MAGIC[..bytes.len()] {
            profile.truncated_bytes = bytes.len() as u64;
            return Ok(fresh_recovery(original, profile));
        }
        return Err(JournalError::Mismatch(
            "file is not a vadasa journal".to_string(),
        ));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::Mismatch(
            "file is not a vadasa journal (bad magic)".to_string(),
        ));
    }

    // Scan frames until the first tear. Offsets are tracked so the
    // journal can be truncated exactly at the last committed boundary.
    let mut records: Vec<(JournalRecord, usize)> = Vec::new();
    let mut offset = MAGIC.len();
    while offset < bytes.len() {
        match record::decode_frame(&bytes, offset) {
            Ok((rec, next)) => {
                records.push((rec, next));
                offset = next;
            }
            Err(_) => break, // torn tail: everything from `offset` is dropped
        }
    }

    // The first record must be a Begin that matches this run.
    let Some((
        JournalRecord::Begin {
            version,
            fingerprint: fp,
            rows,
            ..
        },
        _,
    )) = records.first()
    else {
        // no complete Begin: the crash predated the header sync
        profile.truncated_bytes = bytes.len() as u64;
        return Ok(fresh_recovery(original, profile));
    };
    if *version != record::FORMAT_VERSION {
        return Err(JournalError::Mismatch(format!(
            "journal format version {version}, this build reads {}",
            record::FORMAT_VERSION
        )));
    }
    if *fp != expected_fingerprint {
        return Err(JournalError::Mismatch(
            "fingerprint differs: table, dictionary, configuration or plug-ins changed".to_string(),
        ));
    }
    if *rows != original.len() as u64 {
        return Err(JournalError::Mismatch(format!(
            "journal covers {rows} rows, table has {}",
            original.len()
        )));
    }

    // Recovery horizon: the last Commit decides which actions are
    // replayable; Begin/Commit/Snapshot records advance the keep-offset,
    // while Action records after the last commit (a partial iteration)
    // and Degraded/Finished markers (the resumed run re-decides its own
    // ending) are truncated away and re-derived.
    let mut committed: u64 = 0;
    let mut counters = (0u64, 0u64, 0u64, 0u64); // nulls, recodings, initial_risky, exhausted
    let mut keep_offset = records[0].1;
    let mut snapshots: Vec<(u64, String)> = Vec::new();
    for (rec, end) in &records[1..] {
        match rec {
            JournalRecord::Commit {
                iterations,
                nulls_injected,
                recodings,
                initial_risky,
                exhausted,
            } => {
                committed = *iterations;
                counters = (*nulls_injected, *recodings, *initial_risky, *exhausted);
                keep_offset = *end;
            }
            JournalRecord::Snapshot { iterations, file } => {
                if *iterations <= committed {
                    snapshots.push((*iterations, file.clone()));
                    keep_offset = *end;
                }
            }
            // Progress samples ride just ahead of their Commit; keeping
            // the offset at the Commit boundary keeps them in the kept
            // region without making them a boundary of their own.
            JournalRecord::Action { .. }
            | JournalRecord::Progress { .. }
            | JournalRecord::Degraded { .. }
            | JournalRecord::Finished { .. }
            | JournalRecord::Begin { .. } => {}
        }
    }
    profile.truncated_bytes = (bytes.len() - keep_offset) as u64;

    // Newest structurally valid snapshot wins; older ones and finally
    // the original table are the fallbacks.
    let mut base_iter: u64 = 0;
    let mut db = original.clone();
    let mut base_exhausted: HashSet<usize> = HashSet::new();
    snapshots.sort_by_key(|s| std::cmp::Reverse(s.0));
    for (iters, file) in &snapshots {
        match Checkpoint::read(&cfg.dir.join(file)) {
            Ok(cp) if cp.fingerprint == expected_fingerprint && cp.iterations == *iters => {
                base_iter = cp.iterations;
                base_exhausted = cp.exhausted.iter().copied().collect();
                db = cp.db;
                break;
            }
            _ => continue, // corrupt / mismatched snapshot: try an older one
        }
    }

    // Replay committed actions. Actions at or past the snapshot's
    // iteration mutate the table; *all* committed actions rebuild the
    // audit trail and the exhausted set.
    let mut audit = AuditLog::default();
    let mut exhausted = base_exhausted;
    for (rec, _) in &records[1..] {
        let JournalRecord::Action {
            iteration,
            row,
            risk_bits,
            measure,
            action,
        } = rec
        else {
            continue;
        };
        if *iteration >= committed {
            profile.discarded_actions += 1;
            continue;
        }
        if *iteration >= base_iter {
            apply_action(&mut db, action)?;
            profile.replayed_actions += 1;
            if let crate::anonymize::AnonymizationAction::Exhausted { row } = action {
                exhausted.insert(*row);
            }
        }
        audit.record(Decision {
            iteration: *iteration as usize,
            row: *row as usize,
            measure: measure.clone(),
            risk: f64::from_bits(*risk_bits),
            threshold,
            action: action.clone(),
        });
    }

    // Drop the uncommitted tail on disk so the writer appends at a
    // well-formed boundary.
    if keep_offset < bytes.len() {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| JournalError::Io {
                context: "opening journal for truncation".to_string(),
                source: e,
            })?;
        file.set_len(keep_offset as u64)
            .map_err(|e| JournalError::Io {
                context: "truncating journal tail".to_string(),
                source: e,
            })?;
        file.sync_all().map_err(|e| JournalError::Io {
            context: "syncing truncated journal".to_string(),
            source: e,
        })?;
    }

    Ok(Recovery {
        db,
        audit,
        exhausted,
        iterations: committed as usize,
        nulls_injected: counters.0 as usize,
        recodings: counters.1 as usize,
        initial_risky: counters.2 as usize,
        profile,
        append_offset: keep_offset as u64,
    })
}

fn fresh_recovery(original: &MicrodataDb, profile: JournalProfile) -> Recovery {
    Recovery {
        db: original.clone(),
        audit: AuditLog::default(),
        exhausted: HashSet::new(),
        iterations: 0,
        nulls_injected: 0,
        recodings: 0,
        initial_risky: 0,
        profile,
        append_offset: 0,
    }
}

/// Re-apply one journaled action to the working table. Deterministic:
/// `Suppress` mints the next labelled null (the counter was restored by
/// the snapshot or advances identically from the original table), and
/// `Recode` rewrites every cell equal to `from` — exactly what the live
/// anonymizer did.
fn apply_action(
    db: &mut MicrodataDb,
    action: &crate::anonymize::AnonymizationAction,
) -> Result<(), JournalError> {
    use crate::anonymize::AnonymizationAction as A;
    match action {
        A::Suppress { row, attr, .. } => {
            let null = db.fresh_null();
            db.set_value(*row, attr, null).map_err(|e| {
                JournalError::Mismatch(format!("replaying suppression of row {row}: {e}"))
            })
        }
        A::Recode { attr, from, to, .. } => {
            for r in 0..db.len() {
                let matches = db
                    .value(r, attr)
                    .map(|v| v == from)
                    .map_err(|e| JournalError::Mismatch(format!("replaying recode: {e}")))?;
                if matches {
                    db.set_value(r, attr, to.clone()).map_err(|e| {
                        JournalError::Mismatch(format!("replaying recode of row {r}: {e}"))
                    })?;
                }
            }
            Ok(())
        }
        A::Exhausted { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::Value;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vadasa-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_db() -> MicrodataDb {
        let mut db = MicrodataDb::new("t", ["Id", "Area"]).unwrap();
        db.push_row(vec![Value::Int(1), Value::str("North")])
            .unwrap();
        db.push_row(vec![Value::Int(2), Value::str("South")])
            .unwrap();
        db
    }

    fn begin_for(db: &MicrodataDb, fp: u64) -> JournalRecord {
        JournalRecord::Begin {
            version: record::FORMAT_VERSION,
            fingerprint: fp,
            measure: "m".into(),
            anonymizer: "a".into(),
            rows: db.len() as u64,
        }
    }

    #[test]
    fn create_refuses_existing_journal() {
        let dir = tmp_dir("exists");
        let cfg = JournalConfig::new(&dir);
        let db = tiny_db();
        let b = begin_for(&db, 7);
        let _w = JournalWriter::create(&cfg, &b, 7).unwrap();
        match JournalWriter::create(&cfg, &b, 7) {
            Err(JournalError::AlreadyExists(_)) => {}
            Err(other) => panic!("expected AlreadyExists, got {other:?}"),
            Ok(_) => panic!("expected AlreadyExists, got a writer"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_alien_journals_are_structured_errors() {
        let dir = tmp_dir("alien");
        let cfg = JournalConfig::new(&dir);
        let db = tiny_db();
        assert!(matches!(
            recover(&cfg, &db, 0.5, 7),
            Err(JournalError::Missing(_))
        ));
        std::fs::write(cfg.journal_path(), b"totally not a journal").unwrap();
        assert!(matches!(
            recover(&cfg, &db, 0.5, 7),
            Err(JournalError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_recovers_fresh() {
        let dir = tmp_dir("torn-header");
        let cfg = JournalConfig::new(&dir);
        let db = tiny_db();
        std::fs::write(cfg.journal_path(), &MAGIC[..5]).unwrap();
        let rec = recover(&cfg, &db, 0.5, 7).unwrap();
        assert_eq!(rec.iterations, 0);
        assert_eq!(rec.append_offset, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let dir = tmp_dir("fp");
        let cfg = JournalConfig::new(&dir);
        let db = tiny_db();
        let _w = JournalWriter::create(&cfg, &begin_for(&db, 1), 1).unwrap();
        assert!(matches!(
            recover(&cfg, &db, 0.5, 2),
            Err(JournalError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_suppression_replays_and_pending_is_discarded() {
        let dir = tmp_dir("replay");
        let cfg = JournalConfig::new(&dir);
        let db = tiny_db();
        let mut w = JournalWriter::create(&cfg, &begin_for(&db, 9), 9).unwrap();
        let suppress = |row: u64| JournalRecord::Action {
            iteration: if row == 0 { 0 } else { 1 },
            row,
            risk_bits: 1.0f64.to_bits(),
            measure: "m".into(),
            action: crate::anonymize::AnonymizationAction::Suppress {
                row: row as usize,
                attr: "Area".into(),
                previous: Value::str("x"),
            },
        };
        w.append(&suppress(0)).unwrap();
        w.append(&JournalRecord::Commit {
            iterations: 1,
            nulls_injected: 1,
            recodings: 0,
            initial_risky: 2,
            exhausted: 0,
        })
        .unwrap();
        // a pending action of iteration 1, never committed
        w.append(&suppress(1)).unwrap();
        drop(w);

        let before = std::fs::metadata(cfg.journal_path()).unwrap().len();
        let rec = recover(&cfg, &db, 0.5, 9).unwrap();
        assert_eq!(rec.iterations, 1);
        assert_eq!(rec.nulls_injected, 1);
        assert_eq!(rec.initial_risky, 2);
        assert_eq!(rec.profile.replayed_actions, 1);
        assert_eq!(rec.profile.discarded_actions, 1);
        assert!(rec.profile.truncated_bytes > 0);
        // row 0 suppressed with the first fresh null; row 1 untouched
        assert!(rec.db.value(0, "Area").unwrap().is_null());
        assert_eq!(rec.db.value(1, "Area").unwrap(), &Value::str("South"));
        assert_eq!(rec.audit.decisions.len(), 1);
        let after = std::fs::metadata(cfg.journal_path()).unwrap().len();
        assert!(after < before, "uncommitted tail must be truncated");
        assert_eq!(after, rec.append_offset);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_n_sync_policy_counts_fsyncs() {
        let dir = tmp_dir("every-n");
        let mut cfg = JournalConfig::new(&dir);
        cfg.sync = SyncPolicy::EveryN(3);
        let db = tiny_db();
        let mut w = JournalWriter::create(&cfg, &begin_for(&db, 3), 3).unwrap();
        let base = w.profile.fsyncs;
        for i in 0..7u64 {
            w.append(&JournalRecord::Commit {
                iterations: i + 1,
                nulls_injected: 0,
                recodings: 0,
                initial_risky: 0,
                exhausted: 0,
            })
            .unwrap();
        }
        // 7 records at every-3 → 2 syncs
        assert_eq!(w.profile.fsyncs - base, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
