//! Binary record format of the write-ahead action journal.
//!
//! A journal file is the 8-byte magic [`MAGIC`] followed by a sequence of
//! *frames*. Each frame is
//!
//! ```text
//! [payload length: u32 LE] [CRC-32 (IEEE) of payload: u32 LE] [payload]
//! ```
//!
//! and each payload is a tag byte plus the record's fields in a fixed
//! little-endian layout (see [`JournalRecord::encode`]). The decoder is
//! **total**: every length is bounds-checked against the remaining bytes
//! and every tag is matched exhaustively, so arbitrary byte soup decodes
//! to a structured [`DecodeError`], never a panic. Recovery treats the
//! first undecodable frame as the torn tail of a crashed writer and
//! truncates there.

use crate::anonymize::AnonymizationAction;
use std::fmt;
use vadalog::Value;

/// File magic identifying a Vada-SA action journal, version 1 framing.
pub const MAGIC: &[u8; 8] = b"VADASAJ1";

/// Record-format version carried in the [`JournalRecord::Begin`] record.
/// Version 2 added the [`JournalRecord::Progress`] record.
pub const FORMAT_VERSION: u32 = 2;

/// One record of the action journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// First record of every journal: identifies the run it belongs to.
    Begin {
        /// Record-format version ([`FORMAT_VERSION`]).
        version: u32,
        /// Fingerprint of (input table, dictionary roles, cycle
        /// semantics, plug-in names) — see
        /// [`fingerprint`](crate::journal::fingerprint).
        fingerprint: u64,
        /// Name of the risk measure driving the run.
        measure: String,
        /// Name of the anonymizer driving the run.
        anonymizer: String,
        /// Rows in the input table (a cheap cross-check).
        rows: u64,
    },
    /// One committed anonymization action.
    Action {
        /// 0-based cycle iteration the action belongs to.
        iteration: u64,
        /// The violating tuple the decision targeted.
        row: u64,
        /// Bit pattern of the tuple's risk when the decision was taken.
        risk_bits: u64,
        /// The measure that produced the violating score.
        measure: String,
        /// The action applied.
        action: AnonymizationAction,
    },
    /// Iteration boundary: everything up to here is replayable.
    Commit {
        /// Completed iterations after this commit (1-based count).
        iterations: u64,
        /// Running total of labelled nulls injected.
        nulls_injected: u64,
        /// Running total of global recodings.
        recodings: u64,
        /// Tuples violating the threshold before the first step.
        initial_risky: u64,
        /// Tuples the anonymizer has given up on so far.
        exhausted: u64,
    },
    /// A snapshot file covering the state after `iterations` completed
    /// iterations was durably written.
    Snapshot {
        /// Completed iterations the snapshot covers.
        iterations: u64,
        /// Snapshot file name, relative to the journal directory.
        file: String,
    },
    /// The run degraded (cap / deadline / cancel / plug-in panic).
    /// Everything after this marker is *not* replayed: resume re-runs the
    /// loop from the last commit toward convergence instead.
    Degraded {
        /// Rendered degradation trigger, for the log reader.
        trigger: String,
    },
    /// The run finished.
    Finished {
        /// `true` when the cycle converged (risk ≤ T everywhere).
        converged: bool,
    },
    /// Convergence trajectory sample, written just before each `Commit`:
    /// how many tuples still violated the threshold when the iteration
    /// started. External monitors (`vadasa_status`) fit this series via
    /// [`crate::progress`] to estimate remaining iterations; recovery
    /// ignores it.
    Progress {
        /// 0-based iteration the sample belongs to.
        iteration: u64,
        /// Tuples above the risk threshold at the start of the iteration.
        rows_at_risk: u64,
    },
}

/// Why a frame or payload could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the frame header or a field required.
    Truncated,
    /// The payload CRC did not match the frame header.
    BadChecksum,
    /// An unknown record, action or value tag was read.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

// --- CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ---

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used by the journal frame headers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- encoding helpers ---

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append the binary encoding of one [`Value`] to `out`. Public within
/// the journal module family because the run fingerprint hashes cell
/// values through the same encoding.
pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            out.push(0);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Null(n) => {
            out.push(4);
            put_u64(out, *n);
        }
        Value::Set(items) => {
            out.push(5);
            put_u32(out, items.len() as u32);
            for item in items.iter() {
                put_value(out, item);
            }
        }
        Value::Tuple(items) => {
            out.push(6);
            put_u32(out, items.len() as u32);
            for item in items.iter() {
                put_value(out, item);
            }
        }
    }
}

fn put_action(out: &mut Vec<u8>, action: &AnonymizationAction) {
    match action {
        AnonymizationAction::Suppress {
            row,
            attr,
            previous,
        } => {
            out.push(0);
            put_u64(out, *row as u64);
            put_str(out, attr);
            put_value(out, previous);
        }
        AnonymizationAction::Recode {
            attr,
            from,
            to,
            rows_affected,
        } => {
            out.push(1);
            put_str(out, attr);
            put_value(out, from);
            put_value(out, to);
            put_u64(out, *rows_affected as u64);
        }
        AnonymizationAction::Exhausted { row } => {
            out.push(2);
            put_u64(out, *row as u64);
        }
    }
}

// --- decoding helpers: a bounds-checked cursor over a byte slice ---

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.u8()? {
            0 => Ok(Value::Bool(self.u8()? != 0)),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::str(self.string()?)),
            4 => Ok(Value::Null(self.u64()?)),
            5 => {
                let n = self.u32()? as usize;
                // each element is at least 2 bytes; reject absurd counts
                // before allocating
                if n > self.bytes.len().saturating_sub(self.pos) {
                    return Err(DecodeError::Truncated);
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::set(items))
            }
            6 => {
                let n = self.u32()? as usize;
                if n > self.bytes.len().saturating_sub(self.pos) {
                    return Err(DecodeError::Truncated);
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::Tuple(std::sync::Arc::new(items)))
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }

    fn action(&mut self) -> Result<AnonymizationAction, DecodeError> {
        match self.u8()? {
            0 => Ok(AnonymizationAction::Suppress {
                row: self.u64()? as usize,
                attr: self.string()?,
                previous: self.value()?,
            }),
            1 => Ok(AnonymizationAction::Recode {
                attr: self.string()?,
                from: self.value()?,
                to: self.value()?,
                rows_affected: self.u64()? as usize,
            }),
            2 => Ok(AnonymizationAction::Exhausted {
                row: self.u64()? as usize,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl JournalRecord {
    /// Encode the record as one framed journal entry (length + CRC +
    /// payload), ready to append to the journal file.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        match self {
            JournalRecord::Begin {
                version,
                fingerprint,
                measure,
                anonymizer,
                rows,
            } => {
                payload.push(0);
                put_u32(&mut payload, *version);
                put_u64(&mut payload, *fingerprint);
                put_str(&mut payload, measure);
                put_str(&mut payload, anonymizer);
                put_u64(&mut payload, *rows);
            }
            JournalRecord::Action {
                iteration,
                row,
                risk_bits,
                measure,
                action,
            } => {
                payload.push(1);
                put_u64(&mut payload, *iteration);
                put_u64(&mut payload, *row);
                put_u64(&mut payload, *risk_bits);
                put_str(&mut payload, measure);
                put_action(&mut payload, action);
            }
            JournalRecord::Commit {
                iterations,
                nulls_injected,
                recodings,
                initial_risky,
                exhausted,
            } => {
                payload.push(2);
                put_u64(&mut payload, *iterations);
                put_u64(&mut payload, *nulls_injected);
                put_u64(&mut payload, *recodings);
                put_u64(&mut payload, *initial_risky);
                put_u64(&mut payload, *exhausted);
            }
            JournalRecord::Snapshot { iterations, file } => {
                payload.push(3);
                put_u64(&mut payload, *iterations);
                put_str(&mut payload, file);
            }
            JournalRecord::Degraded { trigger } => {
                payload.push(4);
                put_str(&mut payload, trigger);
            }
            JournalRecord::Finished { converged } => {
                payload.push(5);
                payload.push(u8::from(*converged));
            }
            JournalRecord::Progress {
                iteration,
                rows_at_risk,
            } => {
                payload.push(6);
                put_u64(&mut payload, *iteration);
                put_u64(&mut payload, *rows_at_risk);
            }
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode one payload (the bytes *after* the frame header, whose CRC
    /// has already been verified).
    fn decode_payload(payload: &[u8]) -> Result<JournalRecord, DecodeError> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            0 => JournalRecord::Begin {
                version: c.u32()?,
                fingerprint: c.u64()?,
                measure: c.string()?,
                anonymizer: c.string()?,
                rows: c.u64()?,
            },
            1 => JournalRecord::Action {
                iteration: c.u64()?,
                row: c.u64()?,
                risk_bits: c.u64()?,
                measure: c.string()?,
                action: c.action()?,
            },
            2 => JournalRecord::Commit {
                iterations: c.u64()?,
                nulls_injected: c.u64()?,
                recodings: c.u64()?,
                initial_risky: c.u64()?,
                exhausted: c.u64()?,
            },
            3 => JournalRecord::Snapshot {
                iterations: c.u64()?,
                file: c.string()?,
            },
            4 => JournalRecord::Degraded {
                trigger: c.string()?,
            },
            5 => JournalRecord::Finished {
                converged: c.u8()? != 0,
            },
            6 => JournalRecord::Progress {
                iteration: c.u64()?,
                rows_at_risk: c.u64()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        if !c.done() {
            // trailing bytes inside a checksummed payload: not something a
            // torn write produces, but reject it as corrupt all the same
            return Err(DecodeError::Truncated);
        }
        Ok(rec)
    }
}

/// Decode the next frame starting at `bytes[offset..]`. Returns the
/// record and the offset just past it, or the error that makes
/// `offset` the truncation point.
pub fn decode_frame(bytes: &[u8], offset: usize) -> Result<(JournalRecord, usize), DecodeError> {
    let mut c = Cursor::new(&bytes[offset.min(bytes.len())..]);
    let len = c.u32()? as usize;
    let crc = c.u32()?;
    let payload = c.take(len)?;
    if crc32(payload) != crc {
        return Err(DecodeError::BadChecksum);
    }
    let rec = JournalRecord::decode_payload(payload)?;
    Ok((rec, offset + 8 + len))
}

/// Scan a journal byte buffer (starting after the magic) and return the
/// end offset of every well-formed frame, in order. Scanning stops at the
/// first torn or corrupt frame. Exposed so the crash-matrix tests can
/// enumerate every record boundary as a kill point.
pub fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut offset = MAGIC.len();
    if bytes.len() < offset || &bytes[..offset] != MAGIC {
        return out;
    }
    while offset < bytes.len() {
        match decode_frame(bytes, offset) {
            Ok((_, next)) => {
                out.push(next);
                offset = next;
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Begin {
                version: FORMAT_VERSION,
                fingerprint: 0xDEAD_BEEF_F00D_CAFE,
                measure: "k-anonymity".into(),
                anonymizer: "local-suppression".into(),
                rows: 7,
            },
            JournalRecord::Action {
                iteration: 3,
                row: 5,
                risk_bits: 1.0f64.to_bits(),
                measure: "k-anonymity".into(),
                action: AnonymizationAction::Suppress {
                    row: 5,
                    attr: "Sector".into(),
                    previous: Value::str("Textiles"),
                },
            },
            JournalRecord::Action {
                iteration: 4,
                row: 1,
                risk_bits: 0.75f64.to_bits(),
                measure: "re-identification".into(),
                action: AnonymizationAction::Recode {
                    attr: "Area".into(),
                    from: Value::str("Milano"),
                    to: Value::str("North"),
                    rows_affected: 2,
                },
            },
            JournalRecord::Action {
                iteration: 4,
                row: 2,
                risk_bits: 0.5f64.to_bits(),
                measure: "suda".into(),
                action: AnonymizationAction::Exhausted { row: 2 },
            },
            JournalRecord::Commit {
                iterations: 5,
                nulls_injected: 3,
                recodings: 1,
                initial_risky: 4,
                exhausted: 1,
            },
            JournalRecord::Snapshot {
                iterations: 4,
                file: "snapshot-4.vsnap".into(),
            },
            JournalRecord::Degraded {
                trigger: "deadline expired".into(),
            },
            JournalRecord::Finished { converged: true },
            JournalRecord::Progress {
                iteration: 4,
                rows_at_risk: 2,
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for rec in samples() {
            let frame = rec.encode();
            let (back, next) = decode_frame(&frame, 0).unwrap();
            assert_eq!(back, rec);
            assert_eq!(next, frame.len());
        }
    }

    #[test]
    fn every_value_kind_roundtrips() {
        let values = vec![
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::str("héllo ⊥ world"),
            Value::Null(9),
            Value::set([Value::Int(1), Value::str("x")]),
            Value::pair(Value::Int(1), Value::Null(2)),
        ];
        for v in values {
            let rec = JournalRecord::Action {
                iteration: 0,
                row: 0,
                risk_bits: 0,
                measure: "m".into(),
                action: AnonymizationAction::Suppress {
                    row: 0,
                    attr: "a".into(),
                    previous: v.clone(),
                },
            };
            let (back, _) = decode_frame(&rec.encode(), 0).unwrap();
            let JournalRecord::Action {
                action: AnonymizationAction::Suppress { previous, .. },
                ..
            } = back
            else {
                panic!("wrong record kind");
            };
            // bit-identical for floats: compare via total order
            assert_eq!(previous.cmp(&v), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn crc_matches_known_vector() {
        // the classic IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn truncation_and_corruption_are_errors_not_panics() {
        let frame = samples()[1].encode();
        // every prefix fails cleanly
        for k in 0..frame.len() {
            assert!(decode_frame(&frame[..k], 0).is_err(), "prefix {k}");
        }
        // every single-byte flip is caught by the CRC (or the header)
        for k in 0..frame.len() {
            let mut bad = frame.clone();
            bad[k] ^= 0xFF;
            assert!(decode_frame(&bad, 0).is_err(), "flip at {k}");
        }
    }

    #[test]
    fn byte_soup_never_panics() {
        let mut x = 0x12345678u64;
        for len in 0..200usize {
            let soup: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            let _ = decode_frame(&soup, 0);
            let _ = frame_boundaries(&soup);
        }
    }

    #[test]
    fn boundaries_enumerate_records_and_stop_at_tear() {
        let mut bytes = MAGIC.to_vec();
        let recs = samples();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        let bounds = frame_boundaries(&bytes);
        assert_eq!(bounds.len(), recs.len());
        assert_eq!(*bounds.last().unwrap(), bytes.len());
        // tear the last record in half: it must vanish from the scan
        let torn = &bytes[..bytes.len() - 3];
        assert_eq!(frame_boundaries(torn).len(), recs.len() - 1);
    }
}
