//! # vadasa-core — reasoning-based statistical disclosure control
//!
//! A from-scratch Rust reproduction of **Vada-SA** (*Financial Data
//! Exchange with Statistical Confidentiality: A Reasoning-based Approach*,
//! Bellomarini, Blasi, Laurendi, Sallinger — EDBT 2021): the statistical
//! disclosure control (SDC) framework operated at the Bank of Italy's
//! Research Data Center.
//!
//! The crate provides the paper's full pipeline:
//!
//! 1. **Metadata dictionary** ([`dictionary`]) — microdata DBs and their
//!    attributes, categorized as identifier / quasi-identifier /
//!    non-identifying / weight; the key to schema independence.
//! 2. **Attribute categorization** ([`categorize`]) — Algorithm 1: borrow
//!    categories from an experience base via pluggable similarities, with
//!    recursive feedback and EGD-style conflict detection.
//! 3. **Risk measures** ([`risk`]) — Algorithms 3–6: re-identification
//!    risk, k-anonymity, Benedetti–Franconi individual risk, and SUDA
//!    (minimal sample uniques).
//! 4. **Anonymization** ([`anonymize`]) — Algorithms 7–8: local
//!    suppression with labelled nulls and global recoding over domain
//!    hierarchies, compared under the **maybe-match** null semantics
//!    ([`maybe_match`]).
//! 5. **The anonymization cycle** ([`cycle`]) — Algorithm 2: iterate risk
//!    evaluation and minimal anonymization steps until the threshold `T`
//!    holds, guided by runtime heuristics (§4.4) and fully audited
//!    ([`explain`]).
//! 6. **Business knowledge** ([`business`]) — Algorithm 9: company-control
//!    closure over ownership graphs and cluster-level risk propagation
//!    `1 − ∏(1 − ρ)`.
//! 7. **Declarative encodings** ([`programs`]) — the paper's rule listings
//!    as runnable programs for the [`vadalog`] engine, equivalence-tested
//!    against the native implementations.
//!
//! ## Quick start
//!
//! ```
//! use vadasa_core::prelude::*;
//! use vadalog::Value;
//!
//! // a tiny microdata DB
//! let mut db = MicrodataDb::new("survey", ["id", "area", "sector", "w"]).unwrap();
//! db.push_row(vec![Value::Int(1), Value::str("North"), Value::str("Textiles"), Value::Int(60)]).unwrap();
//! db.push_row(vec![Value::Int(2), Value::str("North"), Value::str("Commerce"), Value::Int(90)]).unwrap();
//! db.push_row(vec![Value::Int(3), Value::str("North"), Value::str("Commerce"), Value::Int(90)]).unwrap();
//!
//! // categorize attributes
//! let mut dict = MetadataDictionary::new();
//! for a in ["id", "area", "sector", "w"] { dict.register_attr("survey", a, ""); }
//! dict.set_category("survey", "id", Category::Identifier).unwrap();
//! dict.set_category("survey", "area", Category::QuasiIdentifier).unwrap();
//! dict.set_category("survey", "sector", Category::QuasiIdentifier).unwrap();
//! dict.set_category("survey", "w", Category::Weight).unwrap();
//!
//! // anonymize to 2-anonymity with local suppression
//! let risk = KAnonymity::new(2);
//! let anonymizer = LocalSuppression::default();
//! let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
//! let outcome = cycle.run(&db, &dict).unwrap();
//! assert_eq!(outcome.final_risky, 0);
//! ```

#![warn(missing_docs)]

pub mod anonymize;
pub mod business;
pub mod categorize;
pub mod checkpoint;
pub mod colstore;
pub mod columnar;
pub mod cycle;
pub mod degrade;
pub mod dictionary;
pub mod explain;
pub mod faults;
pub mod io;
pub mod journal;
pub mod maybe_match;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod programs;
pub mod progress;
pub mod report;
pub mod risk;
pub mod weights;

/// The telemetry substrate (re-exported): collectors, spans, counters.
pub use vadasa_obs as obs;

/// Convenient glob import of the most-used types.
pub mod prelude {
    pub use crate::anonymize::{
        AnonymizationAction, Anonymizer, AttributeOrder, DomainHierarchy, GlobalRecoding,
        HybridAnonymizer, LocalSuppression,
    };
    pub use crate::business::{ClusterMap, ClusterRisk, OwnershipGraph};
    pub use crate::categorize::{Categorizer, ExperienceBase};
    pub use crate::cycle::{
        AnonymizationCycle, BatchStrategy, CycleConfig, CycleOutcome, CycleProfile,
        CycleTermination, IterationRecord, StepGranularity, StorageOptions, TupleOrder,
        WarmCycleProfile,
    };
    pub use crate::degrade::{
        suppress_all_risky, DegradeSummary, DegradeTrigger, FallbackPolicy, FallbackRecord,
    };
    pub use crate::dictionary::{Category, MetadataDictionary};
    pub use crate::explain::{AuditLog, Decision};
    pub use crate::journal::{
        IoErrorPolicy, JournalConfig, JournalError, JournalProfile, SyncPolicy,
    };
    pub use crate::maybe_match::NullSemantics;
    pub use crate::model::MicrodataDb;
    pub use crate::progress::ProgressEstimate;
    pub use crate::risk::{
        IndividualRisk, IrEstimator, KAnonymity, LDiversity, MicrodataView, PresenceRisk,
        ReIdentification, RiskMeasure, RiskReport, Suda, TCloseness,
    };
}
