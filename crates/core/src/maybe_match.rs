//! Null-tolerant equality and equivalence-group statistics (paper §4.3).
//!
//! After local suppression a quasi-identifier cell may hold a labelled null
//! `⊥`. Vada-SA forms risk-aggregation groups with the **maybe-match**
//! relation `=⊥`:
//!
//! > `q =⊥ q′` holds iff (i) `q` and `q′` are the same constant, or
//! > (ii) either side is a labelled null.
//!
//! Tuples with nulls therefore belong to *several* overlapping groups —
//! groups no longer partition the table — which is exactly how a single
//! suppression raises the frequency of every tuple it may match (Figure 5:
//! suppressing `Textiles` lifts tuple 1's frequency from 1 to 5 and tuples
//! 2–5 from 2 to 3).
//!
//! The alternative **standard** semantics (Skolem-chase style: two nulls
//! are equal iff they carry the same label) is also provided; experiment
//! 7c contrasts the two.

use std::collections::HashMap;
use vadalog::Value;

/// How labelled nulls compare during group formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NullSemantics {
    /// Paper semantics: a null matches anything (`maybe-match`).
    #[default]
    MaybeMatch,
    /// Skolem-chase semantics: nulls equal only their own label.
    Standard,
}

/// Do two cell values match under the chosen semantics?
pub fn values_match(a: &Value, b: &Value, sem: NullSemantics) -> bool {
    match sem {
        NullSemantics::Standard => a == b,
        NullSemantics::MaybeMatch => a.is_null() || b.is_null() || a == b,
    }
}

/// Do two projected rows match position-wise?
pub fn rows_match(a: &[Value], b: &[Value], sem: NullSemantics) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| values_match(x, y, sem))
}

/// Per-row equivalence-group statistics over a set of projected columns.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// `count[t]` = number of rows matching row `t` (including itself).
    pub count: Vec<usize>,
    /// `weight_sum[t]` = sum of weights of rows matching row `t`
    /// (equals `count` when no weights are supplied).
    pub weight_sum: Vec<f64>,
}

impl GroupStats {
    /// Incrementally repair the statistics after a single row changed in
    /// place (a suppression writing `⊥` into a cell, or a recode rewriting
    /// one value). `rows` must already hold the *new* contents; `old_row`
    /// is the row's previous contents.
    ///
    /// Only rows whose match status against the changed row flipped are
    /// adjusted (`±1` count, `±w` weight), then the changed row's own
    /// statistics are recomputed by a full scan — `O(n)` per patched row
    /// instead of the `O(n)`–`O(n²)` full [`group_stats`] pass.
    ///
    /// Exactness caveat: weight sums are accumulated in a different order
    /// than a cold [`group_stats`] pass, so bit-identical results are only
    /// guaranteed when every weight is an integer-valued `f64` below
    /// `2^53` (integer addition in doubles is exact and order-free).
    /// Callers that need warm ≡ cold equivalence must gate on
    /// [`weights_exactly_summable`].
    pub fn apply_row_change(
        &mut self,
        rows: &[Vec<Value>],
        weights: Option<&[f64]>,
        sem: NullSemantics,
        row: usize,
        old_row: &[Value],
    ) {
        let w = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);
        let w_row = w(row);
        for (j, other) in rows.iter().enumerate() {
            if j == row {
                continue;
            }
            let was = rows_match(old_row, other, sem);
            let now = rows_match(&rows[row], other, sem);
            if was == now {
                continue;
            }
            if now {
                self.count[j] += 1;
                self.weight_sum[j] += w_row;
            } else {
                self.count[j] -= 1;
                self.weight_sum[j] -= w_row;
            }
        }
        // The changed row's own group may have been reshaped arbitrarily:
        // recompute it from scratch.
        let mut c = 0usize;
        let mut s = 0.0f64;
        for (j, other) in rows.iter().enumerate() {
            if rows_match(&rows[row], other, sem) {
                c += 1;
                s += w(j);
            }
        }
        self.count[row] = c;
        self.weight_sum[row] = s;
    }
}

/// Are these weights exactly summable in any order? True when every weight
/// is an integer-valued `f64` with magnitude below `2^53`: integer sums in
/// that range are exact, so incremental `±w` updates produce bit-identical
/// results to a cold pass. `None` (unweighted) counts as summable.
pub fn weights_exactly_summable(weights: Option<&[f64]>) -> bool {
    match weights {
        None => true,
        Some(ws) => ws
            .iter()
            .all(|w| w.is_finite() && w.fract() == 0.0 && w.abs() < 9_007_199_254_740_992.0),
    }
}

/// Compute matching counts and weight sums for every row of `rows`
/// (each row already projected to the columns of interest).
///
/// Under [`NullSemantics::Standard`] this is plain hash grouping. Under
/// [`NullSemantics::MaybeMatch`] rows containing nulls cross-match; the
/// implementation stays near-linear by hashing the null-free rows and only
/// doing pattern lookups / pairwise comparisons for the (typically few)
/// rows that carry nulls.
pub fn group_stats(rows: &[Vec<Value>], weights: Option<&[f64]>, sem: NullSemantics) -> GroupStats {
    let n = rows.len();
    let w = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);

    if sem == NullSemantics::Standard {
        let mut agg: HashMap<&[Value], (usize, f64)> = HashMap::with_capacity(n);
        for (i, r) in rows.iter().enumerate() {
            let e = agg.entry(r.as_slice()).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += w(i);
        }
        let mut count = Vec::with_capacity(n);
        let mut weight_sum = Vec::with_capacity(n);
        for r in rows {
            let (c, s) = agg[r.as_slice()];
            count.push(c);
            weight_sum.push(s);
        }
        return GroupStats { count, weight_sum };
    }

    // --- maybe-match ---
    let has_null = |r: &[Value]| r.iter().any(Value::is_null);
    let mut complete: Vec<usize> = Vec::new();
    let mut nulled: Vec<usize> = Vec::new();
    for (i, r) in rows.iter().enumerate() {
        if has_null(r) {
            nulled.push(i);
        } else {
            complete.push(i);
        }
    }

    // Exact grouping of complete rows.
    let mut exact: HashMap<&[Value], (usize, f64)> = HashMap::with_capacity(complete.len());
    for &i in &complete {
        let e = exact.entry(rows[i].as_slice()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += w(i);
    }

    let mut count = vec![0usize; n];
    let mut weight_sum = vec![0.0f64; n];
    for &i in &complete {
        let (c, s) = exact[rows[i].as_slice()];
        count[i] = c;
        weight_sum[i] = s;
    }

    if nulled.is_empty() {
        return GroupStats { count, weight_sum };
    }

    // Group nulled rows by their null-position mask; per mask, index the
    // complete rows on the mask's constant positions.
    let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
    let mut by_mask: HashMap<u64, Vec<usize>> = HashMap::new();
    for &i in &nulled {
        let mut mask = 0u64;
        for (c, v) in rows[i].iter().enumerate() {
            if v.is_null() {
                mask |= 1 << c;
            }
        }
        by_mask.entry(mask).or_default().push(i);
    }

    for (mask, members) in &by_mask {
        let const_cols: Vec<usize> = (0..ncols).filter(|c| mask & (1 << c) == 0).collect();
        // index of complete rows on the constant positions
        let mut index: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
        for &i in &complete {
            let key: Vec<&Value> = const_cols.iter().map(|&c| &rows[i][c]).collect();
            index.entry(key).or_default().push(i);
        }
        for &i in members {
            let key: Vec<&Value> = const_cols.iter().map(|&c| &rows[i][c]).collect();
            if let Some(bucket) = index.get(&key) {
                // nulled row i matches every complete row in the bucket,
                // and vice versa.
                count[i] += bucket.len();
                for &j in bucket {
                    weight_sum[i] += w(j);
                    count[j] += 1;
                    weight_sum[j] += w(i);
                }
            }
        }
    }

    // nulled-vs-nulled (including self): pairwise over the null-carrying rows.
    for (a_pos, &i) in nulled.iter().enumerate() {
        count[i] += 1; // self
        weight_sum[i] += w(i);
        for &j in nulled.iter().skip(a_pos + 1) {
            if rows_match(&rows[i], &rows[j], NullSemantics::MaybeMatch) {
                count[i] += 1;
                weight_sum[i] += w(j);
                count[j] += 1;
                weight_sum[j] += w(i);
            }
        }
    }

    GroupStats { count, weight_sum }
}

/// Group statistics over a sub-projection: only the listed column positions
/// of each row participate in matching. Used by SUDA's per-subset scans.
///
/// When no projected cell is a labelled null the two semantics coincide
/// and a reference-keyed hash pass avoids cloning any cell — this is the
/// hot path of SUDA's `C(m, ≤k)` subset sweep.
pub fn group_stats_on(
    rows: &[Vec<Value>],
    positions: &[usize],
    weights: Option<&[f64]>,
    sem: NullSemantics,
) -> GroupStats {
    let any_null = rows
        .iter()
        .any(|r| positions.iter().any(|&p| r[p].is_null()));
    if !any_null {
        let n = rows.len();
        let w = |i: usize| weights.map(|w| w[i]).unwrap_or(1.0);
        let mut agg: HashMap<Vec<&Value>, (usize, f64)> = HashMap::with_capacity(n);
        for (i, r) in rows.iter().enumerate() {
            let key: Vec<&Value> = positions.iter().map(|&p| &r[p]).collect();
            let e = agg.entry(key).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += w(i);
        }
        let mut count = Vec::with_capacity(n);
        let mut weight_sum = Vec::with_capacity(n);
        for r in rows {
            let key: Vec<&Value> = positions.iter().map(|&p| &r[p]).collect();
            let (c, s) = agg[&key];
            count.push(c);
            weight_sum.push(s);
        }
        return GroupStats { count, weight_sum };
    }
    let projected: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| positions.iter().map(|&p| r[p].clone()).collect())
        .collect();
    group_stats(&projected, weights, sem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    fn row(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| s(v)).collect()
    }

    #[test]
    fn maybe_match_on_constants_is_equality() {
        assert!(values_match(&s("a"), &s("a"), NullSemantics::MaybeMatch));
        assert!(!values_match(&s("a"), &s("b"), NullSemantics::MaybeMatch));
    }

    #[test]
    fn maybe_match_null_matches_everything() {
        assert!(values_match(
            &Value::Null(1),
            &s("a"),
            NullSemantics::MaybeMatch
        ));
        assert!(values_match(
            &s("a"),
            &Value::Null(1),
            NullSemantics::MaybeMatch
        ));
        assert!(values_match(
            &Value::Null(1),
            &Value::Null(2),
            NullSemantics::MaybeMatch
        ));
    }

    #[test]
    fn standard_nulls_equal_only_same_label() {
        assert!(!values_match(
            &Value::Null(1),
            &s("a"),
            NullSemantics::Standard
        ));
        assert!(!values_match(
            &Value::Null(1),
            &Value::Null(2),
            NullSemantics::Standard
        ));
        assert!(values_match(
            &Value::Null(1),
            &Value::Null(1),
            NullSemantics::Standard
        ));
    }

    #[test]
    fn figure5_frequencies_before_suppression() {
        // Figure 5a: 7 rows, frequencies 1,2,2,2,2,1,1
        let rows = vec![
            row(&["Roma", "Textiles", "1000+", "0-30"]),
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Financial", "1000+", "0-30"]),
            row(&["Roma", "Financial", "1000+", "0-30"]),
            row(&["Milano", "Construction", "0-200", "60-90"]),
            row(&["Torino", "Construction", "0-200", "60-90"]),
        ];
        let gs = group_stats(&rows, None, NullSemantics::MaybeMatch);
        assert_eq!(gs.count, vec![1, 2, 2, 2, 2, 1, 1]);
    }

    #[test]
    fn figure5_frequencies_after_suppression() {
        // Figure 5b: ⊥ on tuple 1's Sector lifts it to 5 and tuples 2-5 to 3.
        let rows = vec![
            vec![s("Roma"), Value::Null(0), s("1000+"), s("0-30")],
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Financial", "1000+", "0-30"]),
            row(&["Roma", "Financial", "1000+", "0-30"]),
            row(&["Milano", "Construction", "0-200", "60-90"]),
            row(&["Torino", "Construction", "0-200", "60-90"]),
        ];
        let gs = group_stats(&rows, None, NullSemantics::MaybeMatch);
        assert_eq!(gs.count, vec![5, 3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn standard_semantics_does_not_lift_frequencies() {
        let rows = vec![
            vec![s("Roma"), Value::Null(0), s("1000+"), s("0-30")],
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Commerce", "1000+", "0-30"]),
        ];
        let gs = group_stats(&rows, None, NullSemantics::Standard);
        assert_eq!(gs.count, vec![1, 2, 2]);
    }

    #[test]
    fn weights_are_summed_within_groups() {
        let rows = vec![row(&["a"]), row(&["a"]), row(&["b"])];
        let weights = [10.0, 20.0, 5.0];
        let gs = group_stats(&rows, Some(&weights), NullSemantics::MaybeMatch);
        assert_eq!(gs.weight_sum, vec![30.0, 30.0, 5.0]);
        let gs2 = group_stats(&rows, Some(&weights), NullSemantics::Standard);
        assert_eq!(gs2.weight_sum, vec![30.0, 30.0, 5.0]);
    }

    #[test]
    fn weights_flow_across_null_matches() {
        let rows = vec![vec![Value::Null(0)], row(&["a"]), row(&["b"])];
        let weights = [1.0, 10.0, 100.0];
        let gs = group_stats(&rows, Some(&weights), NullSemantics::MaybeMatch);
        // null row matches everything
        assert_eq!(gs.count[0], 3);
        assert!((gs.weight_sum[0] - 111.0).abs() < 1e-9);
        // "a" row matches itself + null row
        assert_eq!(gs.count[1], 2);
        assert!((gs.weight_sum[1] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn two_nulled_rows_maybe_match_each_other() {
        let rows = vec![
            vec![Value::Null(0), s("x")],
            vec![Value::Null(1), s("x")],
            vec![Value::Null(2), s("y")],
        ];
        let gs = group_stats(&rows, None, NullSemantics::MaybeMatch);
        assert_eq!(gs.count, vec![2, 2, 1]);
    }

    #[test]
    fn group_stats_on_projects_positions() {
        let rows = vec![
            row(&["North", "Textiles", "big"]),
            row(&["North", "Commerce", "big"]),
        ];
        let gs = group_stats_on(&rows, &[0, 2], None, NullSemantics::MaybeMatch);
        assert_eq!(gs.count, vec![2, 2]);
        let gs = group_stats_on(&rows, &[1], None, NullSemantics::MaybeMatch);
        assert_eq!(gs.count, vec![1, 1]);
    }

    #[test]
    fn maybe_match_counts_are_never_below_standard() {
        // property spot-check on a small mixed table
        let rows = vec![
            vec![Value::Null(0), s("x")],
            vec![s("a"), s("x")],
            vec![s("a"), Value::Null(1)],
            vec![s("b"), s("y")],
            vec![s("b"), s("y")],
        ];
        let mm = group_stats(&rows, None, NullSemantics::MaybeMatch);
        let st = group_stats(&rows, None, NullSemantics::Standard);
        for (m, s2) in mm.count.iter().zip(st.count.iter()) {
            assert!(m >= s2);
        }
    }

    #[test]
    fn empty_input() {
        let gs = group_stats(&[], None, NullSemantics::MaybeMatch);
        assert!(gs.count.is_empty());
        assert!(gs.weight_sum.is_empty());
    }

    /// Apply a single-cell change through `apply_row_change` and check the
    /// patched stats equal a cold recomputation.
    fn check_patch(
        mut rows: Vec<Vec<Value>>,
        weights: Option<Vec<f64>>,
        sem: NullSemantics,
        row: usize,
        col: usize,
        new_val: Value,
    ) {
        let mut gs = group_stats(&rows, weights.as_deref(), sem);
        let old = rows[row].clone();
        rows[row][col] = new_val;
        gs.apply_row_change(&rows, weights.as_deref(), sem, row, &old);
        let cold = group_stats(&rows, weights.as_deref(), sem);
        assert_eq!(gs.count, cold.count, "counts diverged");
        assert_eq!(gs.weight_sum, cold.weight_sum, "weight sums diverged");
    }

    #[test]
    fn patch_matches_cold_for_suppression() {
        // Figure 5: suppressing tuple 1's Sector
        let rows = vec![
            row(&["Roma", "Textiles", "1000+", "0-30"]),
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Commerce", "1000+", "0-30"]),
            row(&["Roma", "Financial", "1000+", "0-30"]),
            row(&["Roma", "Financial", "1000+", "0-30"]),
            row(&["Milano", "Construction", "0-200", "60-90"]),
            row(&["Torino", "Construction", "0-200", "60-90"]),
        ];
        let weights = Some(vec![10.0, 20.0, 20.0, 30.0, 30.0, 5.0, 5.0]);
        check_patch(
            rows,
            weights,
            NullSemantics::MaybeMatch,
            0,
            1,
            Value::Null(0),
        );
    }

    #[test]
    fn patch_matches_cold_under_standard_semantics() {
        let rows = vec![row(&["a", "x"]), row(&["a", "x"]), row(&["b", "y"])];
        check_patch(rows, None, NullSemantics::Standard, 0, 0, s("b"));
    }

    #[test]
    fn patch_matches_cold_when_nulled_row_changes_again() {
        // second suppression on an already-nulled row
        let rows = vec![
            vec![s("Roma"), Value::Null(0), s("1000+")],
            row(&["Roma", "Commerce", "1000+"]),
            row(&["Milano", "Commerce", "0-200"]),
        ];
        check_patch(
            rows,
            Some(vec![3.0, 4.0, 5.0]),
            NullSemantics::MaybeMatch,
            0,
            0,
            Value::Null(1),
        );
    }

    #[test]
    fn patch_matches_cold_for_recode() {
        // recoding a value to an existing category merges groups
        let rows = vec![row(&["Textiles"]), row(&["Commerce"]), row(&["Commerce"])];
        check_patch(
            rows,
            Some(vec![1.0, 2.0, 3.0]),
            NullSemantics::MaybeMatch,
            0,
            0,
            s("Commerce"),
        );
    }

    #[test]
    fn chained_patches_match_cold() {
        // several consecutive suppressions, patching after each
        let mut rows = vec![
            row(&["Roma", "Textiles"]),
            row(&["Roma", "Commerce"]),
            row(&["Milano", "Commerce"]),
            row(&["Milano", "Textiles"]),
        ];
        let weights = vec![2.0, 3.0, 4.0, 5.0];
        let sem = NullSemantics::MaybeMatch;
        let mut gs = group_stats(&rows, Some(&weights), sem);
        for (step, (r, c)) in [(0usize, 1usize), (3, 0), (1, 1)].iter().enumerate() {
            let old = rows[*r].clone();
            rows[*r][*c] = Value::Null(step as u64);
            gs.apply_row_change(&rows, Some(&weights), sem, *r, &old);
        }
        let cold = group_stats(&rows, Some(&weights), sem);
        assert_eq!(gs.count, cold.count);
        assert_eq!(gs.weight_sum, cold.weight_sum);
    }

    #[test]
    fn exact_summability_gate() {
        assert!(weights_exactly_summable(None));
        assert!(weights_exactly_summable(Some(&[1.0, 20.0, 300.0])));
        assert!(!weights_exactly_summable(Some(&[1.5])));
        assert!(!weights_exactly_summable(Some(&[f64::NAN])));
        assert!(!weights_exactly_summable(Some(&[1e16])));
    }
}
