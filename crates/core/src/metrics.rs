//! Utility and information-loss metrics (paper §5.1).
//!
//! Figure 7a counts the labelled nulls injected by local suppression;
//! Figure 7b normalizes them into an *information loss* measure: injected
//! nulls divided by the maximum number of values that could theoretically
//! be removed — the quasi-identifier cells of the tuples that were risky
//! w.r.t. the threshold before anonymization started.

use crate::maybe_match::{group_stats, NullSemantics};
use vadalog::Value;

/// Information loss per the paper's Figure 7b definition.
///
/// * `nulls_injected` — suppressions performed by the cycle;
/// * `initial_risky_tuples` — tuples over the threshold before the run;
/// * `qi_count` — number of quasi-identifier attributes.
///
/// Returns a ratio in `[0, 1]`; `0` when nothing was risky.
pub fn information_loss(
    nulls_injected: usize,
    initial_risky_tuples: usize,
    qi_count: usize,
) -> f64 {
    let denom = initial_risky_tuples * qi_count;
    if denom == 0 {
        0.0
    } else {
        (nulls_injected as f64 / denom as f64).min(1.0)
    }
}

/// Fraction of suppressed quasi-identifier cells over all QI cells.
pub fn suppression_ratio(qi_rows: &[Vec<Value>]) -> f64 {
    let total: usize = qi_rows.iter().map(|r| r.len()).sum();
    if total == 0 {
        return 0.0;
    }
    let nulls: usize = qi_rows
        .iter()
        .map(|r| r.iter().filter(|v| v.is_null()).count())
        .sum();
    nulls as f64 / total as f64
}

/// Discernibility metric (Bayardo & Agrawal): sum over tuples of their
/// equivalence-class size. Smaller is better for utility; suppression
/// inflates it because maybe-matching enlarges classes.
pub fn discernibility(qi_rows: &[Vec<Value>], sem: NullSemantics) -> u64 {
    let stats = group_stats(qi_rows, None, sem);
    stats.count.iter().map(|&c| c as u64).sum()
}

/// Average equivalence-class size `n / #classes` computed under the
/// *standard* semantics (classes partition the table only there).
pub fn average_class_size(qi_rows: &[Vec<Value>]) -> f64 {
    if qi_rows.is_empty() {
        return 0.0;
    }
    use std::collections::HashSet;
    let classes: HashSet<&[Value]> = qi_rows.iter().map(|r| r.as_slice()).collect();
    qi_rows.len() as f64 / classes.len() as f64
}

/// Shannon entropy (bits) of the equivalence-class distribution under the
/// standard semantics. Anonymization lowers it: coarser data, less spread.
pub fn class_entropy(qi_rows: &[Vec<Value>]) -> f64 {
    if qi_rows.is_empty() {
        return 0.0;
    }
    use std::collections::HashMap;
    let mut counts: HashMap<&[Value], usize> = HashMap::new();
    for r in qi_rows {
        *counts.entry(r.as_slice()).or_insert(0) += 1;
    }
    let n = qi_rows.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    #[test]
    fn information_loss_basics() {
        assert_eq!(information_loss(0, 10, 4), 0.0);
        assert_eq!(information_loss(10, 0, 4), 0.0);
        assert!((information_loss(8, 10, 4) - 0.2).abs() < 1e-12);
        // clamped at 1
        assert_eq!(information_loss(100, 2, 4), 1.0);
    }

    #[test]
    fn suppression_ratio_counts_nulls() {
        let rows = vec![vec![s("a"), Value::Null(0)], vec![s("b"), s("c")]];
        assert!((suppression_ratio(&rows) - 0.25).abs() < 1e-12);
        assert_eq!(suppression_ratio(&[]), 0.0);
    }

    #[test]
    fn discernibility_grows_with_suppression() {
        let before = vec![vec![s("a")], vec![s("b")]];
        let after = vec![vec![Value::Null(0)], vec![s("b")]];
        let d0 = discernibility(&before, NullSemantics::MaybeMatch);
        let d1 = discernibility(&after, NullSemantics::MaybeMatch);
        assert_eq!(d0, 2);
        assert_eq!(d1, 4); // both rows now match each other
        assert!(d1 > d0);
    }

    #[test]
    fn average_class_size_and_entropy() {
        let rows = vec![vec![s("a")], vec![s("a")], vec![s("b")], vec![s("c")]];
        assert!((average_class_size(&rows) - 4.0 / 3.0).abs() < 1e-12);
        // entropy of {1/2, 1/4, 1/4} = 1.5 bits
        assert!((class_entropy(&rows) - 1.5).abs() < 1e-12);
        assert_eq!(class_entropy(&[]), 0.0);
        assert_eq!(average_class_size(&[]), 0.0);
    }
}
