//! Utility and information-loss metrics (paper §5.1).
//!
//! Figure 7a counts the labelled nulls injected by local suppression;
//! Figure 7b normalizes them into an *information loss* measure: injected
//! nulls divided by the maximum number of values that could theoretically
//! be removed — the quasi-identifier cells of the tuples that were risky
//! w.r.t. the threshold before anonymization started.

use crate::maybe_match::NullSemantics;
use crate::risk::MicrodataView;

/// Information loss per the paper's Figure 7b definition.
///
/// * `nulls_injected` — suppressions performed by the cycle;
/// * `initial_risky_tuples` — tuples over the threshold before the run;
/// * `qi_count` — number of quasi-identifier attributes.
///
/// Returns a ratio in `[0, 1]`; `0` when nothing was risky.
pub fn information_loss(
    nulls_injected: usize,
    initial_risky_tuples: usize,
    qi_count: usize,
) -> f64 {
    let denom = initial_risky_tuples * qi_count;
    if denom == 0 {
        0.0
    } else {
        (nulls_injected as f64 / denom as f64).min(1.0)
    }
}

/// Fraction of suppressed quasi-identifier cells over all QI cells.
pub fn suppression_ratio(view: &MicrodataView) -> f64 {
    let total = view.len() * view.width();
    if total == 0 {
        return 0.0;
    }
    view.null_cell_count() as f64 / total as f64
}

/// Discernibility metric (Bayardo & Agrawal): sum over tuples of their
/// equivalence-class size. Smaller is better for utility; suppression
/// inflates it because maybe-matching enlarges classes.
pub fn discernibility(view: &MicrodataView, sem: NullSemantics) -> u64 {
    let stats = view.group_stats_with(None, sem);
    stats.count.iter().map(|&c| c as u64).sum()
}

/// Average equivalence-class size `n / #classes` computed under the
/// *standard* semantics (classes partition the table only there).
pub fn average_class_size(view: &MicrodataView) -> f64 {
    if view.is_empty() {
        return 0.0;
    }
    use std::collections::HashSet;
    // two rows are class-mates iff their code slices agree (interning maps
    // equal values, including same-label nulls, to equal codes)
    let classes: HashSet<&[u32]> = (0..view.len()).map(|r| view.row_codes(r)).collect();
    view.len() as f64 / classes.len() as f64
}

/// Shannon entropy (bits) of the equivalence-class distribution under the
/// standard semantics. Anonymization lowers it: coarser data, less spread.
pub fn class_entropy(view: &MicrodataView) -> f64 {
    if view.is_empty() {
        return 0.0;
    }
    use std::collections::HashMap;
    let mut counts: HashMap<&[u32], usize> = HashMap::new();
    for r in 0..view.len() {
        *counts.entry(view.row_codes(r)).or_insert(0) += 1;
    }
    let n = view.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::Value;

    fn s(x: &str) -> Value {
        Value::str(x)
    }

    fn view(rows: Vec<Vec<Value>>) -> MicrodataView {
        let w = rows.first().map_or(0, |r| r.len());
        let names = (0..w).map(|i| format!("q{i}")).collect();
        MicrodataView::from_rows(names, rows, None, NullSemantics::Standard)
    }

    #[test]
    fn information_loss_basics() {
        assert_eq!(information_loss(0, 10, 4), 0.0);
        assert_eq!(information_loss(10, 0, 4), 0.0);
        assert!((information_loss(8, 10, 4) - 0.2).abs() < 1e-12);
        // clamped at 1
        assert_eq!(information_loss(100, 2, 4), 1.0);
    }

    #[test]
    fn suppression_ratio_counts_nulls() {
        let v = view(vec![vec![s("a"), Value::Null(0)], vec![s("b"), s("c")]]);
        assert!((suppression_ratio(&v) - 0.25).abs() < 1e-12);
        assert_eq!(suppression_ratio(&view(vec![])), 0.0);
    }

    #[test]
    fn discernibility_grows_with_suppression() {
        let before = view(vec![vec![s("a")], vec![s("b")]]);
        let after = view(vec![vec![Value::Null(0)], vec![s("b")]]);
        let d0 = discernibility(&before, NullSemantics::MaybeMatch);
        let d1 = discernibility(&after, NullSemantics::MaybeMatch);
        assert_eq!(d0, 2);
        assert_eq!(d1, 4); // both rows now match each other
        assert!(d1 > d0);
    }

    #[test]
    fn average_class_size_and_entropy() {
        let v = view(vec![vec![s("a")], vec![s("a")], vec![s("b")], vec![s("c")]]);
        assert!((average_class_size(&v) - 4.0 / 3.0).abs() < 1e-12);
        // entropy of {1/2, 1/4, 1/4} = 1.5 bits
        assert!((class_entropy(&v) - 1.5).abs() < 1e-12);
        assert_eq!(class_entropy(&view(vec![])), 0.0);
        assert_eq!(average_class_size(&view(vec![])), 0.0);
    }
}
