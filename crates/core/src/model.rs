//! The microdata model: schema-independent tables whose cells are engine
//! values (constants or labelled nulls).
//!
//! A *microdata DB* (paper §2.1) is a relation `M(i, q, a, W)` where `i`
//! are direct identifiers, `q` quasi-identifiers, `a` non-identifying
//! attributes and `W` a sampling weight. Which column plays which role is
//! *not* part of this struct — it lives in the
//! [`MetadataDictionary`](crate::dictionary::MetadataDictionary), keeping
//! the framework schema-independent: all algorithms reason over attribute
//! *names* drawn from the dictionary, never over fixed positions.

use std::collections::HashMap;
use std::fmt;
use vadalog::Value;

/// A schema-independent microdata table.
#[derive(Debug, Clone)]
pub struct MicrodataDb {
    /// Logical name (e.g. `"I&G"`).
    pub name: String,
    /// Column names, in declaration order.
    attributes: Vec<String>,
    /// Column name → position.
    attr_index: HashMap<String, usize>,
    /// Row-major cell storage.
    rows: Vec<Vec<Value>>,
    /// Labelled-null counter for suppression.
    next_null: u64,
}

/// Errors raised by microdata construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Expected number of cells.
        expected: usize,
        /// Provided number of cells.
        got: usize,
    },
    /// Referenced attribute does not exist.
    UnknownAttribute(String),
    /// Referenced row index is out of bounds.
    RowOutOfBounds(usize),
    /// Duplicate attribute name in the schema.
    DuplicateAttribute(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} cells, schema expects {expected}")
            }
            ModelError::UnknownAttribute(a) => write!(f, "unknown attribute '{a}'"),
            ModelError::RowOutOfBounds(i) => write!(f, "row index {i} out of bounds"),
            ModelError::DuplicateAttribute(a) => write!(f, "duplicate attribute '{a}'"),
        }
    }
}

impl std::error::Error for ModelError {}

impl MicrodataDb {
    /// Create an empty microdata DB with the given schema.
    pub fn new(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, ModelError> {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        let mut attr_index = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            if attr_index.insert(a.clone(), i).is_some() {
                return Err(ModelError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(MicrodataDb {
            name: name.into(),
            attributes,
            attr_index,
            rows: Vec::new(),
            next_null: 0,
        })
    }

    /// Attribute names in schema order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Position of an attribute.
    pub fn attr_position(&self, name: &str) -> Result<usize, ModelError> {
        self.attr_index
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownAttribute(name.to_string()))
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<usize, ModelError> {
        if row.len() != self.attributes.len() {
            return Err(ModelError::ArityMismatch {
                expected: self.attributes.len(),
                got: row.len(),
            });
        }
        for v in &row {
            if let Value::Null(n) = v {
                if *n >= self.next_null {
                    self.next_null = n + 1;
                }
            }
        }
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow a row.
    pub fn row(&self, idx: usize) -> Result<&[Value], ModelError> {
        self.rows
            .get(idx)
            .map(|r| r.as_slice())
            .ok_or(ModelError::RowOutOfBounds(idx))
    }

    /// Iterate rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Cell value by row index and attribute name.
    pub fn value(&self, row: usize, attr: &str) -> Result<&Value, ModelError> {
        let col = self.attr_position(attr)?;
        self.rows
            .get(row)
            .map(|r| &r[col])
            .ok_or(ModelError::RowOutOfBounds(row))
    }

    /// Overwrite a cell.
    pub fn set_value(&mut self, row: usize, attr: &str, v: Value) -> Result<(), ModelError> {
        let col = self.attr_position(attr)?;
        let r = self
            .rows
            .get_mut(row)
            .ok_or(ModelError::RowOutOfBounds(row))?;
        if let Value::Null(n) = &v {
            if *n >= self.next_null {
                self.next_null = n + 1;
            }
        }
        r[col] = v;
        Ok(())
    }

    /// Mint a fresh labelled null (unique within this table's lifetime).
    pub fn fresh_null(&mut self) -> Value {
        let id = self.next_null;
        self.next_null += 1;
        Value::Null(id)
    }

    /// How many labelled nulls have been minted or imported.
    pub fn nulls_minted(&self) -> u64 {
        self.next_null
    }

    /// Raise the labelled-null counter to at least `n`, so the next
    /// [`fresh_null`](Self::fresh_null) mints `⊥n` or later. Used by
    /// checkpoint restore to reproduce the exact null labels an
    /// interrupted run would have minted; never lowers the counter.
    pub fn reserve_nulls(&mut self, n: u64) {
        if n > self.next_null {
            self.next_null = n;
        }
    }

    /// Count of null cells across the listed attributes (all if empty).
    pub fn null_cells(&self, attrs: &[String]) -> usize {
        let cols: Vec<usize> = if attrs.is_empty() {
            (0..self.attributes.len()).collect()
        } else {
            attrs
                .iter()
                .filter_map(|a| self.attr_index.get(a).copied())
                .collect()
        };
        self.rows
            .iter()
            .map(|r| cols.iter().filter(|&&c| r[c].is_null()).count())
            .sum()
    }

    /// Borrow an entire column by attribute name. Returns one reference
    /// per row — no cell is cloned (callers that need owned values clone
    /// selectively at the use site).
    pub fn column(&self, attr: &str) -> Result<Vec<&Value>, ModelError> {
        let col = self.attr_position(attr)?;
        Ok(self.rows.iter().map(|r| &r[col]).collect())
    }

    /// An indexed, borrowed projection of the listed attributes: column
    /// positions are resolved once and cells are reached by reference, so
    /// projecting costs O(columns) instead of O(cells) clones.
    pub fn project(&self, attrs: &[String]) -> Result<Projection<'_>, ModelError> {
        let cols: Vec<usize> = attrs
            .iter()
            .map(|a| self.attr_position(a))
            .collect::<Result<_, _>>()?;
        Ok(Projection { db: self, cols })
    }

    /// Raw column positions for the listed attributes (projection
    /// plumbing for callers that keep their own row loop).
    pub fn positions(&self, attrs: &[String]) -> Result<Vec<usize>, ModelError> {
        attrs.iter().map(|a| self.attr_position(a)).collect()
    }

    /// Numeric view of a column (errors on the first non-numeric cell).
    pub fn numeric_column(&self, attr: &str) -> Result<Vec<f64>, ModelError> {
        let col = self.attr_position(attr)?;
        self.rows
            .iter()
            .map(|r| {
                r[col].as_f64().ok_or_else(|| {
                    ModelError::UnknownAttribute(format!(
                        "attribute '{attr}' holds non-numeric value {}",
                        r[col]
                    ))
                })
            })
            .collect()
    }
}

/// A borrowed, indexed projection of a [`MicrodataDb`] onto a subset of
/// its attributes. Holds only the source reference and the resolved
/// column positions; every cell access borrows from the table.
#[derive(Debug, Clone)]
pub struct Projection<'a> {
    db: &'a MicrodataDb,
    cols: Vec<usize>,
}

impl<'a> Projection<'a> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Is the projection empty?
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Number of projected columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Borrow the cell at `(row, col)` (col indexes the projection).
    pub fn value(&self, row: usize, col: usize) -> &'a Value {
        &self.db.rows[row][self.cols[col]]
    }

    /// One projected row as cell references.
    pub fn row(&self, row: usize) -> Vec<&'a Value> {
        self.cols.iter().map(|&c| &self.db.rows[row][c]).collect()
    }

    /// Iterate projected rows as cell references.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<&'a Value>> + '_ {
        (0..self.len()).map(|r| self.row(r))
    }

    /// Owned escape hatch: materialize the projection (O(cells) clones).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.iter_rows()
            .map(|r| r.into_iter().cloned().collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MicrodataDb {
        let mut db = MicrodataDb::new("t", ["id", "area", "w"]).unwrap();
        db.push_row(vec![Value::Int(1), Value::str("North"), Value::Int(10)])
            .unwrap();
        db.push_row(vec![Value::Int(2), Value::str("South"), Value::Int(20)])
            .unwrap();
        db
    }

    #[test]
    fn construction_and_access() {
        let db = sample();
        assert_eq!(db.len(), 2);
        assert_eq!(db.value(0, "area").unwrap(), &Value::str("North"));
        assert_eq!(db.attr_position("w").unwrap(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = sample();
        assert!(matches!(
            db.push_row(vec![Value::Int(3)]),
            Err(ModelError::ArityMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(matches!(
            MicrodataDb::new("t", ["a", "a"]),
            Err(ModelError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let db = sample();
        assert!(db.value(0, "zz").is_err());
        assert!(db.column("zz").is_err());
    }

    #[test]
    fn fresh_nulls_are_distinct_and_tracked() {
        let mut db = sample();
        let n1 = db.fresh_null();
        let n2 = db.fresh_null();
        assert_ne!(n1, n2);
        db.set_value(0, "area", n1).unwrap();
        assert_eq!(db.null_cells(&["area".to_string()]), 1);
        assert_eq!(db.null_cells(&[]), 1);
    }

    #[test]
    fn imported_nulls_advance_counter() {
        let mut db = MicrodataDb::new("t", ["a"]).unwrap();
        db.push_row(vec![Value::Null(5)]).unwrap();
        assert_eq!(db.fresh_null(), Value::Null(6));
    }

    #[test]
    fn projection_and_numeric_column() {
        let db = sample();
        let proj = db.project(&["area".to_string(), "id".to_string()]).unwrap();
        assert_eq!(proj.len(), 2);
        assert_eq!(proj.width(), 2);
        assert_eq!(proj.row(1), vec![&Value::str("South"), &Value::Int(2)]);
        assert_eq!(proj.value(0, 0), &Value::str("North"));
        assert_eq!(proj.to_rows()[1], vec![Value::str("South"), Value::Int(2)]);
        assert_eq!(db.positions(&["w".to_string()]).unwrap(), vec![2]);
        assert_eq!(db.numeric_column("w").unwrap(), vec![10.0, 20.0]);
        assert!(db.numeric_column("area").is_err());
    }
}
