//! A builder-style facade over the full Vada-SA pipeline.
//!
//! The individual pieces — dictionary, categorizer, risk measures,
//! anonymizers, cycle — compose freely, but the common RDC path is always
//! the same: *ingest, categorize, screen, anonymize, summarize*. The
//! [`Vadasa`] builder wires that path with sensible defaults so the
//! adopting analyst writes five lines, while every knob stays reachable.
//!
//! ```
//! use vadasa_core::pipeline::Vadasa;
//! use vadasa_core::prelude::*;
//! use vadalog::Value;
//!
//! let mut db = MicrodataDb::new("s", ["id", "area", "weight"]).unwrap();
//! db.push_row(vec![Value::Int(1), Value::str("North"), Value::Int(9)]).unwrap();
//! db.push_row(vec![Value::Int(2), Value::str("North"), Value::Int(9)]).unwrap();
//! db.push_row(vec![Value::Int(3), Value::str("Lilliput"), Value::Int(2)]).unwrap();
//!
//! let release = Vadasa::new()
//!     .k_anonymity(2)
//!     .threshold(0.5)
//!     .run(&db)
//!     .unwrap();
//! assert_eq!(release.outcome.final_risky, 0);
//! println!("{}", release.summary);
//! ```

use crate::categorize::{Categorizer, ExperienceBase};
use crate::cycle::{AnonymizationCycle, CycleConfig, CycleError, CycleOutcome};
use crate::degrade::FallbackPolicy;
use crate::dictionary::MetadataDictionary;
use crate::journal::JournalConfig;
use crate::model::MicrodataDb;
use crate::prelude::{
    Anonymizer, IndividualRisk, IrEstimator, KAnonymity, LocalSuppression, MicrodataView,
    ReIdentification, RiskMeasure, Suda,
};
use crate::report::render_summary;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;
use vadalog::CancelToken;
use vadasa_obs::metrics::MetricsRegistry;
use vadasa_obs::Collector;

/// Which off-the-shelf risk measure the facade should use.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MeasureChoice {
    KAnonymity(usize),
    ReIdentification,
    IndividualRisk(IrEstimator),
    Suda(usize),
}

/// Facade errors.
#[derive(Debug)]
pub enum PipelineError {
    /// Attribute categorization left gaps the cycle cannot work with.
    Uncategorized(Vec<String>),
    /// The cycle failed.
    Cycle(CycleError),
    /// Dictionary access failed.
    Dictionary(crate::dictionary::DictionaryError),
    /// Risk evaluation failed.
    Risk(crate::risk::RiskError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Uncategorized(attrs) => write!(
                f,
                "attributes could not be categorized automatically: {attrs:?}; extend the experience base or categorize them manually"
            ),
            PipelineError::Cycle(e) => write!(f, "{e}"),
            PipelineError::Dictionary(e) => write!(f, "{e}"),
            PipelineError::Risk(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The facade's result: the anonymized table plus everything an RDC
/// archive wants next to it.
#[derive(Debug)]
pub struct Release {
    /// Cycle outcome (anonymized DB, audit trail, metrics).
    pub outcome: CycleOutcome,
    /// The dictionary used (inferred + overrides).
    pub dict: MetadataDictionary,
    /// Rendered confidentiality summary of the *released* table.
    pub summary: String,
}

/// Builder for the standard Vada-SA path.
pub struct Vadasa {
    measure: MeasureChoice,
    config: CycleConfig,
    experience: ExperienceBase,
    similarity_threshold: f64,
    dictionary: Option<MetadataDictionary>,
    summary_top_n: usize,
    collector: Option<Arc<dyn Collector>>,
    metrics: Option<Arc<MetricsRegistry>>,
    cancel: Option<CancelToken>,
    resume: bool,
}

impl Default for Vadasa {
    fn default() -> Self {
        Vadasa {
            measure: MeasureChoice::KAnonymity(2),
            config: CycleConfig::default(),
            experience: ExperienceBase::financial_defaults(),
            similarity_threshold: 0.6,
            dictionary: None,
            summary_top_n: 5,
            collector: None,
            metrics: None,
            cancel: None,
            resume: false,
        }
    }
}

impl Vadasa {
    /// A pipeline with the defaults: 2-anonymity, `T = 0.5`, local
    /// suppression, financial experience base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Screen with k-anonymity.
    pub fn k_anonymity(mut self, k: usize) -> Self {
        self.measure = MeasureChoice::KAnonymity(k);
        self
    }

    /// Screen with re-identification risk.
    pub fn re_identification(mut self) -> Self {
        self.measure = MeasureChoice::ReIdentification;
        self
    }

    /// Screen with Benedetti–Franconi individual risk.
    pub fn individual_risk(mut self, estimator: IrEstimator) -> Self {
        self.measure = MeasureChoice::IndividualRisk(estimator);
        self
    }

    /// Screen with SUDA (MSU threshold).
    pub fn suda(mut self, msu_threshold: usize) -> Self {
        self.measure = MeasureChoice::Suda(msu_threshold);
        self
    }

    /// Risk threshold `T`.
    pub fn threshold(mut self, t: f64) -> Self {
        self.config.threshold = t;
        self
    }

    /// Full cycle configuration (heuristics, semantics, granularity).
    pub fn cycle_config(mut self, config: CycleConfig) -> Self {
        self.config = config;
        self
    }

    /// Extend the categorization experience base.
    pub fn experience(mut self, experience: ExperienceBase) -> Self {
        self.experience = experience;
        self
    }

    /// Minimum similarity for Algorithm 1 to borrow a category.
    pub fn similarity_threshold(mut self, threshold: f64) -> Self {
        self.similarity_threshold = threshold;
        self
    }

    /// Skip automatic categorization and use this dictionary as-is.
    pub fn with_dictionary(mut self, dict: MetadataDictionary) -> Self {
        self.dictionary = Some(dict);
        self
    }

    /// How many exposed tuples the summary lists.
    pub fn summary_top_n(mut self, n: usize) -> Self {
        self.summary_top_n = n;
        self
    }

    /// Wall-clock deadline for the anonymization cycle. When it expires
    /// the cycle degrades per the [`fallback`](Self::fallback) policy
    /// instead of running on.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// What to do when the cycle cannot converge normally (cap, deadline,
    /// cancellation, plug-in panic). The default,
    /// [`FallbackPolicy::SuppressRisky`], degrades gracefully and still
    /// honours the risk bound.
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.config.fallback = policy;
        self
    }

    /// Attach a cooperative cancellation token: flipping it from another
    /// thread makes the cycle degrade at the next iteration boundary.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Journal the anonymization cycle into `config.dir`, making an
    /// interrupted run recoverable with [`resume`](Self::resume). See
    /// [`CycleConfig::journal`].
    pub fn journal(mut self, config: JournalConfig) -> Self {
        self.config.journal = Some(config);
        self
    }

    /// Resume the journal configured via [`journal`](Self::journal)
    /// instead of starting fresh: committed work is replayed and the
    /// cycle continues, bit-identical to a run that was never
    /// interrupted. Without a journal configuration, `run` fails with
    /// [`JournalError::NotConfigured`](crate::journal::JournalError).
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Attach a telemetry collector: the anonymization cycle's
    /// per-iteration profile is replayed into it (see
    /// [`CycleProfile::emit`](crate::cycle::CycleProfile::emit)), and the
    /// same records ride on `Release::outcome.profile`.
    pub fn collector(mut self, collector: Arc<dyn Collector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Attach a live metrics registry: the cycle publishes its current
    /// iteration, rows-at-risk, risk statistics and convergence estimate
    /// into it after every risk evaluation, so another thread (or a
    /// monitoring endpoint) can snapshot mid-run state.
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Run the pipeline: categorize (unless a dictionary was supplied),
    /// anonymize to the threshold, and summarize the released table.
    pub fn run(self, db: &MicrodataDb) -> Result<Release, PipelineError> {
        // --- categorize ---
        let dict = match self.dictionary {
            Some(d) => d,
            None => {
                let mut dict = MetadataDictionary::new();
                for attr in db.attributes() {
                    dict.register_attr(&db.name, attr, "");
                }
                let mut categorizer = Categorizer::new(self.experience.clone());
                categorizer.threshold = self.similarity_threshold;
                categorizer
                    .categorize(&mut dict, &db.name)
                    .map_err(PipelineError::Dictionary)?;
                let missing: Vec<String> = dict
                    .attrs(&db.name)
                    .map_err(PipelineError::Dictionary)?
                    .iter()
                    .filter(|(_, m)| m.category.is_none())
                    .map(|(a, _)| a.clone())
                    .collect();
                if !missing.is_empty() {
                    return Err(PipelineError::Uncategorized(missing));
                }
                dict
            }
        };

        // --- anonymize ---
        let measure: Box<dyn RiskMeasure> = match self.measure {
            MeasureChoice::KAnonymity(k) => Box::new(KAnonymity::new(k)),
            MeasureChoice::ReIdentification => Box::new(ReIdentification),
            MeasureChoice::IndividualRisk(est) => Box::new(IndividualRisk::new(est)),
            MeasureChoice::Suda(t) => Box::new(Suda::new(t)),
        };
        let anonymizer: Box<dyn Anonymizer> = Box::new(LocalSuppression::default());
        let mut cycle =
            AnonymizationCycle::new(measure.as_ref(), anonymizer.as_ref(), self.config.clone());
        if let Some(collector) = self.collector {
            cycle = cycle.with_collector(collector);
        }
        if let Some(metrics) = self.metrics {
            cycle = cycle.with_metrics(metrics);
        }
        if let Some(token) = self.cancel {
            cycle = cycle.with_cancel(token);
        }
        let outcome = if self.resume {
            cycle.resume(db, &dict)
        } else {
            cycle.run(db, &dict)
        }
        .map_err(PipelineError::Cycle)?;

        // --- summarize the released table ---
        // The summary re-evaluates the measure on the released table; a
        // plug-in that panicked during the cycle would panic again here,
        // so fall back to the cycle's own (fail-closed) final report.
        let view = MicrodataView::from_db_with(&outcome.db, &dict, self.config.semantics, None)
            .map_err(PipelineError::Risk)?;
        let report = match catch_unwind(AssertUnwindSafe(|| measure.evaluate(&view))) {
            Ok(r) => r.map_err(PipelineError::Risk)?,
            Err(_) => outcome.final_report.clone(),
        };
        let summary = render_summary(&view, &report, self.config.threshold, self.summary_top_n);

        Ok(Release {
            outcome,
            dict,
            summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Category;
    use vadalog::Value;

    fn survey() -> MicrodataDb {
        let mut db = MicrodataDb::new("survey", ["id", "area", "sector", "weight"]).unwrap();
        let rows = [
            (1, "North", "Commerce", 90),
            (2, "North", "Commerce", 90),
            (3, "North", "Energy", 3),
            (4, "South", "Commerce", 80),
            (5, "South", "Commerce", 80),
        ];
        for (id, a, s, w) in rows {
            db.push_row(vec![
                Value::Int(id),
                Value::str(a),
                Value::str(s),
                Value::Int(w),
            ])
            .unwrap();
        }
        db
    }

    #[test]
    fn defaults_run_end_to_end() {
        let release = Vadasa::new().run(&survey()).unwrap();
        assert_eq!(release.outcome.final_risky, 0);
        assert!(release.outcome.nulls_injected >= 1);
        assert!(release.summary.contains("confidentiality summary"));
        // the inferred dictionary recovered the roles
        assert_eq!(
            release.dict.category("survey", "id").unwrap(),
            Some(Category::Identifier)
        );
        assert_eq!(release.dict.weight_attr("survey").unwrap(), "weight");
    }

    #[test]
    fn measures_are_selectable() {
        for build in [
            Vadasa::new().re_identification().threshold(0.2),
            Vadasa::new().suda(3),
            Vadasa::new().individual_risk(IrEstimator::PosteriorMean),
            Vadasa::new().k_anonymity(3),
        ] {
            let release = build.run(&survey()).unwrap();
            assert_eq!(release.outcome.final_risky, 0);
        }
    }

    #[test]
    fn journaled_pipeline_runs_and_resumes() {
        let dir = std::env::temp_dir().join(format!("vadasa-pipeline-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = survey();

        let journaled = Vadasa::new()
            .journal(JournalConfig::new(&dir))
            .run(&db)
            .unwrap();
        assert!(journaled.outcome.profile.journal.records_written > 0);
        assert!(dir.join(crate::journal::JOURNAL_FILE).exists());

        // The completed journal resumes to the same release.
        let resumed = Vadasa::new()
            .journal(JournalConfig::new(&dir))
            .resume()
            .run(&db)
            .unwrap();
        assert_eq!(
            resumed.outcome.nulls_injected,
            journaled.outcome.nulls_injected
        );
        assert_eq!(resumed.outcome.iterations, journaled.outcome.iterations);
        assert_eq!(resumed.summary, journaled.summary);

        // Resuming without a journal configuration is a structured error.
        match Vadasa::new().resume().run(&db) {
            Err(PipelineError::Cycle(CycleError::Journal(
                crate::journal::JournalError::NotConfigured,
            ))) => {}
            other => panic!("expected NotConfigured, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_attributes_are_reported() {
        let mut db = MicrodataDb::new("weird", ["zzxyqf"]).unwrap();
        db.push_row(vec![Value::str("?")]).unwrap();
        match Vadasa::new().run(&db) {
            Err(PipelineError::Uncategorized(attrs)) => {
                assert_eq!(attrs, vec!["zzxyqf".to_string()])
            }
            other => panic!("expected Uncategorized, got {other:?}"),
        }
    }

    #[test]
    fn explicit_dictionary_skips_categorization() {
        let db = survey();
        let mut dict = MetadataDictionary::new();
        for a in ["id", "area", "sector", "weight"] {
            dict.register_attr("survey", a, "");
        }
        dict.set_category("survey", "id", Category::Identifier)
            .unwrap();
        dict.set_category("survey", "area", Category::QuasiIdentifier)
            .unwrap();
        // deliberately exclude sector from the QIs
        dict.set_category("survey", "sector", Category::NonIdentifying)
            .unwrap();
        dict.set_category("survey", "weight", Category::Weight)
            .unwrap();
        let release = Vadasa::new().with_dictionary(dict).run(&db).unwrap();
        // on area alone everything is ≥ 2-anonymous: nothing to do
        assert_eq!(release.outcome.nulls_injected, 0);
    }
}
