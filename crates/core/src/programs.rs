//! The paper's algorithm listings as executable Vadalog programs.
//!
//! Vada-SA's defining trait is that risk measures and anonymization logic
//! are *declarative*: sets of Vadalog rules over the metadata dictionary.
//! This module ships the concrete encodings of Algorithms 1 and 3–7 in the
//! syntax of the bundled [`vadalog`] engine, together with converters that
//! round-trip a [`MicrodataDb`] + [`MetadataDictionary`] to the extensional
//! facts (`val`, `cat`, `expbase`, …) the programs expect, and runners that
//! extract the derived `riskOutput` facts.
//!
//! The unit and integration tests prove the declarative and the native
//! implementations agree on shared fixtures — the engine-based path is the
//! reference semantics, the native path is the scalable one.
//!
//! ## Encoding notes
//!
//! * Tuples are reified per Algorithm 2 Rule 1: `val(M, I, A, V)` cells are
//!   folded into a set-valued `tuple(M, I, VSet)` fact with
//!   `VSet = munion(pair(A, V), ⟨A⟩)`.
//! * Aggregate-in-condition rules (e.g. `msum(W,⟨Z⟩) > 0.5` in the control
//!   example of §4.4) are flattened into an aggregate rule followed by a
//!   filter, which is the stratified normal form the engine accepts.
//! * Algorithm 6 Rules 3–4 as printed extend the *old* combination; the
//!   intended semantics (build a new combination `Z` = `Z1 ∪ {A}`) is what
//!   we encode: `InComb(Z, Z1), In(A, Z)` plus the copy rule
//!   `InComb(Z, Z1), In(A, Z1) → In(A, Z)`.

use crate::dictionary::{Category, MetadataDictionary};
use crate::model::MicrodataDb;
use std::collections::HashMap;
use vadalog::{parse_program, Database, Engine, EngineError, ParseError, Program, Value};

/// Algorithm 1 — attribute categorization by recursive experience.
///
/// Expects facts `att(M, A)`, `expbase(A1, C)` and `similar(A, A1)` (the
/// host precomputes the pluggable similarity relation) and derives
/// `cat(M, A, C)`, feeding conclusions back into `expbase`. The EGD guards
/// one-category-per-attribute; violations surface in the reasoning result.
pub const ALG1_CATEGORIZATION: &str = r#"
@label("alg1-rule2: borrow similar category")
cat(M, A, C) :- att(M, A), expbase(A1, C), similar(A, A1).
@label("alg1-rule3: consolidate experience")
expbase(A, C) :- cat(M, A, C).
@label("alg1-rule4: one category per attribute (EGD)")
C1 = C2 :- cat(M, A, C1), cat(M, A, C2).
"#;

/// Algorithm 2 Rule 1 — reify microdata cells into set-valued tuples.
///
/// `val(M, I, A, V)` cells of quasi-identifier attributes fold into
/// `tuple(M, I, VSet)`; the weight column is exported as `wgt(I, W)`.
/// Identifiers and non-identifying attributes are implicitly dropped.
pub const ALG2_TUPLE_REIFICATION: &str = r#"
@label("alg2-rule1: collect quasi-identifier pairs")
tuple(M, I, VSet) :- val(M, I, A, V), cat(M, A, "quasi-identifier"),
                     VSet = munion(pair(A, V), <A>).
@label("alg2-rule1w: export sampling weight")
wgt(I, W) :- val(M, I, A, W), cat(M, A, "weight").
"#;

/// Algorithm 3 — re-identification-based risk: `1 / msum(weights)` grouped
/// by the quasi-identifier combination.
pub const ALG3_REIDENTIFICATION: &str = r#"
@label("alg3-rule1: sum weights per combination")
tuplea(VSet, S) :- tuple(M, I, VSet), wgt(I, W), S = msum(W, <I>).
@label("alg3-rule2: risk is reciprocal group weight")
riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, S), R = 1.0 / S.
"#;

/// Algorithm 4 — k-anonymity (`k` is spliced into the rule text).
pub fn alg4_kanonymity(k: usize) -> String {
    format!(
        r#"
@label("alg4-rule1: count occurrences per combination")
tuplea(VSet, C) :- tuple(M, I, VSet), C = mcount(<I>).
@label("alg4-rule2: threshold against k")
riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, C),
                    R = case C < {k} then 1.0 else 0.0.
"#
    )
}

/// Algorithm 5 — individual risk, simple estimator `f / Σw`.
pub const ALG5_INDIVIDUAL_RISK: &str = r#"
@label("alg5-rule1: frequency and weight sum per combination")
tuplea(VSet, F, S) :- tuple(M, I, VSet), wgt(I, W),
                      F = mcount(<I>), S = msum(W, <I>).
@label("alg5-rule2: risk is f over summed weights")
riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, F, S), R = F / S.
"#;

/// Algorithm 6 — SUDA: enumerate quasi-identifier combinations, detect
/// sample uniques, keep the minimal ones (`k` = MSU size threshold,
/// spliced into the rule text).
///
/// The paper generates combinations with existential ids and a
/// `not In(A, Z1)` test *inside* the recursion, which needs Vadalog's
/// liberal negation. Our engine enforces stratified negation, so
/// combinations are reified as first-class **set values** instead: the
/// membership test becomes the expression condition
/// `not contains(S, A)`, which is stratification-neutral, and the
/// recursion over `comb` stays purely positive. The existential-null
/// machinery the paper showcases here is still exercised by
/// [`ALG7_LOCAL_SUPPRESSION`].
pub fn alg6_suda(k: usize) -> String {
    format!(
        r#"
@label("alg6-rule1: focus on input tuples")
tuplei(M, I, VSet) :- tuple(M, I, VSet).
@label("alg6-rule2: singleton combinations")
comb(I, S) :- tuplei(M, I, VSet), cat(M, A, "quasi-identifier"),
              A in keys(VSet), S = {{A}}.
@label("alg6-rule3: extend combinations by one attribute")
comb(I, S2) :- comb(I, S), tuplei(M, I, VSet), cat(M, A, "quasi-identifier"),
               A in keys(VSet), not contains(S, A), S2 = S union {{A}}.
@label("alg6-rule5: project tuples on each combination")
tuplec(I, PSet) :- comb(I, S), tuplei(M, I, VSet), PSet = VSet[S].
@label("alg6-rule6a: occurrences per projected combination")
sucount(PSet, C) :- tuplec(I, PSet), C = mcount(<I>).
@label("alg6-rule6b: sample uniques")
su(I, PSet) :- tuplec(I, PSet), sucount(PSet, C), C = 1.
@label("alg6-rule7a: a sample unique containing a smaller one")
smaller(I, PSet) :- su(I, PSet), su(I, PSet1), PSet1 subset PSet.
@label("alg6-rule7b: minimal sample uniques")
msu(I, PSet) :- su(I, PSet), not smaller(I, PSet).
@label("alg6-rule8: small MSUs are dangerous")
msurisk(I, R) :- msu(I, PSet), R = case size(PSet) < {k} then 1.0 else 0.0.
@label("alg6-rule8b: tuple risk is the max over its MSUs")
riskOutput(I, R) :- msurisk(I, R1), R = mmax(R1, <R1>).
@label("alg6-rule8c: tuples with no MSU are safe")
anymsu(I) :- msu(I, PSet).
riskOutput(I, 0.0) :- tuplei(M, I, VSet), not anymsu(I).
"#
    )
}

/// Algorithm 7 — local suppression: a fresh labelled null replaces one
/// quasi-identifier of each tuple flagged by `anonymize(I)`; the host picks
/// the attribute through `suppressattr(I, A)` (the §4.4 "most risky first"
/// routing decision).
pub const ALG7_LOCAL_SUPPRESSION: &str = r#"
@label("alg7-mint: invent a labelled null per flagged tuple")
supp(I, A, Z) :- anonymize(I), suppressattr(I, A).
@label("alg7-rewrite: splice the null into the tuple")
tuple(M, I, NewSet) :- supp(I, A, Z), tuple(M, I, VSet),
                       NewSet = setminus(VSet, VSet[{A}]) union {pair(A, Z)}.
"#;

/// §4.4 — company control closure, flattened to stratified normal form:
/// `relw` materializes candidate (controller, target, intermediary,
/// fraction) quadruples, then a monotonic sum per intermediary decides
/// control. Expects `own(X, Y, W)` facts plus any already-known `rel`
/// control links; derives `ctrl(X, Y)`.
///
/// The paper's Rule 2 recurses *through* the aggregate
/// (`rel(X,Z), Own(Z,Y,W), msum(W,⟨Z⟩) > 0.5 → rel(X,Y)`), which Vadalog's
/// monotonic aggregation supports natively but a stratified engine cannot
/// evaluate in one pass. [`run_control_program`] therefore iterates the
/// program to a host-level fixpoint, feeding each round's `ctrl` facts
/// back as `rel` — the same outer-loop style the anonymization cycle uses
/// for its `#risk`/`#anonymize` plug-ins.
pub const BUSINESS_CONTROL: &str = r#"
@label("control-direct: majority shareholding")
rel(X, Y) :- own(X, Y, W), W > 0.5.
@label("control-carry: holdings of controlled companies")
relw(X, Y, Z, W) :- rel(X, Z), own(Z, Y, W).
@label("control-own: direct holdings")
relw(X, Y, X, W) :- own(X, Y, W).
@label("control-sum: joint majority")
ctrl(X, Y) :- relw(X, Y, Z, W), S = msum(W, <Z>), S > 0.5, X != Y.
"#;

/// Errors from running a declarative program.
#[derive(Debug)]
pub enum ProgramError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// The engine rejected or failed the program.
    Engine(EngineError),
    /// The microdata/dictionary could not be converted to facts.
    Conversion(String),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::Parse(e) => write!(f, "{e}"),
            ProgramError::Engine(e) => write!(f, "{e}"),
            ProgramError::Conversion(m) => write!(f, "conversion error: {m}"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<ParseError> for ProgramError {
    fn from(e: ParseError) -> Self {
        ProgramError::Parse(e)
    }
}
impl From<EngineError> for ProgramError {
    fn from(e: EngineError) -> Self {
        ProgramError::Engine(e)
    }
}

/// Convert a microdata DB plus its dictionary into the extensional facts
/// the programs expect: `microdb(M)`, `att(M, A)`, `cat(M, A, C)` and
/// `val(M, I, A, V)` (one fact per cell; `I` is the 0-based row index).
pub fn microdata_to_facts(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
) -> Result<Database, ProgramError> {
    let mut out = Database::new();
    let m = Value::str(&db.name);
    out.insert("microdb", vec![m.clone()]);
    let attrs = dict
        .attrs(&db.name)
        .map_err(|e| ProgramError::Conversion(e.to_string()))?
        .to_vec();
    for (attr, meta) in &attrs {
        out.insert("att", vec![m.clone(), Value::str(attr)]);
        if let Some(cat) = meta.category {
            out.insert(
                "cat",
                vec![m.clone(), Value::str(attr), Value::str(cat.name())],
            );
        }
    }
    for (i, row) in db.iter_rows().enumerate() {
        for (attr, cell) in db.attributes().iter().zip(row.iter()) {
            out.insert(
                "val",
                vec![
                    m.clone(),
                    Value::Int(i as i64),
                    Value::str(attr),
                    cell.clone(),
                ],
            );
        }
    }
    Ok(out)
}

/// Run a risk program (one of Algorithms 3–6 on top of the Algorithm 2
/// reification) and return the per-row risks in row order. Rows with no
/// derived `riskOutput` fact default to 0.
pub fn run_risk_program(
    risk_rules: &str,
    db: &MicrodataDb,
    dict: &MetadataDictionary,
) -> Result<Vec<f64>, ProgramError> {
    let mut source = String::from(ALG2_TUPLE_REIFICATION);
    source.push_str(risk_rules);
    let program: Program = parse_program(&source)?;
    let facts = microdata_to_facts(db, dict)?;
    let result = Engine::new().run(&program, facts)?;

    let mut risks = vec![0.0f64; db.len()];
    for row in result.db.rows("riskOutput") {
        let (Some(Value::Int(i)), Some(r)) = (row.first(), row.get(1)) else {
            continue;
        };
        let idx = *i as usize;
        if idx < risks.len() {
            if let Some(x) = r.as_f64() {
                // several riskOutput facts may exist (e.g. SUDA before the
                // mmax fold); keep the maximum.
                risks[idx] = risks[idx].max(x);
            }
        }
    }
    Ok(risks)
}

/// Run the Algorithm 1 categorization program. `similar` pairs are
/// precomputed by the host with the given similarity threshold using the
/// default similarity stack. Returns the inferred categories and the
/// number of EGD violations (conflicting experience).
pub fn run_categorization_program(
    dict: &MetadataDictionary,
    db_name: &str,
    experience: &crate::categorize::ExperienceBase,
    threshold: f64,
) -> Result<(HashMap<String, Category>, usize), ProgramError> {
    use crate::categorize::{LevenshteinSimilarity, NormalizedMatch, Similarity, TokenJaccard};
    let sims: Vec<Box<dyn Similarity>> = vec![
        Box::new(NormalizedMatch),
        Box::new(LevenshteinSimilarity),
        Box::new(TokenJaccard),
    ];

    let program = parse_program(ALG1_CATEGORIZATION)?;
    let mut facts = Database::new();
    let m = Value::str(db_name);
    let attrs = dict
        .attrs(db_name)
        .map_err(|e| ProgramError::Conversion(e.to_string()))?;
    for (attr, _) in attrs {
        facts.insert("att", vec![m.clone(), Value::str(attr)]);
        for (exp_attr, _) in experience.entries() {
            let score = sims
                .iter()
                .map(|s| s.score(attr, exp_attr))
                .fold(0.0, f64::max);
            if score >= threshold {
                facts.insert("similar", vec![Value::str(attr), Value::str(exp_attr)]);
            }
        }
    }
    for (exp_attr, exp_cat) in experience.entries() {
        facts.insert(
            "expbase",
            vec![Value::str(exp_attr), Value::str(exp_cat.name())],
        );
    }

    let result = Engine::new().run(&program, facts)?;
    let mut categories = HashMap::new();
    for row in result.db.rows("cat") {
        let (Some(mv), Some(a), Some(c)) = (row.first(), row.get(1), row.get(2)) else {
            continue;
        };
        if *mv != m {
            continue;
        }
        if let (Some(a), Some(c)) = (a.as_str(), c.as_str()) {
            if let Some(cat) = Category::from_name(c) {
                categories.insert(a.to_string(), cat);
            }
        }
    }
    Ok((categories, result.violations.len()))
}

/// Run the §4.4 control-closure program over `own(X, Y, W)` edges and
/// return the derived `ctrl(X, Y)` pairs.
pub fn run_control_program(
    edges: &[(Value, Value, f64)],
) -> Result<Vec<(Value, Value)>, ProgramError> {
    let program = parse_program(BUSINESS_CONTROL)?;
    let mut known: std::collections::BTreeSet<(Value, Value)> = std::collections::BTreeSet::new();
    // Host-level fixpoint around the stratified program: gaining control of
    // a company adds its holdings to the controller's aggregate, so the
    // derived ctrl facts are fed back as rel inputs until nothing new
    // appears. Each round grows `known`, so this terminates in at most
    // |entities|² rounds.
    loop {
        let mut facts = Database::new();
        for (x, y, w) in edges {
            facts.insert("own", vec![x.clone(), y.clone(), Value::Float(*w)]);
        }
        for (x, y) in &known {
            facts.insert("rel", vec![x.clone(), y.clone()]);
        }
        let result = Engine::new().run(&program, facts)?;
        let mut grew = false;
        for mut row in result.db.rows("ctrl") {
            if row.len() == 2 {
                let y = row.pop().expect("arity 2");
                let x = row.pop().expect("arity 2");
                grew |= known.insert((x, y));
            }
        }
        if !grew {
            return Ok(known.into_iter().collect());
        }
    }
}

/// Outcome of a fully declarative anonymization run.
#[derive(Debug, Clone)]
pub struct DeclarativeCycleOutcome {
    /// Iterations performed.
    pub iterations: usize,
    /// Labelled nulls injected (one per suppression).
    pub nulls_injected: usize,
    /// Per-row final risks.
    pub final_risks: Vec<f64>,
    /// The anonymized quasi-identifier table: per row, `(attr, value)`
    /// pairs where suppressed cells hold labelled nulls.
    pub anonymized_rows: Vec<Vec<(String, Value)>>,
    /// Risk evaluations answered goal-directed (magic-sets restricted to
    /// the rows whose groups last suppression touched).
    pub goal_evals: usize,
    /// Risk evaluations over the full program (the first iteration is
    /// always one; magic refusals add more).
    pub full_evals: usize,
    /// Goal-directed evaluations where the rewrite refused and the cycle
    /// fell back, documented-cold, to a full evaluation.
    pub goal_fallbacks: usize,
}

/// Options for [`run_declarative_cycle_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DeclarativeCycleOptions {
    /// After the first full risk evaluation, answer subsequent rounds'
    /// risk queries goal-directed: only rows whose quasi-identifier group
    /// was touched by the previous suppression are re-evaluated (their
    /// old group lost members, their new group gained them); every other
    /// row keeps its previous risk, which is sound because its group is
    /// unchanged. The goal set is closed under group equality by
    /// construction, so the magic rewrite runs with
    /// [`vadalog::MagicOptions::closed_groups`] and aggregate groups stay
    /// complete. Results are bit-identical with the full evaluation; the
    /// cycle falls back cold whenever the rewrite refuses.
    pub goal_directed: bool,
}

/// The anonymization cycle exactly as Algorithm 2 stages it: risk
/// evaluation and local suppression are both **Vadalog programs**, and the
/// host only plays the role of the `#risk`/`#anonymize` plumbing — reading
/// `riskOutput`, asserting `anonymize(I)`/`suppressattr(I, A)` facts, and
/// looping until every tuple passes the threshold.
///
/// Risk is evaluated with the declarative k-anonymity program
/// ([`alg4_kanonymity`]) under the maybe-match group semantics, realized
/// here by re-reifying the current (suppressed) `val` facts each round:
/// a suppressed cell carries a labelled null which the engine's `tuple`
/// reification keeps, and the host-side count emulation is avoided
/// entirely — grouping happens in `tuplea` on the engine.
///
/// The attribute to suppress is picked by the host (most-selective-first
/// over the current facts), mirroring §4.4's routing-strategy division of
/// labour. Suppression itself is Algorithm 7 on the engine: the fresh `⊥`
/// comes from the chase, not from host code.
pub fn run_declarative_cycle(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    k: usize,
    max_iterations: usize,
) -> Result<DeclarativeCycleOutcome, ProgramError> {
    run_declarative_cycle_with(
        db,
        dict,
        k,
        max_iterations,
        DeclarativeCycleOptions::default(),
    )
}

/// [`run_declarative_cycle`] with explicit options — see
/// [`DeclarativeCycleOptions::goal_directed`] for the warm-start path.
pub fn run_declarative_cycle_with(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    k: usize,
    max_iterations: usize,
    options: DeclarativeCycleOptions,
) -> Result<DeclarativeCycleOutcome, ProgramError> {
    use crate::maybe_match::{group_stats, NullSemantics};

    let qi_names = dict
        .quasi_identifiers(&db.name)
        .map_err(|e| ProgramError::Conversion(e.to_string()))?;
    // current QI state, row-major; starts from the input table
    let mut rows: Vec<Vec<(String, Value)>> = (0..db.len())
        .map(|i| {
            qi_names
                .iter()
                .map(|a| (a.clone(), db.value(i, a).expect("qi exists").clone()))
                .collect()
        })
        .collect();
    let m = Value::str(&db.name);
    let mut nulls_injected = 0usize;
    let mut iterations = 0usize;
    let mut goal_evals = 0usize;
    let mut full_evals = 0usize;
    let mut goal_fallbacks = 0usize;

    let risk_program = parse_program(&format!("{}{}", ALG2_TUPLE_REIFICATION, alg4_kanonymity(k)))?;
    let suppress_program = parse_program(&format!(
        "{}{}",
        ALG2_TUPLE_REIFICATION, ALG7_LOCAL_SUPPRESSION
    ))?;

    // Engine risks carry over between rounds so the goal-directed path
    // can update only the rows whose groups changed.
    let mut risks = vec![0.0f64; rows.len()];
    // Rows whose risk must be re-derived this round; `None` means all
    // (the first round, goal-directed off, or a magic fallback).
    let mut pending_goals: Option<std::collections::BTreeSet<usize>> = None;

    loop {
        // --- extensional component from the current state ---
        let mut facts = Database::new();
        facts.insert("microdb", vec![m.clone()]);
        for attr in &qi_names {
            facts.insert("att", vec![m.clone(), Value::str(attr)]);
            facts.insert(
                "cat",
                vec![m.clone(), Value::str(attr), Value::str("quasi-identifier")],
            );
        }
        for (i, row) in rows.iter().enumerate() {
            for (attr, v) in row {
                facts.insert(
                    "val",
                    vec![m.clone(), Value::Int(i as i64), Value::str(attr), v.clone()],
                );
            }
        }

        // --- #risk: the engine evaluates Algorithm 4 ---
        // The engine groups VSets by equality; the maybe-match widening is
        // applied on the host side over the reified rows, exactly like the
        // =⊥ grouping semantics of §4.3 extends plain equality.
        fn apply_risks(db: &Database, risks: &mut [f64]) {
            for r in db.rows("riskOutput") {
                if let (Some(Value::Int(i)), Some(v)) = (r.first(), r.get(1)) {
                    if let Some(x) = v.as_f64() {
                        if let Some(slot) = risks.get_mut(*i as usize) {
                            *slot = x;
                        }
                    }
                }
            }
        }
        match &pending_goals {
            Some(goal_rows) => {
                // Goal-directed warm round: derive risk only for the rows
                // whose groups the last suppression touched. Every other
                // row's group — and therefore its engine risk — is
                // unchanged and carried over.
                let goals: Vec<vadalog::Atom> = goal_rows
                    .iter()
                    .map(|&i| {
                        vadalog::Atom::new(
                            "riskOutput",
                            vec![
                                vadalog::Term::Const(Value::Int(i as i64)),
                                vadalog::Term::Var("R".to_string()),
                            ],
                        )
                    })
                    .collect();
                let run = Engine::new().run_with_goals(
                    &risk_program,
                    facts.clone(),
                    &goals,
                    vadalog::MagicOptions {
                        closed_groups: true,
                    },
                )?;
                if run.magic.applied {
                    goal_evals += 1;
                    for &i in goal_rows {
                        risks[i] = 0.0;
                    }
                    for r in run.result.db.rows("riskOutput") {
                        if let (Some(Value::Int(i)), Some(v)) = (r.first(), r.get(1)) {
                            if goal_rows.contains(&(*i as usize)) {
                                if let Some(x) = v.as_f64() {
                                    risks[*i as usize] = x;
                                }
                            }
                        }
                    }
                } else {
                    // Documented cold fallback: the rewrite could not
                    // promise the goal slice, and the engine already ran
                    // the full program in its place.
                    goal_fallbacks += usize::from(run.magic.fallback.is_some());
                    full_evals += 1;
                    risks.fill(0.0);
                    apply_risks(&run.result.db, &mut risks);
                }
            }
            None => {
                full_evals += 1;
                let result = Engine::new().run(&risk_program, facts.clone())?;
                risks.fill(0.0);
                apply_risks(&result.db, &mut risks);
            }
        }
        // maybe-match correction: a tuple the engine flags may still reach
        // k through null-tolerant matches
        let qi_matrix: Vec<Vec<Value>> = rows
            .iter()
            .map(|r| r.iter().map(|(_, v)| v.clone()).collect())
            .collect();
        let stats = group_stats(&qi_matrix, None, NullSemantics::MaybeMatch);
        for (i, &c) in stats.count.iter().enumerate() {
            if c >= k {
                risks[i] = 0.0;
            }
        }

        let risky: Vec<usize> = risks
            .iter()
            .enumerate()
            .filter(|(i, &r)| r > 0.5 && rows[*i].iter().any(|(_, v)| !v.is_null()))
            .map(|(i, _)| i)
            .collect();
        if risky.is_empty() || iterations >= max_iterations {
            return Ok(DeclarativeCycleOutcome {
                iterations,
                nulls_injected,
                final_risks: risks,
                anonymized_rows: rows,
                goal_evals,
                full_evals,
                goal_fallbacks,
            });
        }

        // --- #anonymize: assert the trigger facts, let Algorithm 7 chase ---
        // Remember the flagged rows' pre-suppression signatures: their old
        // groups lose a member, so those groups must be re-evaluated too.
        let old_sigs: Option<std::collections::BTreeSet<Vec<Value>>> =
            options.goal_directed.then(|| {
                risky
                    .iter()
                    .map(|&i| rows[i].iter().map(|(_, v)| v.clone()).collect())
                    .collect()
            });
        let mut supp_facts = facts;
        for &i in &risky {
            supp_facts.insert("anonymize", vec![Value::Int(i as i64)]);
            // routing: most selective non-null attribute of the row
            let pick = rows[i]
                .iter()
                .filter(|(_, v)| !v.is_null())
                .min_by_key(|(attr, v)| {
                    rows.iter()
                        .filter(|r| r.iter().any(|(a2, v2)| a2 == attr && v2 == v))
                        .count()
                })
                .map(|(a, _)| a.clone())
                .expect("risky row has a non-null QI");
            supp_facts.insert("suppressattr", vec![Value::Int(i as i64), Value::str(pick)]);
        }
        let result = Engine::new().run(&suppress_program, supp_facts)?;

        // read back the anonymized versions: for each flagged row, the
        // chase derived a second `tuple` fact whose VSet carries the null
        for &i in &risky {
            let versions: Vec<Vec<Value>> = result
                .db
                .rows("tuple")
                .into_iter()
                .filter(|r| r[1] == Value::Int(i as i64))
                .collect();
            let nulled = versions.iter().find(|v| {
                v[2].as_set()
                    .map(|s| {
                        s.iter()
                            .any(|p| p.as_tuple().map(|t| t[1].is_null()).unwrap_or(false))
                    })
                    .unwrap_or(false)
            });
            if let Some(version) = nulled {
                if let Some(set) = version[2].as_set() {
                    for p in set.iter() {
                        if let Some(t) = p.as_tuple() {
                            if let (Some(attr), v) = (t[0].as_str(), &t[1]) {
                                if let Some(cell) = rows[i].iter_mut().find(|(a, _)| a == attr) {
                                    if v.is_null() && !cell.1.is_null() {
                                        nulls_injected += 1;
                                        // re-label host-side so nulls stay
                                        // globally distinct across rounds
                                        cell.1 = Value::Null(nulls_injected as u64 - 1);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        if let Some(mut touched) = old_sigs {
            // The next round only needs the rows living in a touched
            // group: the suppressed rows' old groups (lost members) and
            // their new groups (gained members). Membership is a
            // predicate of the row's *current* signature, so the set is
            // closed under group equality — the precondition for
            // `closed_groups` above.
            for &i in &risky {
                touched.insert(rows[i].iter().map(|(_, v)| v.clone()).collect());
            }
            pending_goals = Some(
                rows.iter()
                    .enumerate()
                    .filter(|(_, row)| {
                        let sig: Vec<Value> = row.iter().map(|(_, v)| v.clone()).collect();
                        touched.contains(&sig)
                    })
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Category;
    use crate::maybe_match::NullSemantics;
    use crate::risk::{
        IndividualRisk, IrEstimator, KAnonymity, MicrodataView, ReIdentification, RiskMeasure, Suda,
    };

    /// Figure-5a-shaped fixture with weights.
    fn fig5() -> (MicrodataDb, MetadataDictionary) {
        let mut db = MicrodataDb::new("fig5", ["Id", "Area", "Sector", "W"]).unwrap();
        let rows = [
            ("t1", "Roma", "Textiles", 10),
            ("t2", "Roma", "Commerce", 20),
            ("t3", "Roma", "Commerce", 20),
            ("t4", "Milano", "Financial", 30),
            ("t5", "Milano", "Financial", 30),
        ];
        for (id, a, s, w) in rows {
            db.push_row(vec![
                Value::str(id),
                Value::str(a),
                Value::str(s),
                Value::Int(w),
            ])
            .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["Id", "Area", "Sector", "W"] {
            dict.register_attr("fig5", a, "");
        }
        dict.set_category("fig5", "Id", Category::Identifier)
            .unwrap();
        dict.set_category("fig5", "Area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("fig5", "Sector", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("fig5", "W", Category::Weight).unwrap();
        (db, dict)
    }

    fn native_view(db: &MicrodataDb, dict: &MetadataDictionary) -> MicrodataView {
        MicrodataView::from_db_with(db, dict, NullSemantics::Standard, None).unwrap()
    }

    #[test]
    fn declarative_kanonymity_matches_native() {
        let (db, dict) = fig5();
        let declarative = run_risk_program(&alg4_kanonymity(2), &db, &dict).unwrap();
        let native = KAnonymity::new(2)
            .evaluate(&native_view(&db, &dict))
            .unwrap();
        assert_eq!(declarative.len(), native.risks.len());
        for (d, n) in declarative.iter().zip(native.risks.iter()) {
            assert!((d - n).abs() < 1e-9, "declarative {d} vs native {n}");
        }
        // tuple 0 (Roma, Textiles) is the lone sample unique
        assert_eq!(declarative[0], 1.0);
        assert_eq!(declarative[1], 0.0);
    }

    #[test]
    fn declarative_reidentification_matches_native() {
        let (db, dict) = fig5();
        let declarative = run_risk_program(ALG3_REIDENTIFICATION, &db, &dict).unwrap();
        let native = ReIdentification.evaluate(&native_view(&db, &dict)).unwrap();
        for (d, n) in declarative.iter().zip(native.risks.iter()) {
            assert!((d - n).abs() < 1e-9, "declarative {d} vs native {n}");
        }
        assert!((declarative[0] - 0.1).abs() < 1e-9); // 1/10
        assert!((declarative[1] - 1.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn declarative_individual_risk_matches_native_simple() {
        let (db, dict) = fig5();
        let declarative = run_risk_program(ALG5_INDIVIDUAL_RISK, &db, &dict).unwrap();
        let native = IndividualRisk::new(IrEstimator::Simple)
            .evaluate(&native_view(&db, &dict))
            .unwrap();
        for (d, n) in declarative.iter().zip(native.risks.iter()) {
            assert!((d - n).abs() < 1e-9, "declarative {d} vs native {n}");
        }
    }

    #[test]
    fn declarative_suda_matches_native() {
        let (db, dict) = fig5();
        let declarative = run_risk_program(&alg6_suda(3), &db, &dict).unwrap();
        let native = Suda::new(3).evaluate(&native_view(&db, &dict)).unwrap();
        for (i, (d, n)) in declarative.iter().zip(native.risks.iter()).enumerate() {
            assert!(
                (d - n).abs() < 1e-9,
                "row {i}: declarative {d} vs native {n}"
            );
        }
    }

    #[test]
    fn declarative_categorization_borrows_categories() {
        let mut dict = MetadataDictionary::new();
        for a in ["Id", "Area", "Sector", "Weight"] {
            dict.register_attr("I&G", a, "");
        }
        let experience = crate::categorize::ExperienceBase::financial_defaults();
        let (cats, violations) =
            run_categorization_program(&dict, "I&G", &experience, 0.8).unwrap();
        assert_eq!(cats.get("Id"), Some(&Category::Identifier));
        assert_eq!(cats.get("Area"), Some(&Category::QuasiIdentifier));
        assert_eq!(cats.get("Weight"), Some(&Category::Weight));
        assert_eq!(violations, 0);
    }

    #[test]
    fn declarative_control_closure_matches_native() {
        use crate::business::OwnershipGraph;
        let edges = vec![
            (Value::str("a"), Value::str("b"), 0.6),
            (Value::str("a"), Value::str("c"), 0.3),
            (Value::str("b"), Value::str("c"), 0.3),
            (Value::str("x"), Value::str("y"), 0.2),
        ];
        let declarative = run_control_program(&edges).unwrap();
        let mut g = OwnershipGraph::new();
        for (x, y, w) in &edges {
            g.add_edge(x.clone(), y.clone(), *w);
        }
        let native = g.control_closure();
        let declarative_set: std::collections::HashSet<(Value, Value)> =
            declarative.into_iter().collect();
        assert_eq!(declarative_set, native);
        assert!(declarative_set.contains(&(Value::str("a"), Value::str("c"))));
    }

    #[test]
    fn declarative_cycle_reaches_k_anonymity_on_fig5() {
        let (db, dict) = fig5();
        let out = run_declarative_cycle(&db, &dict, 2, 20).unwrap();
        assert!(out.iterations >= 1);
        assert!(out.nulls_injected >= 1);
        assert!(
            out.final_risks.iter().all(|&r| r <= 0.5),
            "risks: {:?}",
            out.final_risks
        );
        // tuple 0 (Roma/Textiles, the sample unique) must carry a null now
        assert!(out.anonymized_rows[0].iter().any(|(_, v)| v.is_null()));
        // untouched safe tuples keep their constants
        assert!(out.anonymized_rows[1].iter().all(|(_, v)| !v.is_null()));
    }

    #[test]
    fn declarative_cycle_matches_native_null_count_on_fig5() {
        let (db, dict) = fig5();
        let declarative = run_declarative_cycle(&db, &dict, 2, 20).unwrap();
        let risk = crate::risk::KAnonymity::new(2);
        let anonymizer = crate::anonymize::LocalSuppression::new(
            crate::anonymize::AttributeOrder::MostSelectiveFirst,
        );
        let native = crate::cycle::AnonymizationCycle::new(
            &risk,
            &anonymizer,
            crate::cycle::CycleConfig::default(),
        )
        .run(&db, &dict)
        .unwrap();
        assert_eq!(declarative.nulls_injected, native.nulls_injected);
    }

    #[test]
    fn goal_directed_cycle_is_bit_identical_to_full_cycle() {
        // The tentpole equivalence: goal-directed warm rounds must leave
        // no observable trace — risks, released rows, iteration count and
        // null count all match the full evaluation exactly.
        let (db, dict) = fig5();
        let full = run_declarative_cycle(&db, &dict, 2, 20).unwrap();
        let goal = run_declarative_cycle_with(
            &db,
            &dict,
            2,
            20,
            DeclarativeCycleOptions {
                goal_directed: true,
            },
        )
        .unwrap();
        assert_eq!(goal.iterations, full.iterations);
        assert_eq!(goal.nulls_injected, full.nulls_injected);
        assert_eq!(goal.final_risks, full.final_risks, "bit-identical risks");
        assert_eq!(goal.anonymized_rows, full.anonymized_rows);
        // and it actually took the warm path: one full eval up front,
        // goal-directed rounds after (no refusals on ALG2+ALG4)
        assert_eq!(goal.full_evals, 1);
        assert!(goal.goal_evals >= 1, "outcome: {goal:?}");
        assert_eq!(goal.goal_fallbacks, 0);
        assert_eq!(full.goal_evals, 0);
        assert_eq!(full.full_evals, full.iterations + 1);
    }

    #[test]
    fn declarative_cycle_is_a_noop_on_safe_tables() {
        // duplicate every row: everything is 2-anonymous already
        let (db, dict) = fig5();
        let mut doubled = MicrodataDb::new("fig5", db.attributes().to_vec()).unwrap();
        for i in 0..db.len() {
            doubled.push_row(db.row(i).unwrap().to_vec()).unwrap();
            doubled.push_row(db.row(i).unwrap().to_vec()).unwrap();
        }
        let out = run_declarative_cycle(&doubled, &dict, 2, 20).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.nulls_injected, 0);
    }

    #[test]
    fn suppression_program_splices_null() {
        // reify, flag tuple 0, suppress its Sector
        let (db, dict) = fig5();
        let mut source = String::from(ALG2_TUPLE_REIFICATION);
        source.push_str(ALG7_LOCAL_SUPPRESSION);
        let program = parse_program(&source).unwrap();
        let mut facts = microdata_to_facts(&db, &dict).unwrap();
        facts.insert("anonymize", vec![Value::Int(0)]);
        facts.insert("suppressattr", vec![Value::Int(0), Value::str("Sector")]);
        let result = Engine::new().run(&program, facts).unwrap();
        // tuple 0 now has two versions: original and suppressed
        let versions: Vec<Vec<Value>> = result
            .db
            .rows("tuple")
            .into_iter()
            .filter(|r| r[1] == Value::Int(0))
            .collect();
        assert_eq!(versions.len(), 2);
        let has_null_version = versions.iter().any(|v| {
            v[2].as_set()
                .map(|s| {
                    s.iter().any(|p| {
                        p.as_tuple()
                            .map(|t| t[0] == Value::str("Sector") && t[1].is_null())
                            .unwrap_or(false)
                    })
                })
                .unwrap_or(false)
        });
        assert!(has_null_version);
    }
}
