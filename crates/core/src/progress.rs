//! Convergence tracking and time-to-convergence estimation for the
//! anonymization cycle (DESIGN.md §11).
//!
//! The cycle drives the tuples-above-`T` count toward zero, one minimal
//! action batch per iteration. That series — `rows_at_risk` as a
//! function of the iteration number — is the best available signal for
//! "how much longer will this run take?". [`estimate`] fits a
//! least-squares line through the most recent window of the series and
//! extrapolates it to zero:
//!
//! - **trend** — the fitted slope, in rows per iteration (negative when
//!   the cycle is making progress);
//! - **eta_iterations** — `ceil(rows / -trend)` when the trend is
//!   negative, `Some(0)` once the series reached zero, `None` when the
//!   series is flat or rising (no honest extrapolation exists);
//! - **confidence** — the fit's R² damped by a small-sample factor
//!   `1 - 1/n`, in `[0, 1]`; the estimator's own statement of how much
//!   to trust the ETA.
//!
//! [`ProgressEstimate::eta_band`] widens the point estimate into an
//! interval that grows as confidence shrinks — the acceptance contract
//! for `vadasa_status` is that the true remaining-iterations count of a
//! resumed run falls inside this band.

/// How many trailing samples the least-squares fit considers. Older
/// samples describe a different phase of the run (e.g. the heuristic
/// switching from suppression to recoding) and would bias the slope.
pub const FIT_WINDOW: usize = 16;

/// A convergence estimate fitted from the rows-at-risk series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressEstimate {
    /// Most recent rows-above-threshold sample.
    pub rows_at_risk: u64,
    /// Fitted slope of the series, in rows per iteration. Negative
    /// means converging.
    pub trend: f64,
    /// Estimated iterations until `rows_at_risk` reaches zero.
    /// `Some(0)` when already converged; `None` when the trend is flat
    /// or rising.
    pub eta_iterations: Option<u64>,
    /// Trust in the ETA, in `[0, 1]`: R² of the fit damped by a
    /// small-sample factor.
    pub confidence: f64,
}

impl ProgressEstimate {
    /// The inclusive `[lo, hi]` iteration band the true remaining count
    /// is expected to fall in: the point estimate widened by
    /// `ceil(eta · (1 - confidence)) + 1` on each side (clamped at 0).
    /// Returns `None` when there is no point estimate.
    pub fn eta_band(&self) -> Option<(u64, u64)> {
        let eta = self.eta_iterations?;
        let slack = ((eta as f64) * (1.0 - self.confidence)).ceil() as u64 + 1;
        Some((eta.saturating_sub(slack), eta.saturating_add(slack)))
    }
}

/// Fit the trailing [`FIT_WINDOW`] samples of a rows-at-risk series and
/// extrapolate to convergence. `series[i]` is the rows-above-threshold
/// count at the start of iteration `i` (or any evenly spaced sampling).
/// Returns `None` on an empty series; never panics.
pub fn estimate(series: &[u64]) -> Option<ProgressEstimate> {
    let last = *series.last()?;
    if last == 0 {
        return Some(ProgressEstimate {
            rows_at_risk: 0,
            trend: 0.0,
            eta_iterations: Some(0),
            confidence: 1.0,
        });
    }
    let window = &series[series.len().saturating_sub(FIT_WINDOW)..];
    let n = window.len();
    if n < 2 {
        // one sample: no slope, no ETA, no trust
        return Some(ProgressEstimate {
            rows_at_risk: last,
            trend: 0.0,
            eta_iterations: None,
            confidence: 0.0,
        });
    }
    // Least squares of y = a + b·x over x = 0..n.
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = window.iter().map(|&y| y as f64).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (i, &y) in window.iter().enumerate() {
        let dx = i as f64 - mean_x;
        let dy = y as f64 - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    // n ≥ 2 ⇒ sxx > 0; syy == 0 means a perfectly flat series.
    let slope = sxy / sxx;
    let r2 = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        0.0
    };
    let confidence = (r2 * (1.0 - 1.0 / nf)).clamp(0.0, 1.0);
    let eps = 1e-9;
    let eta_iterations = if slope < -eps {
        Some((last as f64 / -slope).ceil() as u64)
    } else {
        None
    };
    Some(ProgressEstimate {
        rows_at_risk: last,
        trend: slope,
        eta_iterations,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_has_no_estimate() {
        assert_eq!(estimate(&[]), None);
    }

    #[test]
    fn converged_series_is_certain() {
        let e = estimate(&[5, 2, 0]).unwrap();
        assert_eq!(e.rows_at_risk, 0);
        assert_eq!(e.eta_iterations, Some(0));
        assert_eq!(e.confidence, 1.0);
        assert_eq!(e.eta_band(), Some((0, 1)));
    }

    #[test]
    fn single_sample_has_no_trend() {
        let e = estimate(&[7]).unwrap();
        assert_eq!(e.rows_at_risk, 7);
        assert_eq!(e.trend, 0.0);
        assert_eq!(e.eta_iterations, None);
        assert_eq!(e.confidence, 0.0);
        assert_eq!(e.eta_band(), None);
    }

    #[test]
    fn linear_decay_extrapolates_exactly() {
        // 10, 8, 6, 4: slope −2, R² = 1, confidence = 1·(1 − 1/4) = 0.75,
        // ETA = ceil(4 / 2) = 2.
        let e = estimate(&[10, 8, 6, 4]).unwrap();
        assert_eq!(e.rows_at_risk, 4);
        assert!((e.trend - (-2.0)).abs() < 1e-12, "trend {}", e.trend);
        assert_eq!(e.eta_iterations, Some(2));
        assert!((e.confidence - 0.75).abs() < 1e-12, "conf {}", e.confidence);
        // slack = ceil(2·0.25) + 1 = 2 → band [0, 4]
        assert_eq!(e.eta_band(), Some((0, 4)));
    }

    #[test]
    fn flat_and_rising_series_decline_to_estimate() {
        let flat = estimate(&[5, 5, 5, 5]).unwrap();
        assert_eq!(flat.eta_iterations, None);
        assert_eq!(flat.confidence, 0.0);
        let rising = estimate(&[2, 4, 6]).unwrap();
        assert_eq!(rising.eta_iterations, None);
        assert!(rising.trend > 0.0);
    }

    #[test]
    fn fit_uses_only_the_trailing_window() {
        // a long flat prefix followed by a clean decay: the window must
        // see only the decay
        let mut series = vec![100u64; 50];
        for k in 0..FIT_WINDOW as u64 {
            series.push(100 - 5 * (k + 1));
        }
        let e = estimate(&series).unwrap();
        assert!((e.trend - (-5.0)).abs() < 1e-9, "trend {}", e.trend);
        assert_eq!(e.rows_at_risk, 100 - 5 * FIT_WINDOW as u64);
    }

    #[test]
    fn noisy_decay_keeps_confidence_below_perfect() {
        let e = estimate(&[10, 9, 6, 5, 3]).unwrap();
        assert!(e.trend < 0.0);
        assert!(e.confidence > 0.5 && e.confidence < 1.0);
        let (lo, hi) = e.eta_band().unwrap();
        let eta = e.eta_iterations.unwrap();
        assert!(lo <= eta && eta <= hi);
    }
}
