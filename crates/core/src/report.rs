//! Dataset-level confidentiality reporting (desiderata iii and vi).
//!
//! Vada-SA is *preemptive*: before a microdata DB is shared, analysts see
//! a confidentiality score for the whole dataset, not just per-tuple
//! flags. This module aggregates any [`RiskReport`] into the global
//! indicators used in SDC practice and renders them — together with the
//! most exposed tuples and their explanations — as a plain-text summary
//! suitable for an RDC review meeting.

use crate::cycle::CycleProfile;
use crate::maybe_match::NullSemantics;
use crate::risk::{MicrodataView, RiskReport};
use std::fmt::Write;

/// Global disclosure indicators for one (dataset, measure) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRisk {
    /// Measure that produced the underlying per-tuple risks.
    pub measure: String,
    /// Number of tuples.
    pub tuples: usize,
    /// Expected number of re-identifications `Σ ρ_t` (the standard global
    /// risk indicator of Benedetti–Franconi practice).
    pub expected_reidentifications: f64,
    /// Share of tuples above the threshold.
    pub risky_share: f64,
    /// Maximum per-tuple risk.
    pub max_risk: f64,
    /// Mean per-tuple risk.
    pub mean_risk: f64,
    /// Sample uniques on the full quasi-identifier combination.
    pub sample_uniques: usize,
    /// Histogram of equivalence-class sizes: `(upper bound, tuples)`
    /// buckets 1, 2, 3–5, 6–10, >10.
    pub class_histogram: [(usize, usize); 5],
}

/// Compute the dataset-level indicators from a view and a risk report.
pub fn dataset_risk(view: &MicrodataView, report: &RiskReport, threshold: f64) -> DatasetRisk {
    let stats = view.group_stats_with(None, NullSemantics::Standard);
    let sample_uniques = stats.count.iter().filter(|&&c| c == 1).count();
    let mut histogram = [(1usize, 0usize), (2, 0), (5, 0), (10, 0), (usize::MAX, 0)];
    for &c in &stats.count {
        let bucket = match c {
            1 => 0,
            2 => 1,
            3..=5 => 2,
            6..=10 => 3,
            _ => 4,
        };
        histogram[bucket].1 += 1;
    }
    DatasetRisk {
        measure: report.measure.clone(),
        tuples: view.len(),
        expected_reidentifications: report.risks.iter().sum(),
        risky_share: if view.is_empty() {
            0.0
        } else {
            report.risky_tuples(threshold).len() as f64 / view.len() as f64
        },
        max_risk: report.max_risk(),
        mean_risk: report.mean_risk(),
        sample_uniques,
        class_histogram: histogram,
    }
}

/// Render a full pre-exchange summary: global indicators plus the `top_n`
/// most exposed tuples with the per-tuple diagnostics of the measure.
pub fn render_summary(
    view: &MicrodataView,
    report: &RiskReport,
    threshold: f64,
    top_n: usize,
) -> String {
    let global = dataset_risk(view, report, threshold);
    let mut out = String::new();
    let _ = writeln!(out, "confidentiality summary — measure: {}", global.measure);
    let _ = writeln!(
        out,
        "  tuples: {}   quasi-identifiers: {}   threshold T: {threshold}",
        global.tuples,
        view.width()
    );
    let _ = writeln!(
        out,
        "  expected re-identifications Σρ: {:.2}   mean risk: {:.4}   max risk: {:.4}",
        global.expected_reidentifications, global.mean_risk, global.max_risk
    );
    let _ = writeln!(
        out,
        "  risky share: {:.2}%   sample uniques: {}",
        global.risky_share * 100.0,
        global.sample_uniques
    );
    let labels = ["1", "2", "3-5", "6-10", ">10"];
    let _ = write!(out, "  class sizes: ");
    for (label, (_, n)) in labels.iter().zip(global.class_histogram.iter()) {
        let _ = write!(out, "[{label}]={n} ");
    }
    out.push('\n');

    // top-n riskiest tuples with explanations
    let mut order: Vec<usize> = (0..report.risks.len()).collect();
    order.sort_by(|&a, &b| report.risks[b].total_cmp(&report.risks[a]));
    let shown = order
        .into_iter()
        .take(top_n)
        .filter(|&i| report.risks[i] > 0.0)
        .collect::<Vec<_>>();
    if !shown.is_empty() {
        let _ = writeln!(out, "  most exposed tuples:");
        for i in shown {
            let d = &report.details[i];
            let _ = writeln!(
                out,
                "    tuple {:>5}: risk {:.4}  (class size {}, weight sum {:.1}{}{})",
                i,
                report.risks[i],
                d.frequency,
                d.weight_sum,
                if d.note.is_empty() { "" } else { " — " },
                d.note
            );
        }
    }
    out
}

/// Render the anonymization cycle's per-iteration telemetry as a
/// plain-text convergence table: one line per iteration with the risk
/// landscape, the heuristic decision, the actions taken and the share of
/// time spent evaluating risk.
pub fn render_profile(profile: &CycleProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycle profile — {} iteration(s) in {:.3} ms, {:.3} ms ({:.1}%) in risk evaluation",
        profile.iterations.len(),
        profile.total_ns as f64 / 1e6,
        profile.risk_eval_ns as f64 / 1e6,
        if profile.total_ns == 0 {
            0.0
        } else {
            100.0 * profile.risk_eval_ns as f64 / profile.total_ns as f64
        }
    );
    let _ = writeln!(
        out,
        "{:>5}  {:>6}  {:>5}  {:>8}  {:>8}  {:>6}  {:>6}  {:>9}  decision",
        "iter", "risky", "exh.", "mean", "max", "suppr", "recode", "risk ms"
    );
    for r in &profile.iterations {
        let _ = writeln!(
            out,
            "{:>5}  {:>6}  {:>5}  {:>8.4}  {:>8.4}  {:>6}  {:>6}  {:>9.3}  {}",
            r.iteration,
            r.risky,
            r.exhausted,
            r.mean_risk,
            r.max_risk,
            r.suppressions,
            r.recodings,
            r.risk_eval_ns as f64 / 1e6,
            r.heuristic
        );
    }
    let w = &profile.warm;
    if *w != Default::default() {
        let _ = writeln!(
            out,
            "warm-start — {} warm / {} cold evaluation(s), {} fact(s) patched, \
             {} stratum(s) skipped, {} fallback(s) to cold, {} reused byte(s), \
             {} disk restore(s), {} persist error(s)",
            w.warm_evals,
            w.cold_evals,
            w.patched_facts,
            w.strata_skipped,
            w.fallback_to_cold,
            w.reused_index_bytes,
            w.disk_restores,
            w.persist_errors
        );
    }
    let j = &profile.journal;
    if *j != Default::default() {
        let _ = writeln!(
            out,
            "journal — {} record(s) / {} byte(s) written, {} fsync(s) (+{} dir), {} snapshot(s); \
             recovery replayed {} action(s), truncated {} byte(s), discarded {} action(s), \
             {} i/o error(s) absorbed",
            j.records_written,
            j.bytes_written,
            j.fsyncs,
            j.dir_fsyncs,
            j.snapshots_written,
            j.replayed_actions,
            j.truncated_bytes,
            j.discarded_actions,
            j.io_errors
        );
    }
    if let Some(p) = &profile.progress {
        let eta = match p.eta_iterations {
            Some(0) => "converged".to_string(),
            Some(n) => format!("~{n} iteration(s) to convergence"),
            None => "no downward trend".to_string(),
        };
        let _ = writeln!(
            out,
            "progress — {} row(s) at risk, trend {:+.2} row(s)/iteration, {eta} \
             (confidence {:.0}%)",
            p.rows_at_risk,
            p.trend,
            p.confidence * 100.0
        );
    }
    out
}

/// Render a reasoning run's [`EngineProfile`](vadalog::EngineProfile) the
/// way [`render_profile`] renders the cycle's: the engine's own table plus
/// a one-line summary of the join core (index probes vs. fallback scans,
/// interner hits, planner reorders, parallel rounds). Benchmarks and CLI
/// reports use this to show *why* an engine run got faster, not only that
/// it did.
pub fn render_engine_profile(profile: &vadalog::EngineProfile) -> String {
    let mut out = profile.render_table();
    let probed = profile.index_probes + profile.index_scans;
    let _ = writeln!(
        out,
        "join accesses — {:.1}% indexed ({} probe(s) / {} scan(s))",
        if probed == 0 {
            0.0
        } else {
            100.0 * profile.index_probes as f64 / probed as f64
        },
        profile.index_probes,
        profile.index_scans,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::IterationRecord;
    use crate::risk::test_support::view_of;
    use crate::risk::{KAnonymity, ReIdentification, RiskMeasure};

    fn sample_view() -> MicrodataView {
        view_of(
            vec![
                vec!["a"],
                vec!["a"],
                vec!["a"],
                vec!["b"],
                vec!["b"],
                vec!["solo"],
            ],
            Some(vec![30.0, 30.0, 30.0, 60.0, 60.0, 4.0]),
        )
    }

    #[test]
    fn indicators_are_computed() {
        let view = sample_view();
        let report = ReIdentification.evaluate(&view).unwrap();
        let g = dataset_risk(&view, &report, 0.1);
        assert_eq!(g.tuples, 6);
        assert_eq!(g.sample_uniques, 1);
        // Σρ = 3×(1/90) + 2×(1/120) + 1/4
        let expected = 3.0 / 90.0 + 2.0 / 120.0 + 0.25;
        assert!((g.expected_reidentifications - expected).abs() < 1e-9);
        assert!((g.max_risk - 0.25).abs() < 1e-12);
        assert!((g.risky_share - 1.0 / 6.0).abs() < 1e-12);
        // histogram: class sizes 3,3,3,2,2,1 → [1]=1, [2]=2, [3-5]=3
        assert_eq!(g.class_histogram[0].1, 1);
        assert_eq!(g.class_histogram[1].1, 2);
        assert_eq!(g.class_histogram[2].1, 3);
    }

    #[test]
    fn summary_text_names_the_worst_tuple() {
        let view = sample_view();
        let report = ReIdentification.evaluate(&view).unwrap();
        let text = render_summary(&view, &report, 0.1, 3);
        assert!(text.contains("expected re-identifications"));
        assert!(text.contains("tuple     5: risk 0.2500"));
        assert!(text.contains("[1]=1"));
    }

    #[test]
    fn kanonymity_summary_counts_risky_share() {
        let view = sample_view();
        let report = KAnonymity::new(2).evaluate(&view).unwrap();
        let g = dataset_risk(&view, &report, 0.5);
        assert!((g.risky_share - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(g.expected_reidentifications, 1.0);
    }

    #[test]
    fn profile_table_lists_every_iteration() {
        let profile = CycleProfile {
            iterations: vec![
                IterationRecord {
                    iteration: 0,
                    risky: 3,
                    mean_risk: 0.4,
                    max_risk: 1.0,
                    heuristic: "fifo/all-risky → row 2".into(),
                    targets: 3,
                    suppressions: 3,
                    risk_eval_ns: 2_000_000,
                    dur_ns: 3_000_000,
                    ..IterationRecord::default()
                },
                IterationRecord {
                    iteration: 1,
                    heuristic: "converged".into(),
                    risk_eval_ns: 1_000_000,
                    dur_ns: 1_200_000,
                    ..IterationRecord::default()
                },
            ],
            risk_eval_ns: 3_000_000,
            total_ns: 4_200_000,
            fallback: None,
            warm: Default::default(),
            journal: Default::default(),
            progress: None,
        };
        let text = render_profile(&profile);
        assert!(text.contains("2 iteration(s)"));
        assert!(text.contains("fifo/all-risky → row 2"));
        assert!(text.contains("converged"));
        assert!(text.contains("(71.4%) in risk evaluation"));
        // all-zero warm counters stay silent (cold runs render as before)
        assert!(!text.contains("warm-start"));
        // same for an unjournaled run
        assert!(!text.contains("journal —"));
    }

    #[test]
    fn profile_table_renders_journal_counters() {
        let profile = CycleProfile {
            journal: crate::journal::JournalProfile {
                records_written: 11,
                bytes_written: 640,
                fsyncs: 11,
                dir_fsyncs: 3,
                snapshots_written: 2,
                snapshot_bytes: 512,
                replayed_actions: 3,
                truncated_bytes: 17,
                discarded_actions: 1,
                io_errors: 0,
            },
            ..CycleProfile::default()
        };
        let text = render_profile(&profile);
        assert!(text.contains("11 record(s) / 640 byte(s) written"));
        assert!(text.contains("2 snapshot(s)"));
        assert!(text.contains("replayed 3 action(s)"));
        assert!(text.contains("truncated 17 byte(s)"));
    }

    #[test]
    fn profile_table_renders_warm_counters() {
        let profile = CycleProfile {
            warm: crate::cycle::WarmCycleProfile {
                warm_evals: 9,
                cold_evals: 1,
                patched_facts: 12,
                strata_skipped: 0,
                fallback_to_cold: 0,
                reused_index_bytes: 4096,
                ..Default::default()
            },
            ..CycleProfile::default()
        };
        let text = render_profile(&profile);
        assert!(text.contains("9 warm / 1 cold evaluation(s)"));
        assert!(text.contains("12 fact(s) patched"));
        assert!(text.contains("4096 reused byte(s)"));
    }

    #[test]
    fn empty_view_is_handled() {
        let view = view_of(vec![], None);
        let report = RiskReport {
            measure: "test".into(),
            risks: vec![],
            details: vec![],
        };
        let g = dataset_risk(&view, &report, 0.5);
        assert_eq!(g.tuples, 0);
        assert_eq!(g.risky_share, 0.0);
        let text = render_summary(&view, &report, 0.5, 5);
        assert!(text.contains("tuples: 0"));
    }
}
