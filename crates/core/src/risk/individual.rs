//! Individual risk estimation (paper Algorithm 5; Benedetti–Franconi).
//!
//! The re-identification model pretends the sampling weight equals the
//! population frequency `F_k` of a quasi-identifier combination; in truth
//! `F_k` is unknown and must be inferred from the *sample* frequency
//! `f_k`. Following Benedetti & Franconi (1998) and Franconi & Polettini
//! (2004), the population frequency given the sample frequency is modelled
//! with a negative-binomial posterior and the tuple risk is the posterior
//! mean of `1/F_k`:
//!
//! ```text
//! ρ = E[1/F_k | f_k]   with   F_k − f_k ~ NegBinomial(f_k, p̂_k),
//! p̂_k = f_k / Σ_{t∈k} W_t
//! ```
//!
//! Three estimators are provided:
//!
//! - [`IrEstimator::Simple`] — the paper's Algorithm 5 shortcut
//!   `ρ = f_k / Σ W_t` (i.e. `1/λ` with `λ = ΣW/f`);
//! - [`IrEstimator::PosteriorMean`] — the exact series for the
//!   negative-binomial posterior mean (closed forms exist for `f = 1, 2`;
//!   the series reproduces them, see tests);
//! - [`IrEstimator::SimulatedLibrary`] — Monte-Carlo sampling from the
//!   posterior. This deliberately mimics the paper's "off-the-shelf
//!   statistical library" plug-in whose interop overhead dominates the
//!   individual-risk line of Figure 7e.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};
use crate::maybe_match::GroupStats;

/// Which estimator of `E[1/F_k | f_k]` to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrEstimator {
    /// `f_k / Σ W_t` — the simple moment estimator of Algorithm 5.
    Simple,
    /// Exact negative-binomial posterior mean (truncated series).
    PosteriorMean,
    /// Monte-Carlo estimate with the given sample count, emulating an
    /// external statistical library (slow by design; see Figure 7e).
    SimulatedLibrary {
        /// Number of posterior draws per combination.
        samples: u32,
    },
}

/// Individual risk measure (Algorithm 5).
#[derive(Debug, Clone, Copy)]
pub struct IndividualRisk {
    /// Estimation strategy.
    pub estimator: IrEstimator,
}

impl Default for IndividualRisk {
    fn default() -> Self {
        IndividualRisk {
            estimator: IrEstimator::PosteriorMean,
        }
    }
}

impl IndividualRisk {
    /// Individual risk with the chosen estimator.
    pub fn new(estimator: IrEstimator) -> Self {
        IndividualRisk { estimator }
    }

    /// Weights are mandatory and must be positive/finite. Shared by cold
    /// and warm paths.
    fn validate_weights(view: &MicrodataView) -> Result<(), RiskError> {
        let Some(weights) = &view.weights else {
            return Err(RiskError::View(
                "individual risk requires sampling weights".into(),
            ));
        };
        if let Some(bad) = weights.iter().find(|x| !x.is_finite() || **x <= 0.0) {
            return Err(RiskError::View(format!(
                "sampling weights must be positive and finite, found {bad}"
            )));
        }
        Ok(())
    }

    /// Map group statistics to the individual-risk report. Shared by
    /// [`RiskMeasure::evaluate`] and the warm-start hook so identical
    /// statistics yield bit-identical reports.
    fn report(&self, stats: &GroupStats) -> RiskReport {
        let n = stats.count.len();
        let mut risks = Vec::with_capacity(n);
        let mut details = Vec::with_capacity(n);
        let mut rng = XorShift::new(0x5eed_cafe_f00d_1234);
        // rows of the same equivalence class share (f, p): memoize so the
        // expensive estimators run once per class, not once per row
        let mut memo: std::collections::HashMap<(usize, u64), f64> =
            std::collections::HashMap::new();
        for (&f, &wsum) in stats.count.iter().zip(stats.weight_sum.iter()) {
            // p̂ is a probability: weight sums below the sample frequency
            // (possible with weights < 1) are clamped.
            let p = (f as f64 / wsum).clamp(f64::MIN_POSITIVE, 1.0);
            let r = *memo
                .entry((f, p.to_bits()))
                .or_insert_with(|| match self.estimator {
                    IrEstimator::Simple => p,
                    IrEstimator::PosteriorMean => bf_posterior_mean(f, p),
                    IrEstimator::SimulatedLibrary { samples } => {
                        simulate_posterior_mean(f, p, samples, &mut rng)
                    }
                });
            risks.push(r.min(1.0));
            details.push(TupleRiskDetail {
                frequency: f,
                weight_sum: wsum,
                note: format!("p̂={p:.6}"),
            });
        }
        RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        }
    }
}

impl RiskMeasure for IndividualRisk {
    fn name(&self) -> &str {
        "individual-risk"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        Self::validate_weights(view)?;
        let stats = view.group_stats();
        Ok(self.report(&stats))
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        let weights = view.weights.as_ref()?;
        if weights.len() != view.len() {
            return None;
        }
        let (f, wsum) = super::tuple_group(view, row);
        if f == 0 || wsum <= 0.0 {
            return Some(1.0);
        }
        let p = (f as f64 / wsum).clamp(f64::MIN_POSITIVE, 1.0);
        let r = match self.estimator {
            IrEstimator::Simple => p,
            // the incremental fast path always uses the exact series; the
            // simulated-library overhead only applies to full evaluations
            IrEstimator::PosteriorMean | IrEstimator::SimulatedLibrary { .. } => {
                bf_posterior_mean(f, p)
            }
        };
        Some(r.min(1.0))
    }

    fn tuple_risk_from_stats(
        &self,
        view: &MicrodataView,
        stats: &GroupStats,
        row: usize,
    ) -> Option<f64> {
        let weights = view.weights.as_ref()?;
        if weights.len() != view.len() {
            return None;
        }
        let f = stats.count[row];
        let wsum = stats.weight_sum[row];
        if f == 0 || wsum <= 0.0 {
            return Some(1.0);
        }
        let p = (f as f64 / wsum).clamp(f64::MIN_POSITIVE, 1.0);
        let r = match self.estimator {
            IrEstimator::Simple => p,
            // mirrors `evaluate_tuple`: the incremental fast path always
            // uses the exact series
            IrEstimator::PosteriorMean | IrEstimator::SimulatedLibrary { .. } => {
                bf_posterior_mean(f, p)
            }
        };
        Some(r.min(1.0))
    }

    fn report_from_groups(
        &self,
        view: &MicrodataView,
        stats: &GroupStats,
    ) -> Option<Result<RiskReport, RiskError>> {
        // The simulated library deliberately models an out-of-process
        // estimator (Figure 7e): serving it from patched statistics would
        // skip exactly the overhead it exists to measure, so it opts out
        // and the cycle falls back to a cold evaluation.
        if matches!(self.estimator, IrEstimator::SimulatedLibrary { .. }) {
            return None;
        }
        if let Err(e) = Self::validate_weights(view) {
            return Some(Err(e));
        }
        Some(Ok(self.report(stats)))
    }
}

/// Exact posterior mean `E[1/F | f]` under the shifted negative-binomial
/// `P(F = f + j) ∝ C(f+j−1, j) p^f (1−p)^j`, computed as a truncated
/// series. `f ≥ 1`, `0 < p ≤ 1`.
pub fn bf_posterior_mean(f: usize, p: f64) -> f64 {
    assert!(f >= 1, "sample frequency must be at least 1");
    let p = p.clamp(f64::MIN_POSITIVE, 1.0);
    if (p - 1.0).abs() < 1e-15 {
        return 1.0 / f as f64;
    }
    let q = 1.0 - p;
    let fk = f as f64;
    // t_j = C(f+j-1, j) p^f q^j / (f+j); t_0 = p^f / f
    let mut term = p.powi(f as i32) / fk;
    let mut sum = term;
    let mut j = 0f64;
    // Ratio: t_{j+1}/t_j = q * (f+j)/(j+1) * (f+j)/(f+j+1)
    for _ in 0..5_000_000 {
        let ratio = q * (fk + j) / (j + 1.0) * (fk + j) / (fk + j + 1.0);
        term *= ratio;
        sum += term;
        j += 1.0;
        if term < sum * 1e-14 {
            break;
        }
    }
    sum
}

/// Minimal xorshift64* generator: keeps the crate dependency-free while
/// giving the "simulated library" mode reproducible draws.
struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Monte-Carlo estimate of `E[1/F | f]`: draw `F = f + Σ_{i<f} Geom(p)`
/// (negative binomial as a sum of geometrics) and average `1/F`.
fn simulate_posterior_mean(f: usize, p: f64, samples: u32, rng: &mut XorShift) -> f64 {
    if (p - 1.0).abs() < 1e-12 {
        return 1.0 / f as f64;
    }
    let samples = samples.max(1);
    let ln_q = (1.0 - p).ln();
    let mut acc = 0.0;
    for _ in 0..samples {
        let mut extra = 0u64;
        for _ in 0..f {
            // geometric via inverse transform
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            extra += (u.ln() / ln_q).floor() as u64;
        }
        acc += 1.0 / (f as u64 + extra) as f64;
    }
    acc / samples as f64
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;

    #[test]
    fn closed_form_f1_matches_series() {
        // f = 1: E[1/F] = (p/(1-p)) ln(1/p)
        for &p in &[0.05f64, 0.1, 0.3, 0.5, 0.9] {
            let closed = p / (1.0 - p) * (1.0 / p).ln();
            let series = bf_posterior_mean(1, p);
            assert!(
                (closed - series).abs() < 1e-9,
                "p={p}: closed={closed}, series={series}"
            );
        }
    }

    #[test]
    fn closed_form_f2_matches_series() {
        // f = 2: E[1/F] = p/(1-p) - (p/(1-p))^2 ln(1/p)
        for &p in &[0.05f64, 0.2, 0.5, 0.8] {
            let r = p / (1.0 - p);
            let closed = r - r * r * (1.0 / p).ln();
            let series = bf_posterior_mean(2, p);
            assert!(
                (closed - series).abs() < 1e-9,
                "p={p}: closed={closed}, series={series}"
            );
        }
    }

    #[test]
    fn census_case_p_equals_one() {
        // Full enumeration: the sample IS the population, risk is 1/f.
        assert!((bf_posterior_mean(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((bf_posterior_mean(4, 1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn posterior_mean_is_below_naive_reciprocal() {
        // E[1/F|f] < 1/f whenever p < 1 (the population can only be larger)
        for &f in &[1usize, 2, 3, 5] {
            for &p in &[0.1, 0.5, 0.9] {
                assert!(bf_posterior_mean(f, p) < 1.0 / f as f64 + 1e-12);
            }
        }
    }

    #[test]
    fn posterior_mean_increases_with_p() {
        let lo = bf_posterior_mean(1, 0.1);
        let hi = bf_posterior_mean(1, 0.6);
        assert!(hi > lo);
    }

    #[test]
    fn monte_carlo_agrees_with_series() {
        let mut rng = XorShift::new(42);
        for &(f, p) in &[(1usize, 0.3f64), (2, 0.5), (3, 0.7)] {
            let exact = bf_posterior_mean(f, p);
            let mc = simulate_posterior_mean(f, p, 200_000, &mut rng);
            assert!(
                (exact - mc).abs() < 0.01,
                "f={f}, p={p}: exact={exact}, mc={mc}"
            );
        }
    }

    #[test]
    fn simple_estimator_is_sampling_fraction() {
        let view = view_of(vec![vec!["a"], vec!["a"]], Some(vec![10.0, 30.0]));
        let report = IndividualRisk::new(IrEstimator::Simple)
            .evaluate(&view)
            .unwrap();
        // f=2, Σw=40 → p = 0.05
        assert!((report.risks[0] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn missing_weights_is_an_error() {
        let view = view_of(vec![vec!["a"]], None);
        assert!(IndividualRisk::default().evaluate(&view).is_err());
    }

    #[test]
    fn unique_heavy_tuple_is_low_risk() {
        // weight 100, f=1 → p=0.01: many look-alikes in the population
        let view = view_of(vec![vec!["a"], vec!["b"]], Some(vec![100.0, 2.0]));
        let report = IndividualRisk::default().evaluate(&view).unwrap();
        assert!(report.risks[0] < 0.06);
        // weight 2, f=1 → p=0.5: few look-alikes, high risk
        assert!(report.risks[1] > 0.5);
    }

    #[test]
    fn risks_are_clamped_to_unit_interval() {
        let view = view_of(vec![vec!["a"]], Some(vec![0.5]));
        let report = IndividualRisk::default().evaluate(&view).unwrap();
        assert!(report.risks[0] <= 1.0);
    }
}
