//! k-anonymity as a threshold risk measure (paper Algorithm 4).
//!
//! A tuple is *dangerous* (risk 1) when fewer than `k` tuples share its
//! quasi-identifier combination, *safe* (risk 0) otherwise:
//!
//! ```text
//! R = mcount(⟨I⟩);  risk = case R < k then 1 else 0
//! ```
//!
//! Under the maybe-match semantics a suppressed cell enlarges the
//! equivalence group, which is how local suppression drives tuples below
//! the threshold.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};
use crate::columnar::par_map_rows;
use crate::maybe_match::GroupStats;
use std::collections::HashMap;

/// k-anonymity threshold risk (Algorithm 4).
#[derive(Debug, Clone, Copy)]
pub struct KAnonymity {
    /// Minimum acceptable equivalence-class size.
    pub k: usize,
}

impl KAnonymity {
    /// k-anonymity with the given `k` (must be ≥ 1).
    pub fn new(k: usize) -> Self {
        KAnonymity { k: k.max(1) }
    }

    /// Map group statistics to the k-anonymity report. Shared by the cold
    /// path ([`RiskMeasure::evaluate`]) and the warm-start hook so both
    /// produce bit-identical output from identical statistics. Scoring is
    /// a pure per-row map, so it shards across `threads` workers; notes
    /// are formatted once per distinct class size and cloned per row
    /// (identical strings, a fraction of the allocations at scale).
    fn report(&self, threads: usize, stats: &GroupStats) -> RiskReport {
        let n = stats.count.len();
        let risks: Vec<f64> =
            par_map_rows(
                n,
                threads,
                |i| if stats.count[i] < self.k { 1.0 } else { 0.0 },
            );
        let mut notes: HashMap<usize, String> = HashMap::new();
        for &c in &stats.count {
            notes
                .entry(c)
                .or_insert_with(|| format!("class size {c} vs k={}", self.k));
        }
        let details = par_map_rows(n, threads, |i| TupleRiskDetail {
            frequency: stats.count[i],
            weight_sum: stats.weight_sum[i],
            note: notes[&stats.count[i]].clone(),
        });
        RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        }
    }
}

impl RiskMeasure for KAnonymity {
    fn name(&self) -> &str {
        "k-anonymity"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        let stats = view.group_stats();
        Ok(self.report(view.risk_threads, &stats))
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        let (count, _) = super::tuple_group(view, row);
        Some(if count < self.k { 1.0 } else { 0.0 })
    }

    fn tuple_risk_from_stats(
        &self,
        _view: &MicrodataView,
        stats: &GroupStats,
        row: usize,
    ) -> Option<f64> {
        Some(if stats.count[row] < self.k { 1.0 } else { 0.0 })
    }

    fn report_from_groups(
        &self,
        view: &MicrodataView,
        stats: &GroupStats,
    ) -> Option<Result<RiskReport, RiskError>> {
        Some(Ok(self.report(view.risk_threads, stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;
    use crate::maybe_match::NullSemantics;
    use vadalog::Value;

    #[test]
    fn sample_uniques_are_dangerous_at_k2() {
        // Figure 1 flavour: North/Public Service appears once
        let view = view_of(
            vec![
                vec!["North", "Public Service"],
                vec!["South", "Commerce"],
                vec!["South", "Commerce"],
            ],
            None,
        );
        let report = KAnonymity::new(2).evaluate(&view).unwrap();
        assert_eq!(report.risks, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn higher_k_is_less_tolerant() {
        let view = view_of(vec![vec!["a"], vec!["a"], vec!["b"], vec!["b"]], None);
        let r2 = KAnonymity::new(2).evaluate(&view).unwrap();
        let r3 = KAnonymity::new(3).evaluate(&view).unwrap();
        assert_eq!(r2.risky_tuples(0.5).len(), 0);
        assert_eq!(r3.risky_tuples(0.5).len(), 4);
    }

    #[test]
    fn k_is_clamped_to_at_least_one() {
        let view = view_of(vec![vec!["a"]], None);
        let report = KAnonymity::new(0).evaluate(&view).unwrap();
        // k=1: every tuple trivially safe
        assert_eq!(report.risks, vec![0.0]);
    }

    #[test]
    fn suppression_lifts_class_size_under_maybe_match() {
        let mut view = view_of(
            vec![
                vec!["Roma", "Textiles"],
                vec!["Roma", "Commerce"],
                vec!["Roma", "Commerce"],
            ],
            None,
        );
        view.semantics = NullSemantics::MaybeMatch;
        let before = KAnonymity::new(2).evaluate(&view).unwrap();
        assert_eq!(before.risks[0], 1.0);
        view.patch_cell(0, 1, &Value::Null(0), None);
        let after = KAnonymity::new(2).evaluate(&view).unwrap();
        assert_eq!(after.risks[0], 0.0);
        // and the suppressed row enlarged the others' classes too
        assert_eq!(after.details[1].frequency, 3);
    }

    #[test]
    fn standard_semantics_ignores_null_lift() {
        let mut view = view_of(
            vec![vec!["Roma", "Textiles"], vec!["Roma", "Commerce"]],
            None,
        );
        view.patch_cell(0, 1, &Value::Null(0), None);
        view.semantics = NullSemantics::Standard;
        let report = KAnonymity::new(2).evaluate(&view).unwrap();
        assert_eq!(report.risks, vec![1.0, 1.0]);
    }
}
