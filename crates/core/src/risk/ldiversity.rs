//! l-diversity: attribute-disclosure risk (Machanavajjhala et al.),
//! the standard companion to k-anonymity in the SDC toolchain (ARX,
//! sdcMicro) the paper benchmarks itself against.
//!
//! k-anonymity protects against *identity* disclosure, but an equivalence
//! class whose members all share the same **sensitive** value still leaks
//! that value ("homogeneity attack"): an attacker who narrows the target
//! to the class learns the secret without re-identifying anyone. A class
//! is *l-diverse* when it contains at least `l` distinct sensitive
//! values; a tuple in a class with fewer is dangerous.
//!
//! Labelled nulls in the sensitive column count as distinct unknown
//! values (each `⊥` may stand for anything), so sensitive-value
//! suppression also restores diversity.
//!
//! The measure needs a column the [`MicrodataView`] does not carry — the
//! sensitive attribute ([`Category::Sensitive`]) — so it captures that
//! column at construction. The anonymization cycle only rewrites
//! quasi-identifiers, hence the captured column stays valid across
//! iterations; a length check guards misuse against a different table.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};
use crate::dictionary::{Category, MetadataDictionary};
use crate::model::MicrodataDb;
use std::collections::HashSet;
use vadalog::Value;

/// l-diversity risk: 1 if the tuple's equivalence class holds fewer than
/// `l` distinct sensitive values, 0 otherwise.
#[derive(Debug, Clone)]
pub struct LDiversity {
    /// Required number of distinct sensitive values per class.
    pub l: usize,
    /// Name of the sensitive attribute (for reports).
    pub sensitive_attr: String,
    sensitive: Vec<Value>,
}

impl LDiversity {
    /// Build the measure from a microdata DB, reading the (single)
    /// attribute categorized as [`Category::Sensitive`].
    pub fn from_db(
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        l: usize,
    ) -> Result<Self, RiskError> {
        let sensitive_attrs = dict.attrs_with_category(&db.name, Category::Sensitive)?;
        let Some(attr) = sensitive_attrs.first() else {
            return Err(RiskError::View(format!(
                "microdata DB '{}' has no attribute categorized as sensitive",
                db.name
            )));
        };
        Ok(LDiversity {
            l: l.max(1),
            sensitive_attr: attr.clone(),
            sensitive: db.column(attr)?.into_iter().cloned().collect(),
        })
    }

    /// Build the measure from an explicit sensitive column.
    pub fn from_column(l: usize, attr: impl Into<String>, column: Vec<Value>) -> Self {
        LDiversity {
            l: l.max(1),
            sensitive_attr: attr.into(),
            sensitive: column,
        }
    }

    /// Distinct sensitive values among the given rows; labelled nulls each
    /// count once (an unknown value is possibly new).
    fn diversity(&self, members: &[usize]) -> usize {
        let mut distinct: HashSet<&Value> = HashSet::new();
        let mut nulls = 0usize;
        for &m in members {
            match &self.sensitive[m] {
                Value::Null(_) => nulls += 1,
                v => {
                    distinct.insert(v);
                }
            }
        }
        distinct.len() + nulls
    }
}

impl RiskMeasure for LDiversity {
    fn name(&self) -> &str {
        "l-diversity"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        if self.sensitive.len() != view.len() {
            return Err(RiskError::View(format!(
                "sensitive column covers {} rows, view has {}",
                self.sensitive.len(),
                view.len()
            )));
        }
        // equivalence classes under the view's semantics; with maybe-match
        // the "class" of a tuple is its match set (classes may overlap)
        let mut risks = Vec::with_capacity(view.len());
        let mut details = Vec::with_capacity(view.len());
        for target in 0..view.len() {
            let members: Vec<usize> = (0..view.len())
                .filter(|&j| view.rows_match(target, j))
                .collect();
            let d = self.diversity(&members);
            risks.push(if d < self.l { 1.0 } else { 0.0 });
            details.push(TupleRiskDetail {
                frequency: members.len(),
                weight_sum: members.len() as f64,
                note: format!(
                    "{d} distinct '{}' values vs l={}",
                    self.sensitive_attr, self.l
                ),
            });
        }
        Ok(RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        })
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        if self.sensitive.len() != view.len() {
            return None;
        }
        let members: Vec<usize> = (0..view.len())
            .filter(|&j| view.rows_match(row, j))
            .collect();
        Some(if self.diversity(&members) < self.l {
            1.0
        } else {
            0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;
    use crate::prelude::*;

    fn hospital() -> (MicrodataDb, MetadataDictionary) {
        let mut db = MicrodataDb::new("clinic", ["id", "zip", "age", "diagnosis"]).unwrap();
        let rows = [
            (1, "130**", "30-39", "flu"),
            (2, "130**", "30-39", "flu"), // homogeneous class: both flu!
            (3, "148**", "20-29", "cancer"),
            (4, "148**", "20-29", "flu"), // diverse class
        ];
        for (id, zip, age, dx) in rows {
            db.push_row(vec![
                Value::Int(id),
                Value::str(zip),
                Value::str(age),
                Value::str(dx),
            ])
            .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "zip", "age", "diagnosis"] {
            dict.register_attr("clinic", a, "");
        }
        dict.set_category("clinic", "id", Category::Identifier)
            .unwrap();
        dict.set_category("clinic", "zip", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("clinic", "age", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("clinic", "diagnosis", Category::Sensitive)
            .unwrap();
        (db, dict)
    }

    #[test]
    fn homogeneity_attack_is_detected() {
        let (db, dict) = hospital();
        let measure = LDiversity::from_db(&db, &dict, 2).unwrap();
        let view = MicrodataView::from_db(&db, &dict).unwrap();
        let report = measure.evaluate(&view).unwrap();
        // rows 0 and 1 are 2-anonymous but NOT 2-diverse
        assert_eq!(report.risks[0], 1.0);
        assert_eq!(report.risks[1], 1.0);
        assert_eq!(report.risks[2], 0.0);
        assert_eq!(report.risks[3], 0.0);
        // and k-anonymity alone would call them safe — the gap l-diversity closes
        let kanon = KAnonymity::new(2).evaluate(&view).unwrap();
        assert_eq!(kanon.risks[0], 0.0);
    }

    #[test]
    fn missing_sensitive_category_is_an_error() {
        let (db, mut dict) = hospital();
        dict.set_category("clinic", "diagnosis", Category::NonIdentifying)
            .unwrap();
        assert!(LDiversity::from_db(&db, &dict, 2).is_err());
    }

    #[test]
    fn nulls_in_sensitive_column_count_as_distinct() {
        let column = vec![Value::str("flu"), Value::Null(0)];
        let measure = LDiversity::from_column(2, "dx", column);
        let view = view_of(vec![vec!["a"], vec!["a"]], None);
        let report = measure.evaluate(&view).unwrap();
        assert_eq!(report.risks, vec![0.0, 0.0]);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let measure = LDiversity::from_column(2, "dx", vec![Value::str("x")]);
        let view = view_of(vec![vec!["a"], vec!["b"]], None);
        assert!(measure.evaluate(&view).is_err());
        assert_eq!(measure.evaluate_tuple(&view, 0), None);
    }

    #[test]
    fn incremental_matches_full() {
        let (db, dict) = hospital();
        let measure = LDiversity::from_db(&db, &dict, 2).unwrap();
        let view = MicrodataView::from_db(&db, &dict).unwrap();
        let full = measure.evaluate(&view).unwrap();
        for row in 0..view.len() {
            assert_eq!(
                measure.evaluate_tuple(&view, row),
                Some(full.risks[row]),
                "row {row}"
            );
        }
    }

    #[test]
    fn cycle_restores_diversity_by_widening_classes() {
        let (db, dict) = hospital();
        let measure = LDiversity::from_db(&db, &dict, 2).unwrap();
        let anonymizer = LocalSuppression::default();
        let out = AnonymizationCycle::new(&measure, &anonymizer, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        // suppression widens the homogeneous class until it absorbs a
        // different diagnosis
        assert_eq!(out.final_risky, 0);
        assert!(out.nulls_injected >= 1);
    }
}
