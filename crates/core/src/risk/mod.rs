//! Statistical disclosure risk estimation (paper §4.2).
//!
//! All measures implement [`RiskMeasure`] over a [`MicrodataView`] — the
//! projection of a microdata DB onto its quasi-identifiers plus the
//! sampling weights, with a chosen null semantics. The `risk` atom of the
//! anonymization cycle (Algorithm 2) is *polymorphic*; the cycle accepts
//! any `dyn RiskMeasure`, mirroring Vada-SA's plug-in mechanism.
//!
//! Off-the-shelf measures, as in the paper:
//!
//! - [`ReIdentification`] — Algorithm 3: `ρ = 1 / Σ weights of the group`;
//! - [`KAnonymity`] — Algorithm 4: `1` iff the equivalence class is
//!   smaller than `k`;
//! - [`IndividualRisk`] — Algorithm 5: Benedetti–Franconi style posterior
//!   estimation of `1/F_k` from sample frequency and weight sum;
//! - [`Suda`] — Algorithm 6: minimal sample uniques.
//!
//! Since the million-row rework the view stores its quasi-identifier
//! cells *columnarly* (per-column [`ColumnDict`]s, flat `u32` codes and a
//! per-row null bitmask — see [`crate::columnar`]) instead of
//! `Vec<Vec<Value>>`, so group formation and per-row scoring never clone
//! a `Value` and can shard across `risk_threads` scoped workers.

mod individual;
mod kanon;
mod ldiversity;
mod presence;
mod reident;
mod suda;
mod tcloseness;

pub use individual::{bf_posterior_mean, IndividualRisk, IrEstimator};
pub use kanon::KAnonymity;
pub use ldiversity::LDiversity;
pub use presence::PresenceRisk;
pub use reident::ReIdentification;
pub use suda::{dis_scores, minimal_sample_uniques, MsuSet, Suda};
pub use tcloseness::TCloseness;

use crate::columnar::{apply_cell_change_codes, codes_match, group_stats_codes, ColumnDict};
use crate::dictionary::{Category, DictionaryError, MetadataDictionary};
use crate::maybe_match::{GroupStats, NullSemantics};
use crate::model::{MicrodataDb, ModelError};
use std::fmt;
use vadalog::Value;

/// Errors building a view or evaluating risk.
#[derive(Debug)]
pub enum RiskError {
    /// Dictionary lookup failed.
    Dictionary(DictionaryError),
    /// Microdata access failed.
    Model(ModelError),
    /// The view is unusable for this measure (e.g. missing weights).
    View(String),
}

impl fmt::Display for RiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiskError::Dictionary(e) => write!(f, "{e}"),
            RiskError::Model(e) => write!(f, "{e}"),
            RiskError::View(m) => write!(f, "invalid view: {m}"),
        }
    }
}

impl std::error::Error for RiskError {}

impl From<DictionaryError> for RiskError {
    fn from(e: DictionaryError) -> Self {
        RiskError::Dictionary(e)
    }
}
impl From<ModelError> for RiskError {
    fn from(e: ModelError) -> Self {
        RiskError::Model(e)
    }
}

/// The projection of a microdata DB a risk measure works on:
/// dictionary-encoded QI columns, optional sampling weights and the null
/// semantics for group formation.
///
/// Storage is columnar: `dicts[c]` interns every distinct `Value` of
/// column `c`, `codes` holds the row-major `u32` codes (stride =
/// [`width`](Self::width)), and `null_masks[r]` has bit `c` set when row
/// `r` is a labelled null in column `c`. Cells are reached through
/// [`value`](Self::value) / [`patch_cell`](Self::patch_cell); the
/// row-major `Vec<Vec<Value>>` of earlier versions is gone from the hot
/// path (use [`to_rows`](Self::to_rows) where owned rows are genuinely
/// needed).
#[derive(Debug, Clone)]
pub struct MicrodataView {
    /// Names of the projected quasi-identifier attributes.
    pub qi_names: Vec<String>,
    /// Per-column value dictionaries (code → `Value`).
    dicts: Vec<ColumnDict>,
    /// Row-major cell codes, `len = rows × width`.
    codes: Vec<u32>,
    /// Per-row bitmask of null columns.
    null_masks: Vec<u64>,
    /// Sampling weights, if a weight column is categorized.
    pub weights: Option<Vec<f64>>,
    /// Null semantics used to form equivalence groups.
    pub semantics: NullSemantics,
    /// Worker threads for group formation and per-row scoring (1 =
    /// sequential; sharding only engages when exact, see
    /// [`crate::columnar`]).
    pub risk_threads: usize,
}

impl MicrodataView {
    /// Build the view of `db` according to the dictionary's categories:
    /// quasi-identifiers are projected, the weight column (if any) is read
    /// numerically, identifiers and non-identifying attributes are dropped
    /// (Algorithm 2, Rule 1).
    pub fn from_db(db: &MicrodataDb, dict: &MetadataDictionary) -> Result<Self, RiskError> {
        Self::from_db_with(db, dict, NullSemantics::MaybeMatch, None)
    }

    /// Like [`MicrodataView::from_db`], choosing the semantics and
    /// optionally restricting to a subset `q̂ ⊆ q` of quasi-identifiers
    /// (the paper's `AnonSet`).
    pub fn from_db_with(
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        semantics: NullSemantics,
        restrict_to: Option<&[String]>,
    ) -> Result<Self, RiskError> {
        let mut qi_names = dict.quasi_identifiers(&db.name)?;
        if let Some(subset) = restrict_to {
            qi_names.retain(|q| subset.contains(q));
            if qi_names.is_empty() {
                return Err(RiskError::View(
                    "the restriction removed every quasi-identifier".into(),
                ));
            }
        }
        if qi_names.is_empty() {
            return Err(RiskError::View(format!(
                "microdata DB '{}' has no categorized quasi-identifiers",
                db.name
            )));
        }
        if qi_names.len() > 64 {
            return Err(RiskError::View(format!(
                "{} quasi-identifiers exceed the 64-column null-bitmask limit",
                qi_names.len()
            )));
        }
        let cols: Vec<usize> = qi_names
            .iter()
            .map(|q| db.attr_position(q))
            .collect::<Result<_, _>>()?;
        let width = cols.len();
        let mut dicts: Vec<ColumnDict> = (0..width).map(|_| ColumnDict::new()).collect();
        let mut codes: Vec<u32> = Vec::with_capacity(db.len() * width);
        let mut null_masks: Vec<u64> = Vec::with_capacity(db.len());
        for r in db.iter_rows() {
            let mut mask = 0u64;
            for (k, &c) in cols.iter().enumerate() {
                let v = &r[c];
                if v.is_null() {
                    mask |= 1 << k;
                }
                codes.push(dicts[k].intern(v));
            }
            null_masks.push(mask);
        }
        let weights = match dict
            .attrs_with_category(&db.name, Category::Weight)?
            .first()
        {
            Some(w) => Some(db.numeric_column(w)?),
            None => None,
        };
        Ok(MicrodataView {
            qi_names,
            dicts,
            codes,
            null_masks,
            weights,
            semantics,
            risk_threads: 1,
        })
    }

    /// Build a view directly from owned rows (row-major, one `Value` per
    /// quasi-identifier). `rows` must all have `qi_names.len()` cells.
    pub fn from_rows(
        qi_names: Vec<String>,
        rows: Vec<Vec<Value>>,
        weights: Option<Vec<f64>>,
        semantics: NullSemantics,
    ) -> Self {
        let width = qi_names.len();
        let mut dicts: Vec<ColumnDict> = (0..width).map(|_| ColumnDict::new()).collect();
        let mut codes: Vec<u32> = Vec::with_capacity(rows.len() * width);
        let mut null_masks: Vec<u64> = Vec::with_capacity(rows.len());
        for r in &rows {
            debug_assert_eq!(r.len(), width, "row arity must match qi_names");
            let mut mask = 0u64;
            for (k, v) in r.iter().enumerate() {
                if v.is_null() {
                    mask |= 1 << k;
                }
                codes.push(dicts[k].intern(v));
            }
            null_masks.push(mask);
        }
        MicrodataView {
            qi_names,
            dicts,
            codes,
            null_masks,
            weights,
            semantics,
            risk_threads: 1,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.null_masks.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.null_masks.is_empty()
    }

    /// Number of quasi-identifier columns.
    pub fn width(&self) -> usize {
        self.qi_names.len()
    }

    /// Borrow the cell value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        self.dicts[col].value(self.codes[row * self.width() + col])
    }

    /// The row's coded cells (stride slice into the flat code array).
    pub fn row_codes(&self, row: usize) -> &[u32] {
        let w = self.width();
        &self.codes[row * w..(row + 1) * w]
    }

    /// The row's null bitmask (bit `c` ⇔ column `c` holds a labelled null).
    pub fn null_mask(&self, row: usize) -> u64 {
        self.null_masks[row]
    }

    /// Owned clone of one row's quasi-identifier cells.
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        (0..self.width())
            .map(|c| self.value(row, c).clone())
            .collect()
    }

    /// Materialize the whole projection as owned rows (compatibility /
    /// test escape hatch — O(cells) clones, avoid on hot paths).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len()).map(|r| self.row_values(r)).collect()
    }

    /// Do rows `i` and `j` match on every column under the view's
    /// semantics?
    pub fn rows_match(&self, i: usize, j: usize) -> bool {
        self.rows_match_with(i, j, self.semantics)
    }

    /// Like [`rows_match`](Self::rows_match) with explicit semantics.
    pub fn rows_match_with(&self, i: usize, j: usize, sem: NullSemantics) -> bool {
        codes_match(
            self.row_codes(i),
            self.null_masks[i],
            self.row_codes(j),
            self.null_masks[j],
            sem,
        )
    }

    /// Equivalence-group statistics under the view's own weights,
    /// semantics and thread count.
    pub fn group_stats(&self) -> GroupStats {
        self.group_stats_with(self.weights.as_deref(), self.semantics)
    }

    /// Column dictionaries in column order (spill/restore path).
    pub(crate) fn dicts(&self) -> &[ColumnDict] {
        &self.dicts
    }

    /// The flat row-major code matrix (spill/restore path).
    pub(crate) fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Per-row null bitmasks (spill/restore path).
    pub(crate) fn null_masks(&self) -> &[u64] {
        &self.null_masks
    }

    /// Reassemble a view from its constituent parts. Used by the
    /// out-of-core store ([`crate::colstore`]) when materializing a
    /// spilled view; callers are responsible for internal consistency
    /// (codes length = rows × width, masks length = rows, codes within
    /// their column dictionaries).
    pub(crate) fn from_parts(
        qi_names: Vec<String>,
        dicts: Vec<ColumnDict>,
        codes: Vec<u32>,
        null_masks: Vec<u64>,
        weights: Option<Vec<f64>>,
        semantics: NullSemantics,
        risk_threads: usize,
    ) -> Self {
        MicrodataView {
            qi_names,
            dicts,
            codes,
            null_masks,
            weights,
            semantics,
            risk_threads,
        }
    }

    /// Group statistics with explicit weights and semantics (threads from
    /// the view).
    pub fn group_stats_with(&self, weights: Option<&[f64]>, sem: NullSemantics) -> GroupStats {
        let all: Vec<usize> = (0..self.width()).collect();
        group_stats_codes(
            &self.codes,
            &self.null_masks,
            self.width(),
            &all,
            weights,
            sem,
            self.risk_threads,
        )
    }

    /// Group statistics over a sub-projection: only the listed column
    /// positions participate in matching (SUDA's per-subset scans).
    pub fn group_stats_on(
        &self,
        positions: &[usize],
        weights: Option<&[f64]>,
        sem: NullSemantics,
    ) -> GroupStats {
        group_stats_codes(
            &self.codes,
            &self.null_masks,
            self.width(),
            positions,
            weights,
            sem,
            self.risk_threads,
        )
    }

    /// Overwrite the cell at `(row, col)` and, when `stats` is given,
    /// incrementally repair the group statistics (columnar
    /// flip-then-rescan, same exactness caveat as
    /// [`GroupStats::apply_row_change`]).
    pub fn patch_cell(
        &mut self,
        row: usize,
        col: usize,
        v: &Value,
        stats: Option<&mut GroupStats>,
    ) {
        let w = self.width();
        let old_mask = self.null_masks[row];
        let code = self.dicts[col].intern(v);
        let mut old_codes = [0u32; 64];
        let old_codes = &mut old_codes[..w];
        old_codes.copy_from_slice(&self.codes[row * w..(row + 1) * w]);
        self.codes[row * w + col] = code;
        if v.is_null() {
            self.null_masks[row] |= 1 << col;
        } else {
            self.null_masks[row] &= !(1 << col);
        }
        if let Some(stats) = stats {
            apply_cell_change_codes(
                &self.codes,
                &self.null_masks,
                w,
                self.weights.as_deref(),
                self.semantics,
                row,
                old_codes,
                old_mask,
                stats,
            );
        }
    }

    /// Rewrite every cell of column `col` equal to `from` into `to`,
    /// repairing `stats` row by row when given (mirrors the sequential
    /// per-row patch order of the cycle's recode path). Returns the
    /// indices of the patched rows.
    pub fn patch_recode(
        &mut self,
        col: usize,
        from: &Value,
        to: &Value,
        mut stats: Option<&mut GroupStats>,
    ) -> Vec<usize> {
        let mut patched = Vec::new();
        let Some(from_code) = self.dicts[col].code(from) else {
            return patched;
        };
        let w = self.width();
        for r in 0..self.len() {
            if self.codes[r * w + col] == from_code {
                self.patch_cell(r, col, to, stats.as_deref_mut());
                patched.push(r);
            }
        }
        patched
    }

    /// Number of null quasi-identifier cells across the view.
    pub fn null_cell_count(&self) -> usize {
        self.null_masks
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum()
    }

    /// Approximate retained heap bytes of the columnar storage.
    pub fn retained_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<u32>()
            + self.null_masks.len() * std::mem::size_of::<u64>()
            + self
                .dicts
                .iter()
                .map(ColumnDict::retained_bytes)
                .sum::<usize>()
            + self
                .weights
                .as_ref()
                .map(|w| w.len() * std::mem::size_of::<f64>())
                .unwrap_or(0)
    }
}

/// Per-tuple diagnostic detail accompanying a risk score.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleRiskDetail {
    /// Size of the tuple's equivalence group under the view's semantics.
    pub frequency: usize,
    /// Sum of sampling weights over the group (frequency if unweighted).
    pub weight_sum: f64,
    /// Measure-specific annotation (e.g. MSU sizes for SUDA).
    pub note: String,
}

/// The outcome of evaluating a risk measure over a view.
#[derive(Debug, Clone)]
pub struct RiskReport {
    /// Name of the measure that produced this report.
    pub measure: String,
    /// Per-tuple risk in `[0, 1]`, same order as the view rows.
    pub risks: Vec<f64>,
    /// Per-tuple diagnostics (same order).
    pub details: Vec<TupleRiskDetail>,
}

impl RiskReport {
    /// Indices of tuples whose risk strictly exceeds the threshold `t`
    /// (Algorithm 2, Rule 2: `R > T → anonymize`).
    pub fn risky_tuples(&self, t: f64) -> Vec<usize> {
        self.risks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Maximum risk over all tuples (0.0 for an empty view).
    pub fn max_risk(&self) -> f64 {
        self.risks.iter().copied().fold(0.0, f64::max)
    }

    /// Mean risk (0.0 for an empty view).
    pub fn mean_risk(&self) -> f64 {
        if self.risks.is_empty() {
            0.0
        } else {
            self.risks.iter().sum::<f64>() / self.risks.len() as f64
        }
    }
}

/// A pluggable statistical disclosure risk measure.
pub trait RiskMeasure {
    /// Name used in reports and audit logs.
    fn name(&self) -> &str;
    /// Evaluate per-tuple risk over a view.
    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError>;

    /// Fast single-tuple re-evaluation against a (possibly partially
    /// anonymized) view, used by the cycle to honour the monotonic-
    /// aggregation semantics of §4.3: a tuple whose risk has already been
    /// defused by *someone else's* suppression in the current iteration is
    /// skipped, so no information is removed needlessly. Measures without
    /// a cheap incremental form return `None` and are re-checked only at
    /// the next full evaluation.
    fn evaluate_tuple(&self, _view: &MicrodataView, _row: usize) -> Option<f64> {
        None
    }

    /// Constant-time single-tuple risk from maintained group statistics.
    /// Where [`RiskMeasure::evaluate_tuple`] rescans the table (`O(n)`),
    /// this hook reads the tuple's `(frequency, weight_sum)` straight out
    /// of `stats` — which the cycle keeps patched across suppressions —
    /// so per-row rechecks cost `O(1)`. Implementations must return
    /// exactly the value `evaluate_tuple` would compute on the same view;
    /// the default `None` falls back to the scanning path.
    fn tuple_risk_from_stats(
        &self,
        _view: &MicrodataView,
        _stats: &crate::maybe_match::GroupStats,
        _row: usize,
    ) -> Option<f64> {
        None
    }

    /// Warm-start hook: produce the full report from precomputed
    /// equivalence-group statistics instead of regrouping the whole view.
    /// The cycle maintains `stats` incrementally across suppressions
    /// (`GroupStats::apply_row_change`) and serves every re-evaluation
    /// after the first through this hook.
    ///
    /// A measure may implement this only when its report is a pure,
    /// deterministic function of per-tuple `(frequency, weight_sum)` — the
    /// default `None` declares the measure unsupported and forces the
    /// cycle back to a cold [`RiskMeasure::evaluate`] (correctness first).
    fn report_from_groups(
        &self,
        _view: &MicrodataView,
        _stats: &crate::maybe_match::GroupStats,
    ) -> Option<Result<RiskReport, RiskError>> {
        None
    }
}

/// Count the rows of `view` matching `row` on every quasi-identifier under
/// the view's null semantics, and their weight sum. Shared by the
/// incremental fast paths.
pub(crate) fn tuple_group(view: &MicrodataView, row: usize) -> (usize, f64) {
    let mut count = 0usize;
    let mut wsum = 0.0f64;
    for i in 0..view.len() {
        if view.rows_match(row, i) {
            count += 1;
            wsum += view.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
        }
    }
    (count, wsum)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A small helper building a view directly from string rows.
    pub fn view_of(rows: Vec<Vec<&str>>, weights: Option<Vec<f64>>) -> MicrodataView {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        MicrodataView::from_rows(
            (0..width).map(|i| format!("q{i}")).collect(),
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::str).collect())
                .collect(),
            weights,
            NullSemantics::MaybeMatch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::view_of;
    use super::*;
    use crate::dictionary::Category;

    #[test]
    fn view_from_db_projects_qis_and_weights() {
        let mut db = MicrodataDb::new("m", ["id", "area", "w", "note"]).unwrap();
        db.push_row(vec![
            Value::Int(1),
            Value::str("North"),
            Value::Int(10),
            Value::str("x"),
        ])
        .unwrap();
        let mut dict = MetadataDictionary::new();
        for a in ["id", "area", "w", "note"] {
            dict.register_attr("m", a, "");
        }
        dict.set_category("m", "id", Category::Identifier).unwrap();
        dict.set_category("m", "area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("m", "w", Category::Weight).unwrap();
        dict.set_category("m", "note", Category::NonIdentifying)
            .unwrap();

        let view = MicrodataView::from_db(&db, &dict).unwrap();
        assert_eq!(view.qi_names, vec!["area"]);
        assert_eq!(view.value(0, 0), &Value::str("North"));
        assert_eq!(view.row_values(0), vec![Value::str("North")]);
        assert_eq!(view.weights, Some(vec![10.0]));
    }

    #[test]
    fn restriction_to_subset() {
        let mut db = MicrodataDb::new("m", ["a", "b"]).unwrap();
        db.push_row(vec![Value::str("x"), Value::str("y")]).unwrap();
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "a", "");
        dict.register_attr("m", "b", "");
        dict.set_category("m", "a", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("m", "b", Category::QuasiIdentifier)
            .unwrap();
        let restricted = ["b".to_string()];
        let view =
            MicrodataView::from_db_with(&db, &dict, NullSemantics::MaybeMatch, Some(&restricted))
                .unwrap();
        assert_eq!(view.qi_names, vec!["b"]);
        // restricting away everything is an error
        let none: [String; 0] = [];
        assert!(
            MicrodataView::from_db_with(&db, &dict, NullSemantics::MaybeMatch, Some(&none))
                .is_err()
        );
    }

    #[test]
    fn risky_tuples_thresholding() {
        let report = RiskReport {
            measure: "test".into(),
            risks: vec![0.1, 0.6, 0.5, 1.0],
            details: vec![TupleRiskDetail::default(); 4],
        };
        assert_eq!(report.risky_tuples(0.5), vec![1, 3]);
        assert_eq!(report.max_risk(), 1.0);
        assert!((report.mean_risk() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn no_quasi_identifiers_is_an_error() {
        let mut db = MicrodataDb::new("m", ["a"]).unwrap();
        db.push_row(vec![Value::str("x")]).unwrap();
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "a", "");
        dict.set_category("m", "a", Category::NonIdentifying)
            .unwrap();
        assert!(MicrodataView::from_db(&db, &dict).is_err());
    }

    #[test]
    fn helper_builds_views() {
        let v = view_of(vec![vec!["a", "b"], vec!["a", "c"]], None);
        assert_eq!(v.len(), 2);
        assert_eq!(v.width(), 2);
    }

    #[test]
    fn patch_cell_updates_values_masks_and_stats() {
        let mut v = view_of(vec![vec!["a", "x"], vec!["b", "x"], vec!["b", "y"]], None);
        let mut stats = v.group_stats();
        assert_eq!(stats.count, vec![1, 1, 1]);
        v.patch_cell(0, 0, &Value::Null(0), Some(&mut stats));
        assert_eq!(v.null_mask(0), 1);
        assert!(v.value(0, 0).is_null());
        // ⊥,x maybe-matches b,x
        assert_eq!(stats.count, vec![2, 2, 1]);
        let cold = v.group_stats();
        assert_eq!(stats.count, cold.count);
        assert_eq!(stats.weight_sum, cold.weight_sum);
    }

    #[test]
    fn patch_recode_rewrites_all_matching_cells() {
        let mut v = view_of(vec![vec!["a"], vec!["b"], vec!["a"]], None);
        let mut stats = v.group_stats();
        let patched = v.patch_recode(0, &Value::str("a"), &Value::str("b"), Some(&mut stats));
        assert_eq!(patched, vec![0, 2]);
        assert_eq!(stats.count, vec![3, 3, 3]);
        assert_eq!(v.value(0, 0), &Value::str("b"));
        // recoding a value the column never held is a no-op
        let none = v.patch_recode(0, &Value::str("zz"), &Value::str("b"), Some(&mut stats));
        assert!(none.is_empty());
    }

    #[test]
    fn to_rows_roundtrips_through_from_rows() {
        let rows = vec![
            vec![Value::str("a"), Value::Null(3)],
            vec![Value::Int(7), Value::str("b")],
        ];
        let v = MicrodataView::from_rows(
            vec!["q0".into(), "q1".into()],
            rows.clone(),
            None,
            NullSemantics::Standard,
        );
        assert_eq!(v.to_rows(), rows);
        assert_eq!(v.null_cell_count(), 1);
        assert!(v.retained_bytes() > 0);
    }
}
