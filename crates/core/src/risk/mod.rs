//! Statistical disclosure risk estimation (paper §4.2).
//!
//! All measures implement [`RiskMeasure`] over a [`MicrodataView`] — the
//! projection of a microdata DB onto its quasi-identifiers plus the
//! sampling weights, with a chosen null semantics. The `risk` atom of the
//! anonymization cycle (Algorithm 2) is *polymorphic*; the cycle accepts
//! any `dyn RiskMeasure`, mirroring Vada-SA's plug-in mechanism.
//!
//! Off-the-shelf measures, as in the paper:
//!
//! - [`ReIdentification`] — Algorithm 3: `ρ = 1 / Σ weights of the group`;
//! - [`KAnonymity`] — Algorithm 4: `1` iff the equivalence class is
//!   smaller than `k`;
//! - [`IndividualRisk`] — Algorithm 5: Benedetti–Franconi style posterior
//!   estimation of `1/F_k` from sample frequency and weight sum;
//! - [`Suda`] — Algorithm 6: minimal sample uniques.

mod individual;
mod kanon;
mod ldiversity;
mod presence;
mod reident;
mod suda;
mod tcloseness;

pub use individual::{bf_posterior_mean, IndividualRisk, IrEstimator};
pub use kanon::KAnonymity;
pub use ldiversity::LDiversity;
pub use presence::PresenceRisk;
pub use reident::ReIdentification;
pub use suda::{dis_scores, minimal_sample_uniques, MsuSet, Suda};
pub use tcloseness::TCloseness;

use crate::dictionary::{Category, DictionaryError, MetadataDictionary};
use crate::maybe_match::NullSemantics;
use crate::model::{MicrodataDb, ModelError};
use std::fmt;
use vadalog::Value;

/// Errors building a view or evaluating risk.
#[derive(Debug)]
pub enum RiskError {
    /// Dictionary lookup failed.
    Dictionary(DictionaryError),
    /// Microdata access failed.
    Model(ModelError),
    /// The view is unusable for this measure (e.g. missing weights).
    View(String),
}

impl fmt::Display for RiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiskError::Dictionary(e) => write!(f, "{e}"),
            RiskError::Model(e) => write!(f, "{e}"),
            RiskError::View(m) => write!(f, "invalid view: {m}"),
        }
    }
}

impl std::error::Error for RiskError {}

impl From<DictionaryError> for RiskError {
    fn from(e: DictionaryError) -> Self {
        RiskError::Dictionary(e)
    }
}
impl From<ModelError> for RiskError {
    fn from(e: ModelError) -> Self {
        RiskError::Model(e)
    }
}

/// The projection of a microdata DB a risk measure works on: QI columns,
/// optional sampling weights and the null semantics for group formation.
#[derive(Debug, Clone)]
pub struct MicrodataView {
    /// Names of the projected quasi-identifier attributes.
    pub qi_names: Vec<String>,
    /// Row-major QI cells (same row order as the source table).
    pub qi_rows: Vec<Vec<Value>>,
    /// Sampling weights, if a weight column is categorized.
    pub weights: Option<Vec<f64>>,
    /// Null semantics used to form equivalence groups.
    pub semantics: NullSemantics,
}

impl MicrodataView {
    /// Build the view of `db` according to the dictionary's categories:
    /// quasi-identifiers are projected, the weight column (if any) is read
    /// numerically, identifiers and non-identifying attributes are dropped
    /// (Algorithm 2, Rule 1).
    pub fn from_db(db: &MicrodataDb, dict: &MetadataDictionary) -> Result<Self, RiskError> {
        Self::from_db_with(db, dict, NullSemantics::MaybeMatch, None)
    }

    /// Like [`MicrodataView::from_db`], choosing the semantics and
    /// optionally restricting to a subset `q̂ ⊆ q` of quasi-identifiers
    /// (the paper's `AnonSet`).
    pub fn from_db_with(
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        semantics: NullSemantics,
        restrict_to: Option<&[String]>,
    ) -> Result<Self, RiskError> {
        let mut qi_names = dict.quasi_identifiers(&db.name)?;
        if let Some(subset) = restrict_to {
            qi_names.retain(|q| subset.contains(q));
            if qi_names.is_empty() {
                return Err(RiskError::View(
                    "the restriction removed every quasi-identifier".into(),
                ));
            }
        }
        if qi_names.is_empty() {
            return Err(RiskError::View(format!(
                "microdata DB '{}' has no categorized quasi-identifiers",
                db.name
            )));
        }
        let qi_rows = db.project(&qi_names)?;
        let weights = match dict
            .attrs_with_category(&db.name, Category::Weight)?
            .first()
        {
            Some(w) => Some(db.numeric_column(w)?),
            None => None,
        };
        Ok(MicrodataView {
            qi_names,
            qi_rows,
            weights,
            semantics,
        })
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.qi_rows.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.qi_rows.is_empty()
    }

    /// Number of quasi-identifier columns.
    pub fn width(&self) -> usize {
        self.qi_names.len()
    }
}

/// Per-tuple diagnostic detail accompanying a risk score.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TupleRiskDetail {
    /// Size of the tuple's equivalence group under the view's semantics.
    pub frequency: usize,
    /// Sum of sampling weights over the group (frequency if unweighted).
    pub weight_sum: f64,
    /// Measure-specific annotation (e.g. MSU sizes for SUDA).
    pub note: String,
}

/// The outcome of evaluating a risk measure over a view.
#[derive(Debug, Clone)]
pub struct RiskReport {
    /// Name of the measure that produced this report.
    pub measure: String,
    /// Per-tuple risk in `[0, 1]`, same order as the view rows.
    pub risks: Vec<f64>,
    /// Per-tuple diagnostics (same order).
    pub details: Vec<TupleRiskDetail>,
}

impl RiskReport {
    /// Indices of tuples whose risk strictly exceeds the threshold `t`
    /// (Algorithm 2, Rule 2: `R > T → anonymize`).
    pub fn risky_tuples(&self, t: f64) -> Vec<usize> {
        self.risks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Maximum risk over all tuples (0.0 for an empty view).
    pub fn max_risk(&self) -> f64 {
        self.risks.iter().copied().fold(0.0, f64::max)
    }

    /// Mean risk (0.0 for an empty view).
    pub fn mean_risk(&self) -> f64 {
        if self.risks.is_empty() {
            0.0
        } else {
            self.risks.iter().sum::<f64>() / self.risks.len() as f64
        }
    }
}

/// A pluggable statistical disclosure risk measure.
pub trait RiskMeasure {
    /// Name used in reports and audit logs.
    fn name(&self) -> &str;
    /// Evaluate per-tuple risk over a view.
    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError>;

    /// Fast single-tuple re-evaluation against a (possibly partially
    /// anonymized) view, used by the cycle to honour the monotonic-
    /// aggregation semantics of §4.3: a tuple whose risk has already been
    /// defused by *someone else's* suppression in the current iteration is
    /// skipped, so no information is removed needlessly. Measures without
    /// a cheap incremental form return `None` and are re-checked only at
    /// the next full evaluation.
    fn evaluate_tuple(&self, _view: &MicrodataView, _row: usize) -> Option<f64> {
        None
    }

    /// Warm-start hook: produce the full report from precomputed
    /// equivalence-group statistics instead of regrouping the whole view.
    /// The cycle maintains `stats` incrementally across suppressions
    /// (`GroupStats::apply_row_change`) and serves every re-evaluation
    /// after the first through this hook.
    ///
    /// A measure may implement this only when its report is a pure,
    /// deterministic function of per-tuple `(frequency, weight_sum)` — the
    /// default `None` declares the measure unsupported and forces the
    /// cycle back to a cold [`RiskMeasure::evaluate`] (correctness first).
    fn report_from_groups(
        &self,
        _view: &MicrodataView,
        _stats: &crate::maybe_match::GroupStats,
    ) -> Option<Result<RiskReport, RiskError>> {
        None
    }
}

/// Count the rows of `view` matching `row` on every quasi-identifier under
/// the view's null semantics, and their weight sum. Shared by the
/// incremental fast paths.
pub(crate) fn tuple_group(view: &MicrodataView, row: usize) -> (usize, f64) {
    use crate::maybe_match::rows_match;
    let target = &view.qi_rows[row];
    let mut count = 0usize;
    let mut wsum = 0.0f64;
    for (i, r) in view.qi_rows.iter().enumerate() {
        if rows_match(target, r, view.semantics) {
            count += 1;
            wsum += view.weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
        }
    }
    (count, wsum)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A small helper building a view directly from string rows.
    pub fn view_of(rows: Vec<Vec<&str>>, weights: Option<Vec<f64>>) -> MicrodataView {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        MicrodataView {
            qi_names: (0..width).map(|i| format!("q{i}")).collect(),
            qi_rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(Value::str).collect())
                .collect(),
            weights,
            semantics: NullSemantics::MaybeMatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::view_of;
    use super::*;
    use crate::dictionary::Category;

    #[test]
    fn view_from_db_projects_qis_and_weights() {
        let mut db = MicrodataDb::new("m", ["id", "area", "w", "note"]).unwrap();
        db.push_row(vec![
            Value::Int(1),
            Value::str("North"),
            Value::Int(10),
            Value::str("x"),
        ])
        .unwrap();
        let mut dict = MetadataDictionary::new();
        for a in ["id", "area", "w", "note"] {
            dict.register_attr("m", a, "");
        }
        dict.set_category("m", "id", Category::Identifier).unwrap();
        dict.set_category("m", "area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("m", "w", Category::Weight).unwrap();
        dict.set_category("m", "note", Category::NonIdentifying)
            .unwrap();

        let view = MicrodataView::from_db(&db, &dict).unwrap();
        assert_eq!(view.qi_names, vec!["area"]);
        assert_eq!(view.qi_rows[0], vec![Value::str("North")]);
        assert_eq!(view.weights, Some(vec![10.0]));
    }

    #[test]
    fn restriction_to_subset() {
        let mut db = MicrodataDb::new("m", ["a", "b"]).unwrap();
        db.push_row(vec![Value::str("x"), Value::str("y")]).unwrap();
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "a", "");
        dict.register_attr("m", "b", "");
        dict.set_category("m", "a", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("m", "b", Category::QuasiIdentifier)
            .unwrap();
        let restricted = ["b".to_string()];
        let view =
            MicrodataView::from_db_with(&db, &dict, NullSemantics::MaybeMatch, Some(&restricted))
                .unwrap();
        assert_eq!(view.qi_names, vec!["b"]);
        // restricting away everything is an error
        let none: [String; 0] = [];
        assert!(
            MicrodataView::from_db_with(&db, &dict, NullSemantics::MaybeMatch, Some(&none))
                .is_err()
        );
    }

    #[test]
    fn risky_tuples_thresholding() {
        let report = RiskReport {
            measure: "test".into(),
            risks: vec![0.1, 0.6, 0.5, 1.0],
            details: vec![TupleRiskDetail::default(); 4],
        };
        assert_eq!(report.risky_tuples(0.5), vec![1, 3]);
        assert_eq!(report.max_risk(), 1.0);
        assert!((report.mean_risk() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn no_quasi_identifiers_is_an_error() {
        let mut db = MicrodataDb::new("m", ["a"]).unwrap();
        db.push_row(vec![Value::str("x")]).unwrap();
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "a", "");
        dict.set_category("m", "a", Category::NonIdentifying)
            .unwrap();
        assert!(MicrodataView::from_db(&db, &dict).is_err());
    }

    #[test]
    fn helper_builds_views() {
        let v = view_of(vec![vec!["a", "b"], vec!["a", "c"]], None);
        assert_eq!(v.len(), 2);
        assert_eq!(v.width(), 2);
    }
}
