//! Membership-disclosure ("presence") risk — the differential-privacy
//! direction the paper names as future work (§6):
//!
//! > "an interesting concept may be adopted in our approach so as to
//! > develop a new family of risk measures, based on the idea that an
//! > individual's privacy may be violated even knowing the absence of the
//! > individual from the microdata."
//!
//! Re-identification asks *which* oracle record a tuple links to;
//! membership disclosure asks whether an adversary can tell that the
//! respondent participated **at all**. In DP terms, consider the released
//! class statistics with and without tuple `t`: the log-ratio of the
//! class's population mass,
//!
//! ```text
//! ε_t = ln( Σw_group / (Σw_group − w_t) )
//! ```
//!
//! bounds the adversary's inference advantage about `t`'s presence, and
//! `ρ_t = 1 − e^{−ε_t} = w_t / Σw_group` is the corresponding risk score:
//! a respondent carrying all of its class's population mass (a true
//! population unique) scores 1; a respondent hidden in a heavy class
//! scores near 0. The score composes with the anonymization cycle like
//! any other measure — suppression grows `Σw_group` under maybe-match and
//! pushes `ρ` down.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};

/// DP-inspired membership-disclosure risk (`ρ = w_t / Σw_group`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PresenceRisk;

impl PresenceRisk {
    /// The per-tuple privacy-loss bound `ε_t = ln(Σw / (Σw − w_t))`
    /// corresponding to a risk score (`∞` encoded as `f64::INFINITY`).
    pub fn epsilon(risk: f64) -> f64 {
        if risk >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - risk).ln()
        }
    }
}

impl RiskMeasure for PresenceRisk {
    fn name(&self) -> &str {
        "presence-risk"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        let Some(weights) = &view.weights else {
            return Err(RiskError::View(
                "presence risk requires sampling weights".into(),
            ));
        };
        if let Some(bad) = weights.iter().find(|x| !x.is_finite() || **x <= 0.0) {
            return Err(RiskError::View(format!(
                "sampling weights must be positive and finite, found {bad}"
            )));
        }
        let stats = view.group_stats();
        let mut risks = Vec::with_capacity(view.len());
        let mut details = Vec::with_capacity(view.len());
        for (i, (&f, &wsum)) in stats.count.iter().zip(stats.weight_sum.iter()).enumerate() {
            let r = (weights[i] / wsum).clamp(0.0, 1.0);
            risks.push(r);
            details.push(TupleRiskDetail {
                frequency: f,
                weight_sum: wsum,
                note: format!("ε={:.4}", PresenceRisk::epsilon(r)),
            });
        }
        Ok(RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        })
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        let weights = view.weights.as_ref()?;
        if weights.len() != view.len() {
            return None;
        }
        let (_, wsum) = super::tuple_group(view, row);
        if wsum <= 0.0 {
            return Some(1.0);
        }
        Some((weights[row] / wsum).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;
    use crate::maybe_match::NullSemantics;
    use vadalog::Value;

    #[test]
    fn population_unique_scores_one() {
        // a sample-unique tuple whose weight is 1: the whole class mass is
        // the respondent itself
        let view = view_of(
            vec![vec!["rare"], vec!["common"], vec!["common"], vec!["common"]],
            Some(vec![1.0, 500.0, 500.0, 500.0]),
        );
        let report = PresenceRisk.evaluate(&view).unwrap();
        assert_eq!(report.risks[0], 1.0);
        // members of the heavy class each carry a third of its mass
        assert!((report.risks[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_class_hides_membership() {
        let view = view_of(
            vec![vec!["a"], vec!["a"], vec!["a"]],
            Some(vec![10.0, 10.0, 10.0]),
        );
        let report = PresenceRisk.evaluate(&view).unwrap();
        for r in &report.risks {
            assert!((r - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn differs_from_reidentification() {
        // re-identification scores 1/Σw (same for the whole class);
        // presence risk scores w_t/Σw (heavier members are more exposed)
        use super::super::ReIdentification;
        let view = view_of(vec![vec!["a"], vec!["a"]], Some(vec![1.0, 9.0]));
        let presence = PresenceRisk.evaluate(&view).unwrap();
        let reid = ReIdentification.evaluate(&view).unwrap();
        assert!((presence.risks[0] - 0.1).abs() < 1e-12);
        assert!((presence.risks[1] - 0.9).abs() < 1e-12);
        assert!((reid.risks[0] - reid.risks[1]).abs() < 1e-12);
    }

    #[test]
    fn epsilon_mapping() {
        assert_eq!(PresenceRisk::epsilon(1.0), f64::INFINITY);
        assert!((PresenceRisk::epsilon(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(PresenceRisk::epsilon(0.0), 0.0);
    }

    #[test]
    fn suppression_lowers_presence_risk() {
        let mut view = view_of(
            vec![vec!["Roma", "Textiles"], vec!["Roma", "Commerce"]],
            Some(vec![2.0, 50.0]),
        );
        view.semantics = NullSemantics::MaybeMatch;
        let before = PresenceRisk.evaluate(&view).unwrap().risks[0];
        view.patch_cell(0, 1, &Value::Null(0), None);
        let after = PresenceRisk.evaluate(&view).unwrap().risks[0];
        assert!(after < before);
    }

    #[test]
    fn incremental_matches_full_evaluation() {
        let view = view_of(
            vec![vec!["a"], vec!["a"], vec!["b"]],
            Some(vec![3.0, 7.0, 2.0]),
        );
        let full = PresenceRisk.evaluate(&view).unwrap();
        for row in 0..view.len() {
            let inc = PresenceRisk.evaluate_tuple(&view, row).unwrap();
            assert!((inc - full.risks[row]).abs() < 1e-12);
        }
    }

    #[test]
    fn requires_weights() {
        let view = view_of(vec![vec!["a"]], None);
        assert!(PresenceRisk.evaluate(&view).is_err());
    }

    #[test]
    fn drives_the_cycle() {
        use crate::dictionary::{Category, MetadataDictionary};
        use crate::prelude::*;
        let mut db = MicrodataDb::new("m", ["id", "q", "w"]).unwrap();
        for (id, q, w) in [(1, "rare", 1), (2, "common", 80), (3, "common", 80)] {
            db.push_row(vec![Value::Int(id), Value::str(q), Value::Int(w)])
                .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "q", "w"] {
            dict.register_attr("m", a, "");
        }
        dict.set_category("m", "id", Category::Identifier).unwrap();
        dict.set_category("m", "q", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("m", "w", Category::Weight).unwrap();
        let risk = PresenceRisk;
        let anonymizer = LocalSuppression::default();
        let out = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        assert_eq!(out.final_risky, 0);
        assert!(out.nulls_injected >= 1);
    }
}
