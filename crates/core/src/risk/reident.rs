//! Re-identification-based risk (paper §2.2, Algorithm 3).
//!
//! The sampling weight `W_t` of a tuple estimates how many entities of the
//! underlying population share its quasi-identifier combination; it is an
//! estimator for the join cardinality `|σ_t(M) ⋈ O|` against the identity
//! oracle. The disclosure risk of a tuple is the reciprocal of the summed
//! weights of its equivalence group:
//!
//! ```text
//! ρ_q̂ = 1 / Σ_{t ∈ σ_{q=q̂}(M)} W_t        (msum over contributors ⟨I⟩)
//! ```
//!
//! For a sample-unique tuple this degenerates to `1/W_t` — e.g. tuple 4 of
//! Figure 1 (the only North/Textiles/1000+ company) has risk `1/60 ≈ 0.016`.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};
use crate::columnar::par_map_rows;
use crate::maybe_match::GroupStats;

/// Re-identification-based risk evaluation (Algorithm 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReIdentification;

impl ReIdentification {
    /// Validate the view's weights: the reciprocal-weight model needs
    /// strictly positive, finite weights. Shared by cold and warm paths.
    fn validate_weights(view: &MicrodataView) -> Result<(), RiskError> {
        if let Some(w) = &view.weights {
            if let Some(bad) = w.iter().find(|x| !x.is_finite() || **x <= 0.0) {
                return Err(RiskError::View(format!(
                    "sampling weights must be positive and finite, found {bad}"
                )));
            }
        }
        Ok(())
    }

    /// Map group statistics to the re-identification report. Shared by
    /// [`RiskMeasure::evaluate`] and the warm-start hook. Per-row scoring
    /// is a pure map over the statistics, so it shards across `threads`
    /// workers with order-preserving reassembly.
    fn report(&self, threads: usize, stats: &GroupStats) -> RiskReport {
        let n = stats.count.len();
        let risks: Vec<f64> = par_map_rows(n, threads, |i| {
            let s = stats.weight_sum[i];
            if s > 0.0 {
                (1.0 / s).min(1.0)
            } else {
                1.0
            }
        });
        let details = par_map_rows(n, threads, |i| TupleRiskDetail {
            frequency: stats.count[i],
            weight_sum: stats.weight_sum[i],
            note: String::new(),
        });
        RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        }
    }
}

impl RiskMeasure for ReIdentification {
    fn name(&self) -> &str {
        "re-identification"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        Self::validate_weights(view)?;
        let stats = view.group_stats();
        Ok(self.report(view.risk_threads, &stats))
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        let (_, wsum) = super::tuple_group(view, row);
        Some(if wsum > 0.0 {
            (1.0 / wsum).min(1.0)
        } else {
            1.0
        })
    }

    fn tuple_risk_from_stats(
        &self,
        _view: &MicrodataView,
        stats: &GroupStats,
        row: usize,
    ) -> Option<f64> {
        let wsum = stats.weight_sum[row];
        Some(if wsum > 0.0 {
            (1.0 / wsum).min(1.0)
        } else {
            1.0
        })
    }

    fn report_from_groups(
        &self,
        view: &MicrodataView,
        stats: &GroupStats,
    ) -> Option<Result<RiskReport, RiskError>> {
        Some(Self::validate_weights(view).map(|()| self.report(view.risk_threads, stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;
    use crate::maybe_match::NullSemantics;
    use vadalog::Value;

    #[test]
    fn sample_unique_risk_is_reciprocal_weight() {
        // tuple 4 of Figure 1: unique combination, weight 60 → risk 1/60
        let view = view_of(
            vec![
                vec!["North", "Textiles", "1000+"],
                vec!["South", "Commerce", "201-1000"],
            ],
            Some(vec![60.0, 190.0]),
        );
        let report = ReIdentification.evaluate(&view).unwrap();
        assert!((report.risks[0] - 1.0 / 60.0).abs() < 1e-12);
        assert!((report.risks[1] - 1.0 / 190.0).abs() < 1e-12);
    }

    #[test]
    fn group_weights_are_summed() {
        let view = view_of(
            vec![vec!["a"], vec!["a"], vec!["b"]],
            Some(vec![10.0, 30.0, 5.0]),
        );
        let report = ReIdentification.evaluate(&view).unwrap();
        assert!((report.risks[0] - 1.0 / 40.0).abs() < 1e-12);
        assert!((report.risks[1] - 1.0 / 40.0).abs() < 1e-12);
        assert!((report.risks[2] - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(report.details[0].frequency, 2);
    }

    #[test]
    fn unweighted_view_uses_counts() {
        let view = view_of(vec![vec!["a"], vec!["a"], vec!["b"]], None);
        let report = ReIdentification.evaluate(&view).unwrap();
        assert!((report.risks[0] - 0.5).abs() < 1e-12);
        assert!((report.risks[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn risk_is_clamped_to_one() {
        // a fractional weight below 1 would yield risk > 1; clamp it
        let view = view_of(vec![vec!["a"]], Some(vec![0.5]));
        let report = ReIdentification.evaluate(&view).unwrap();
        assert_eq!(report.risks[0], 1.0);
    }

    #[test]
    fn non_positive_weights_rejected() {
        let view = view_of(vec![vec!["a"]], Some(vec![0.0]));
        assert!(ReIdentification.evaluate(&view).is_err());
        let view = view_of(vec![vec!["a"]], Some(vec![f64::NAN]));
        assert!(ReIdentification.evaluate(&view).is_err());
    }

    #[test]
    fn suppression_reduces_risk_under_maybe_match() {
        let mut view = view_of(
            vec![vec!["Roma", "Textiles"], vec!["Roma", "Commerce"]],
            Some(vec![10.0, 10.0]),
        );
        let before = ReIdentification.evaluate(&view).unwrap().risks[0];
        view.patch_cell(0, 1, &Value::Null(0), None);
        view.semantics = NullSemantics::MaybeMatch;
        let after = ReIdentification.evaluate(&view).unwrap().risks[0];
        assert!(after < before);
        assert!((after - 1.0 / 20.0).abs() < 1e-12);
    }
}
