//! SUDA — Special Unique Detection Algorithm (paper Algorithm 6).
//!
//! A *sample unique* (SU) of a tuple is a set of quasi-identifier
//! attributes whose values single it out in the microdata DB. A *minimal
//! sample unique* (MSU) is an SU with no proper SU subset — the data-level
//! analogue of a key vs. a superkey. Tuples with small MSUs are special:
//! very few attribute values pin them down, so they carry high disclosure
//! risk.
//!
//! Per Algorithm 6 Rule 8, a tuple is dangerous (risk 1) when it has an
//! MSU of size below the threshold `k`. A SUDA2-style *score* is also
//! reported: each MSU of size `s` over `m` quasi-identifiers contributes
//! `(m − s)!`-proportional mass, so smaller MSUs weigh more.
//!
//! ## Enumeration
//!
//! Attribute subsets are enumerated as bitmasks in order of increasing
//! size. For each subset one grouping pass marks the rows that are unique
//! on it; a row's subset is an MSU iff none of its already-recorded MSUs
//! is contained in it. Enumerating small subsets first makes the
//! containment check sound, and recording MSUs as masks keeps it a couple
//! of bitwise operations — the practical counterpart of the "greedy
//! activation of Rule 7" that the paper credits for avoiding the
//! combinatorial blowup in Figure 7f.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};

/// The minimal sample uniques of one tuple, as column bitmasks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsuSet {
    /// Each mask selects the QI columns of one MSU.
    pub masks: Vec<u32>,
}

impl MsuSet {
    /// Sizes (attribute counts) of the MSUs.
    pub fn sizes(&self) -> Vec<u32> {
        self.masks.iter().map(|m| m.count_ones()).collect()
    }

    /// Size of the smallest MSU, if any.
    pub fn min_size(&self) -> Option<u32> {
        self.sizes().into_iter().min()
    }
}

/// SUDA risk measure (Algorithm 6).
#[derive(Debug, Clone, Copy)]
pub struct Suda {
    /// A tuple is dangerous if it has an MSU with fewer attributes than
    /// this (the "MSU threshold", 3 in the paper's experiments).
    pub msu_threshold: usize,
    /// Cap on the subset sizes enumerated (None = all subsets).
    pub max_msu_size: Option<usize>,
}

impl Default for Suda {
    fn default() -> Self {
        Suda {
            msu_threshold: 3,
            max_msu_size: None,
        }
    }
}

impl Suda {
    /// SUDA with the given MSU threshold, enumerating all subset sizes.
    pub fn new(msu_threshold: usize) -> Self {
        Suda {
            msu_threshold,
            max_msu_size: None,
        }
    }
}

/// Enumerate the minimal sample uniques of every row.
///
/// `max_size` caps the enumerated subset size (the full width if `None`).
/// Complexity is `O(2^m · n)` in the worst case with `m` capped at 32
/// columns; the per-row minimality pruning keeps the recorded sets small.
pub fn minimal_sample_uniques(view: &MicrodataView, max_size: Option<usize>) -> Vec<MsuSet> {
    let m = view.width();
    assert!(m <= 32, "SUDA enumeration supports at most 32 QI columns");
    let n = view.len();
    let cap = max_size.unwrap_or(m).min(m);
    let mut msus: Vec<MsuSet> = vec![MsuSet::default(); n];
    if n == 0 || m == 0 {
        return msus;
    }

    // masks ordered by popcount, then numerically (deterministic)
    let mut masks: Vec<u32> = (1u32..(1u32 << m)).collect();
    masks.retain(|mask| (mask.count_ones() as usize) <= cap);
    masks.sort_by_key(|mask| (mask.count_ones(), *mask));

    for mask in masks {
        let positions: Vec<usize> = (0..m).filter(|c| mask & (1 << c) != 0).collect();
        let stats = view.group_stats_on(&positions, None, view.semantics);
        for (row, &count) in stats.count.iter().enumerate() {
            if count == 1 {
                // minimal iff no recorded MSU of this row is a subset
                // (subset test, not membership — clippy's contains() hint
                // does not apply)
                #[allow(clippy::manual_contains)]
                let minimal = !msus[row].masks.iter().any(|&mm| mm & mask == mm);
                if minimal {
                    msus[row].masks.push(mask);
                }
            }
        }
    }
    msus
}

/// Factorial as f64 (inputs are small: at most the number of QI columns).
fn fact(n: u32) -> f64 {
    (1..=n as u64).map(|x| x as f64).product()
}

/// Data Intrusion Simulation (DIS) scores from a SUDA report, following
/// the sdcMicro convention: each record's SUDA score is scaled by the
/// intrusion fraction (sdcMicro's `DisFraction`, default 0.1) and clamped
/// to `[0, 1]`. The result estimates the probability that a match against
/// this record made by an intruder is correct; records without sample
/// uniques score 0.
pub fn dis_scores(report: &super::RiskReport, dis_fraction: f64) -> Vec<f64> {
    report
        .details
        .iter()
        .map(|d| (d.weight_sum * dis_fraction).clamp(0.0, 1.0))
        .collect()
}

impl RiskMeasure for Suda {
    fn name(&self) -> &str {
        "suda"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        let m = view.width();
        if m > 32 {
            return Err(RiskError::View(format!(
                "SUDA supports at most 32 quasi-identifiers, got {m}"
            )));
        }
        let msus = minimal_sample_uniques(view, self.max_msu_size);
        let mut risks = Vec::with_capacity(view.len());
        let mut details = Vec::with_capacity(view.len());
        // normalization for the SUDA2-style score: the largest possible
        // per-MSU contribution is (m-1)! (an MSU of size 1)
        let norm = fact(m.saturating_sub(1) as u32).max(1.0);
        for set in &msus {
            let dangerous = set
                .sizes()
                .iter()
                .any(|&s| (s as usize) < self.msu_threshold);
            risks.push(if dangerous { 1.0 } else { 0.0 });
            let score: f64 = set
                .sizes()
                .iter()
                .map(|&s| fact(m.saturating_sub(s as usize) as u32))
                .sum::<f64>()
                / norm;
            details.push(TupleRiskDetail {
                frequency: set.masks.len(),
                weight_sum: score,
                note: format!("msu sizes {:?}", set.sizes()),
            });
        }
        Ok(RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;

    /// The Figure 1 quasi-identifier fragment relevant to the paper's
    /// tuple-20 worked example (Area, Sector, Employees, Res. Rev.).
    fn figure1_view() -> MicrodataView {
        view_of(
            vec![
                vec!["North", "Public Service", "50-200", "0-30"],
                vec!["South", "Commerce", "201-1000", "0-30"],
                vec!["Center", "Commerce", "1000+", "0-30"],
                vec!["North", "Textiles", "1000+", "90+"],
                vec!["North", "Construction", "1000+", "90+"],
                vec!["North", "Other", "1000+", "0-30"],
                vec!["North", "Other", "201-1000", "60-90"],
                vec!["North", "Textiles", "201-1000", "60-90"],
                vec!["South", "Public Service", "50-200", "0-30"],
                vec!["South", "Commerce", "1000+", "0-30"],
                vec!["South", "Commerce", "50-200", "30-60"],
                vec!["Center", "Commerce", "1000+", "60-90"],
                vec!["Center", "Construction", "201-1000", "0-30"],
                vec!["Center", "Other", "50-200", "0-30"],
                vec!["Center", "Public Service", "201-1000", "30-60"],
                vec!["North", "Textiles", "50-200", "0-30"],
                vec!["South", "Textiles", "50-200", "0-30"],
                vec!["Center", "Commerce", "201-1000", "0-30"],
                vec!["Center", "Construction", "50-200", "0-30"],
                vec!["Center", "Financial", "1000+", "30-60"],
            ],
            None,
        )
    }

    #[test]
    fn tuple_20_msus_match_paper() {
        // Paper §4.2: tuple 20 (index 19) has exactly 2 MSUs:
        // {Sector=Financial} and {Employees=1000+, Res.Rev=30-60}.
        let view = figure1_view();
        let msus = minimal_sample_uniques(&view, None);
        let t20 = &msus[19];
        assert_eq!(t20.masks.len(), 2, "msus: {:?}", t20.masks);
        let mut sizes = t20.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
        // {Sector} is column 1 → mask 0b0010
        assert!(t20.masks.contains(&0b0010));
        // {Employees, Res.Rev} are columns 2,3 → mask 0b1100
        assert!(t20.masks.contains(&0b1100));
    }

    #[test]
    fn msus_are_sample_unique_and_minimal() {
        let view = figure1_view();
        let msus = minimal_sample_uniques(&view, None);
        for (row, set) in msus.iter().enumerate() {
            for &mask in &set.masks {
                let positions: Vec<usize> =
                    (0..view.width()).filter(|c| mask & (1 << c) != 0).collect();
                // sample unique
                let stats = view.group_stats_on(&positions, None, view.semantics);
                assert_eq!(stats.count[row], 1, "row {row} mask {mask:b} not unique");
                // minimal: every proper subset is non-unique
                let mut sub = (mask.wrapping_sub(1)) & mask;
                while sub != 0 {
                    let sub_pos: Vec<usize> =
                        (0..view.width()).filter(|c| sub & (1 << c) != 0).collect();
                    let s = view.group_stats_on(&sub_pos, None, view.semantics);
                    assert!(
                        s.count[row] > 1,
                        "row {row}: subset {sub:b} of MSU {mask:b} is also unique"
                    );
                    sub = (sub.wrapping_sub(1)) & mask;
                }
            }
        }
    }

    #[test]
    fn duplicated_rows_have_no_msu() {
        let view = view_of(vec![vec!["a", "b"], vec!["a", "b"]], None);
        let msus = minimal_sample_uniques(&view, None);
        assert!(msus[0].masks.is_empty());
        assert!(msus[1].masks.is_empty());
    }

    #[test]
    fn risk_flags_small_msus() {
        let view = figure1_view();
        let report = Suda::new(3).evaluate(&view).unwrap();
        // tuple 20 has an MSU of size 1 < 3 → dangerous
        assert_eq!(report.risks[19], 1.0);
        // a tuple with no MSU below size 3 is safe; find one to contrast
        assert!(report.risks.contains(&0.0));
    }

    #[test]
    fn msu_threshold_one_flags_nothing_without_size_zero() {
        let view = figure1_view();
        let report = Suda::new(1).evaluate(&view).unwrap();
        // sizes are ≥ 1, so nothing is < 1
        assert!(report.risks.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn max_size_caps_enumeration() {
        let view = figure1_view();
        let capped = minimal_sample_uniques(&view, Some(1));
        for set in &capped {
            assert!(set.sizes().iter().all(|&s| s == 1));
        }
    }

    #[test]
    fn score_weighs_small_msus_more() {
        let view = figure1_view();
        let report = Suda::default().evaluate(&view).unwrap();
        // tuple 20 (MSU size 1) must out-score a tuple whose smallest MSU
        // is larger, e.g. tuple 1 (index 0).
        let msus = minimal_sample_uniques(&view, None);
        if let (Some(a), Some(b)) = (msus[19].min_size(), msus[0].min_size()) {
            if a < b {
                assert!(report.details[19].weight_sum > report.details[0].weight_sum);
            }
        }
    }

    #[test]
    fn dis_scores_scale_suda_scores() {
        let view = figure1_view();
        let report = Suda::default().evaluate(&view).unwrap();
        let dis = dis_scores(&report, 0.1);
        assert_eq!(dis.len(), report.risks.len());
        for (d, detail) in dis.iter().zip(report.details.iter()) {
            assert!((0.0..=1.0).contains(d));
            if detail.weight_sum == 0.0 {
                assert_eq!(*d, 0.0, "no sample uniques, no intrusion risk");
            }
        }
        // tuple 20 (smallest MSU) has the highest DIS score
        let max_at = dis
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_at, 19);
    }

    #[test]
    fn empty_view_is_fine() {
        let view = view_of(vec![], None);
        let report = Suda::default().evaluate(&view).unwrap();
        assert!(report.risks.is_empty());
    }
}
