//! t-closeness: distributional attribute-disclosure risk (Li, Li,
//! Venkatasubramanian), completing the k-anonymity / l-diversity /
//! t-closeness ladder of the SDC tools the paper benchmarks against.
//!
//! l-diversity counts distinct sensitive values, but a class can be
//! l-diverse and still leak: if 95 % of its members share one diagnosis,
//! an attacker's posterior shifts dramatically. A class is *t-close* when
//! the distance between its sensitive-value distribution and the global
//! one is at most `t`. For categorical attributes the distance is total
//! variation (the Earth Mover's Distance under the uniform ground
//! metric): `TV(P, Q) = ½ Σ_v |P(v) − Q(v)|`.
//!
//! Like [`LDiversity`](super::LDiversity), the measure captures the
//! sensitive column at construction (the cycle only rewrites
//! quasi-identifiers). Labelled nulls in the sensitive column are ignored
//! in both distributions — an unknown value constrains neither side.

use super::{MicrodataView, RiskError, RiskMeasure, RiskReport, TupleRiskDetail};
use crate::dictionary::{Category, MetadataDictionary};
use crate::model::MicrodataDb;
use std::collections::HashMap;
use vadalog::Value;

/// t-closeness risk: 1 if the tuple's class distribution of the sensitive
/// attribute is farther than `t` (total variation) from the global one.
#[derive(Debug, Clone)]
pub struct TCloseness {
    /// Maximum tolerated total-variation distance.
    pub t: f64,
    /// Name of the sensitive attribute (for reports).
    pub sensitive_attr: String,
    sensitive: Vec<Value>,
}

impl TCloseness {
    /// Build the measure from a microdata DB, reading the attribute
    /// categorized as [`Category::Sensitive`].
    pub fn from_db(db: &MicrodataDb, dict: &MetadataDictionary, t: f64) -> Result<Self, RiskError> {
        let sensitive_attrs = dict.attrs_with_category(&db.name, Category::Sensitive)?;
        let Some(attr) = sensitive_attrs.first() else {
            return Err(RiskError::View(format!(
                "microdata DB '{}' has no attribute categorized as sensitive",
                db.name
            )));
        };
        Ok(TCloseness {
            t: t.clamp(0.0, 1.0),
            sensitive_attr: attr.clone(),
            sensitive: db.column(attr)?.into_iter().cloned().collect(),
        })
    }

    /// Build the measure from an explicit sensitive column.
    pub fn from_column(t: f64, attr: impl Into<String>, column: Vec<Value>) -> Self {
        TCloseness {
            t: t.clamp(0.0, 1.0),
            sensitive_attr: attr.into(),
            sensitive: column,
        }
    }

    fn distribution(&self, members: impl Iterator<Item = usize>) -> HashMap<&Value, f64> {
        let mut counts: HashMap<&Value, f64> = HashMap::new();
        let mut total = 0.0f64;
        for m in members {
            let v = &self.sensitive[m];
            if v.is_null() {
                continue;
            }
            *counts.entry(v).or_insert(0.0) += 1.0;
            total += 1.0;
        }
        if total > 0.0 {
            for c in counts.values_mut() {
                *c /= total;
            }
        }
        counts
    }
}

/// Total variation distance between two categorical distributions.
fn total_variation(p: &HashMap<&Value, f64>, q: &HashMap<&Value, f64>) -> f64 {
    let mut keys: Vec<&&Value> = p.keys().chain(q.keys()).collect();
    keys.sort();
    keys.dedup();
    0.5 * keys
        .into_iter()
        .map(|k| (p.get(*k).unwrap_or(&0.0) - q.get(*k).unwrap_or(&0.0)).abs())
        .sum::<f64>()
}

impl RiskMeasure for TCloseness {
    fn name(&self) -> &str {
        "t-closeness"
    }

    fn evaluate(&self, view: &MicrodataView) -> Result<RiskReport, RiskError> {
        if self.sensitive.len() != view.len() {
            return Err(RiskError::View(format!(
                "sensitive column covers {} rows, view has {}",
                self.sensitive.len(),
                view.len()
            )));
        }
        let global = self.distribution(0..view.len());
        let mut risks = Vec::with_capacity(view.len());
        let mut details = Vec::with_capacity(view.len());
        for target in 0..view.len() {
            let members: Vec<usize> = (0..view.len())
                .filter(|&j| view.rows_match(target, j))
                .collect();
            let class = self.distribution(members.iter().copied());
            let distance = total_variation(&class, &global);
            risks.push(if distance > self.t { 1.0 } else { 0.0 });
            details.push(TupleRiskDetail {
                frequency: members.len(),
                weight_sum: distance,
                note: format!(
                    "TV distance {distance:.4} vs t={:.2} on '{}'",
                    self.t, self.sensitive_attr
                ),
            });
        }
        Ok(RiskReport {
            measure: self.name().to_string(),
            risks,
            details,
        })
    }

    fn evaluate_tuple(&self, view: &MicrodataView, row: usize) -> Option<f64> {
        if self.sensitive.len() != view.len() {
            return None;
        }
        let global = self.distribution(0..view.len());
        let members = (0..view.len()).filter(|&j| view.rows_match(row, j));
        let class = self.distribution(members);
        Some(if total_variation(&class, &global) > self.t {
            1.0
        } else {
            0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::view_of;
    use super::*;
    use crate::prelude::*;

    fn skewed() -> (MicrodataView, TCloseness) {
        // global diagnosis split 50/50; the "130**" class is all-cancer
        let view = view_of(
            vec![vec!["130"], vec!["130"], vec!["148"], vec!["148"]],
            None,
        );
        let column = vec![
            Value::str("cancer"),
            Value::str("cancer"),
            Value::str("flu"),
            Value::str("flu"),
        ];
        (view, TCloseness::from_column(0.3, "dx", column))
    }

    #[test]
    fn skewed_class_violates_t() {
        let (view, measure) = skewed();
        let report = measure.evaluate(&view).unwrap();
        // each class is at TV distance 0.5 from the 50/50 global → risky
        assert_eq!(report.risks, vec![1.0, 1.0, 1.0, 1.0]);
        assert!((report.details[0].weight_sum - 0.5).abs() < 1e-12);
    }

    #[test]
    fn representative_class_is_safe() {
        let view = view_of(vec![vec!["a"], vec!["a"], vec!["b"], vec!["b"]], None);
        let column = vec![
            Value::str("cancer"),
            Value::str("flu"),
            Value::str("cancer"),
            Value::str("flu"),
        ];
        let measure = TCloseness::from_column(0.2, "dx", column);
        let report = measure.evaluate(&view).unwrap();
        assert_eq!(report.risks, vec![0.0; 4]);
    }

    #[test]
    fn total_variation_properties() {
        let a = Value::str("a");
        let b = Value::str("b");
        let mut p = HashMap::new();
        p.insert(&a, 1.0);
        let mut q = HashMap::new();
        q.insert(&b, 1.0);
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn nulls_in_sensitive_column_are_ignored() {
        let view = view_of(vec![vec!["a"], vec!["a"]], None);
        let column = vec![Value::str("flu"), Value::Null(0)];
        let measure = TCloseness::from_column(0.1, "dx", column);
        let report = measure.evaluate(&view).unwrap();
        // class distribution = global distribution = {flu: 1.0}
        assert_eq!(report.risks, vec![0.0, 0.0]);
    }

    #[test]
    fn incremental_matches_full() {
        let (view, measure) = skewed();
        let full = measure.evaluate(&view).unwrap();
        for row in 0..view.len() {
            assert_eq!(measure.evaluate_tuple(&view, row), Some(full.risks[row]));
        }
    }

    #[test]
    fn from_db_requires_sensitive_category() {
        let mut db = MicrodataDb::new("m", ["q", "s"]).unwrap();
        db.push_row(vec![Value::str("x"), Value::str("flu")])
            .unwrap();
        let mut dict = MetadataDictionary::new();
        dict.register_attr("m", "q", "");
        dict.register_attr("m", "s", "");
        dict.set_category("m", "q", Category::QuasiIdentifier)
            .unwrap();
        assert!(TCloseness::from_db(&db, &dict, 0.2).is_err());
        dict.set_category("m", "s", Category::Sensitive).unwrap();
        let m = TCloseness::from_db(&db, &dict, 0.2).unwrap();
        assert_eq!(m.sensitive_attr, "s");
    }

    #[test]
    fn cycle_with_t_closeness_converges() {
        let mut db = MicrodataDb::new("m", ["id", "zip", "dx"]).unwrap();
        let rows = [
            (1, "130", "cancer"),
            (2, "130", "cancer"),
            (3, "148", "flu"),
            (4, "148", "flu"),
            (5, "155", "cancer"),
            (6, "155", "flu"),
        ];
        for (id, zip, dx) in rows {
            db.push_row(vec![Value::Int(id), Value::str(zip), Value::str(dx)])
                .unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "zip", "dx"] {
            dict.register_attr("m", a, "");
        }
        dict.set_category("m", "id", Category::Identifier).unwrap();
        dict.set_category("m", "zip", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("m", "dx", Category::Sensitive).unwrap();

        let measure = TCloseness::from_db(&db, &dict, 0.34).unwrap();
        let anonymizer = LocalSuppression::default();
        let out = AnonymizationCycle::new(&measure, &anonymizer, CycleConfig::default())
            .run(&db, &dict)
            .unwrap();
        assert_eq!(out.final_risky, 0);
        // suppression merges classes until each reflects the global mix
        assert!(out.nulls_injected >= 1);
    }
}
