//! Sampling-weight estimation (paper §2.1, "Context and sampling weight").
//!
//! The weight `W_t` of a tuple measures its representativeness w.r.t. the
//! context `C`: the expected number of entities in the identity oracle
//! with the same characteristics as `t` under a similarity `φ`. Two
//! estimators are provided:
//!
//! - [`from_oracle`] — when (a simulation of) the identity oracle is
//!   available, count its tuples matching `t` on the quasi-identifiers
//!   (the simplest `φ`: equality);
//! - [`from_sampling_fraction`] — when only the sample is available, scale
//!   each tuple's sample frequency by the inverse sampling fraction
//!   `N / n`, the textbook posterior expectation under uniform sampling.

use crate::maybe_match::{group_stats, NullSemantics};
use std::collections::HashMap;
use vadalog::Value;

/// Estimate weights against an explicit oracle: `W_t` = number of oracle
/// rows matching `t` on the (already projected) quasi-identifier columns.
/// Tuples absent from the oracle get weight 1 (they at least match
/// themselves).
pub fn from_oracle(sample_qi: &[Vec<Value>], oracle_qi: &[Vec<Value>]) -> Vec<f64> {
    let mut counts: HashMap<&[Value], usize> = HashMap::with_capacity(oracle_qi.len());
    for row in oracle_qi {
        *counts.entry(row.as_slice()).or_insert(0) += 1;
    }
    sample_qi
        .iter()
        .map(|r| counts.get(r.as_slice()).copied().unwrap_or(0).max(1) as f64)
        .collect()
}

/// Estimate weights from the sample alone: each tuple's equivalence-class
/// frequency scaled by `population_size / sample_size`.
pub fn from_sampling_fraction(sample_qi: &[Vec<Value>], population_size: usize) -> Vec<f64> {
    let n = sample_qi.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = population_size.max(n) as f64 / n as f64;
    let stats = group_stats(sample_qi, None, NullSemantics::Standard);
    stats.count.iter().map(|&f| f as f64 * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(Value::str).collect()
    }

    #[test]
    fn oracle_counts_matches() {
        let sample = vec![r(&["North", "Textiles"]), r(&["South", "Commerce"])];
        let oracle = vec![
            r(&["North", "Textiles"]),
            r(&["North", "Textiles"]),
            r(&["North", "Textiles"]),
            r(&["South", "Commerce"]),
        ];
        let w = from_oracle(&sample, &oracle);
        assert_eq!(w, vec![3.0, 1.0]);
    }

    #[test]
    fn oracle_missing_combination_gets_floor_weight() {
        let sample = vec![r(&["unseen"])];
        let w = from_oracle(&sample, &[]);
        assert_eq!(w, vec![1.0]);
    }

    #[test]
    fn sampling_fraction_scales_frequencies() {
        let sample = vec![r(&["a"]), r(&["a"]), r(&["b"]), r(&["c"])];
        // population 40, sample 4 → scale 10
        let w = from_sampling_fraction(&sample, 40);
        assert_eq!(w, vec![20.0, 20.0, 10.0, 10.0]);
    }

    #[test]
    fn population_smaller_than_sample_is_clamped() {
        let sample = vec![r(&["a"]), r(&["b"])];
        let w = from_sampling_fraction(&sample, 1);
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn empty_sample() {
        assert!(from_sampling_fraction(&[], 100).is_empty());
        assert!(from_oracle(&[], &[]).is_empty());
    }
}
