//! Batched-cycle pins (PR-8): the batched heuristic is an *efficiency*
//! move, never a semantics change on safety.
//!
//! Four guarantees, per ISSUE 8:
//!
//! 1. **Convergence under `T`** — on tables where the one-tuple cycle
//!    converges, every batch strategy converges too, and never ends less
//!    safe (it may over-suppress: cross-class defusal inside a batch is
//!    deliberately not rechecked).
//! 2. **Thread-count determinism** — `risk_threads` is invisible: the
//!    transcripts (table, bitwise risks, audit) at 1 and 4 threads are
//!    byte-identical.
//! 3. **Warm-start compatibility** — warm batched ≡ cold batched: the
//!    batched path drops its statistics after a mutating iteration and
//!    regroups once, which must land on the same trajectory as a cold
//!    rebuild.
//! 4. **Journal resume mid-batch** — a batched iteration commits several
//!    actions; killing the journal at every frame boundary and midpoint
//!    inside those multi-action iterations must still resume to a
//!    bit-identical outcome.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use vadalog::Value;
use vadasa_core::cycle::{
    AnonymizationCycle, BatchStrategy, CycleConfig, CycleOutcome, TupleOrder,
};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::journal::record::{self, MAGIC};
use vadasa_core::journal::{JournalConfig, JOURNAL_FILE};
use vadasa_core::model::MicrodataDb;
use vadasa_core::prelude::{KAnonymity, LocalSuppression};
use vadasa_core::risk::RiskMeasure;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vadasa-batch-{}-{n}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Canonical rendering of every observable output of a run; equal strings
/// mean indistinguishable runs (same table, bitwise risks, audit trail).
fn transcript(o: &CycleOutcome) -> String {
    let mut t = String::new();
    let _ = writeln!(
        t,
        "iterations={} nulls={} recodings={} initial_risky={} final_risky={} termination={:?}",
        o.iterations, o.nulls_injected, o.recodings, o.initial_risky, o.final_risky, o.termination
    );
    for (i, r) in o.final_report.risks.iter().enumerate() {
        let _ = writeln!(t, "risk[{i}]={:016x}", r.to_bits());
    }
    for d in &o.audit.decisions {
        let _ = writeln!(
            t,
            "audit iter={} row={} risk={:016x} action={:?}",
            d.iteration,
            d.row,
            d.risk.to_bits(),
            d.action
        );
    }
    for r in 0..o.db.len() {
        let _ = writeln!(t, "row[{r}]={:?}", o.db.row(r).expect("row in range"));
    }
    t
}

/// A random categorical table with integer weights (the exact-summability
/// regime, so partitioned regrouping takes the parallel-eligible path).
fn random_table(rng: &mut StdRng) -> (MicrodataDb, MetadataDictionary) {
    let cols = rng.gen_range(2..=4usize);
    let rows = rng.gen_range(4..=16usize);
    let mut names: Vec<String> = vec!["id".into()];
    for c in 0..cols {
        names.push(format!("q{c}"));
    }
    names.push("w".into());
    let mut db = MicrodataDb::new("rand", names.clone()).unwrap();
    for r in 0..rows {
        let mut row = vec![Value::Int(r as i64)];
        for _ in 0..cols {
            let v = rng.gen_range(0..4u8);
            row.push(Value::str(["alpha", "beta", "gamma", "delta"][v as usize]));
        }
        row.push(Value::Int(rng.gen_range(1..40i64)));
        db.push_row(row).unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for n in &names {
        dict.register_attr("rand", n, "");
    }
    dict.set_category("rand", "id", Category::Identifier)
        .unwrap();
    for c in 0..cols {
        dict.set_category("rand", &format!("q{c}"), Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("rand", "w", Category::Weight).unwrap();
    (db, dict)
}

fn run(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: CycleConfig,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(risk, &anon, config)
        .run(db, dict)
        .expect("cycle runs")
}

fn batched_config(batch: BatchStrategy, risk_threads: usize) -> CycleConfig {
    CycleConfig {
        threshold: 0.5,
        tuple_order: TupleOrder::Fifo,
        batch: Some(batch),
        risk_threads,
        ..CycleConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pin 1: every batch strategy converges wherever one-tuple does, and
    /// never ends less safe (more suppressions allowed, fewer forbidden).
    #[test]
    fn batched_converges_and_is_never_less_safe(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (db, dict) = random_table(&mut rng);
        let risk = KAnonymity::new(2);
        let one = run(&db, &dict, &risk, batched_config(BatchStrategy::OneTuple, 1));
        for batch in [BatchStrategy::PerClass, BatchStrategy::TopN(3)] {
            let b = run(&db, &dict, &risk, batched_config(batch, 1));
            // Safety, not suppression count: trajectories legitimately
            // diverge (class-major order can defuse more rows per null,
            // or fewer), so the pin is that batched converges wherever
            // one-tuple does and every final risk sits under T.
            if one.final_risky == 0 {
                prop_assert_eq!(b.final_risky, 0,
                    "{:?} ended less safe than one-tuple", batch);
                prop_assert!(b.final_report.risks.iter().all(|r| *r <= 0.5),
                    "{:?} left a risk above the threshold", batch);
            }
            prop_assert!(b.iterations <= one.iterations,
                "{:?} took more iterations ({} > {})", batch, b.iterations, one.iterations);
        }
    }

    /// Pin 2: `risk_threads` is an evaluation strategy, not a semantics —
    /// transcripts at 1 and 4 threads are byte-identical.
    #[test]
    fn risk_thread_count_is_invisible(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (db, dict) = random_table(&mut rng);
        let risk = KAnonymity::new(2);
        let t1 = run(&db, &dict, &risk, batched_config(BatchStrategy::TopN(2), 1));
        let t4 = run(&db, &dict, &risk, batched_config(BatchStrategy::TopN(2), 4));
        prop_assert_eq!(transcript(&t1), transcript(&t4));
    }

    /// Pin 3: warm batched ≡ cold batched, byte for byte.
    #[test]
    fn warm_batched_equals_cold_batched(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (db, dict) = random_table(&mut rng);
        let risk = KAnonymity::new(2);
        let warm = run(&db, &dict, &risk, CycleConfig {
            warm_start: true,
            ..batched_config(BatchStrategy::PerClass, 1)
        });
        let cold = run(&db, &dict, &risk, CycleConfig {
            warm_start: false,
            ..batched_config(BatchStrategy::PerClass, 1)
        });
        prop_assert_eq!(transcript(&warm), transcript(&cold));
    }
}

/// A table whose first batched iteration takes several actions: three
/// sample-unique rows share a class-mate structure so `PerClass`/`TopN`
/// group multiple suppressions into one iteration.
fn multi_action_table() -> (MicrodataDb, MetadataDictionary) {
    let mut db = MicrodataDb::new("mb", ["Id", "A", "B", "W"]).unwrap();
    let rows = [
        // a heavy class (safe under k = 2)
        ("h1", "north", "steel", 20),
        ("h2", "north", "steel", 20),
        ("h3", "north", "steel", 20),
        // three singletons in one equivalence class-to-be: unique on (A, B)
        ("s1", "south", "wool", 2),
        ("s2", "south", "silk", 2),
        ("s3", "south", "linen", 2),
        // and one more singleton elsewhere
        ("s4", "east", "glass", 2),
    ];
    for (id, a, b, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(a),
            Value::str(b),
            Value::Int(w),
        ])
        .unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for a in ["Id", "A", "B", "W"] {
        dict.register_attr("mb", a, "");
    }
    dict.set_category("mb", "Id", Category::Identifier).unwrap();
    for a in ["A", "B"] {
        dict.set_category("mb", a, Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("mb", "W", Category::Weight).unwrap();
    (db, dict)
}

/// Pin 4: kill the journaled batched run at every frame boundary and
/// midpoint — including inside multi-action batch iterations — and
/// resume; every prefix must land on the uninterrupted transcript.
#[test]
fn batched_journal_resumes_identically_from_every_kill_point() {
    let (db, dict) = multi_action_table();
    let risk = KAnonymity::new(2);
    let anon = LocalSuppression::default();
    let config = batched_config(BatchStrategy::TopN(4), 1);

    let reference = transcript(
        &AnonymizationCycle::new(&risk, &anon, config.clone())
            .run(&db, &dict)
            .expect("reference run"),
    );
    // several actions must land in one iteration, or this test pins nothing
    let full_dir = fresh_dir("full");
    let journaled = AnonymizationCycle::new(
        &risk,
        &anon,
        CycleConfig {
            journal: Some(JournalConfig::new(&full_dir)),
            ..config.clone()
        },
    )
    .run(&db, &dict)
    .expect("journaled run");
    assert!(
        journaled.nulls_injected > journaled.iterations,
        "workload must batch multiple actions per iteration \
         ({} action(s) over {} iteration(s))",
        journaled.nulls_injected,
        journaled.iterations
    );
    assert_eq!(transcript(&journaled), reference, "journal is an observer");

    let bytes = fs::read(full_dir.join(JOURNAL_FILE)).expect("read journal");
    let bounds = record::frame_boundaries(&bytes);
    let mut kills = vec![0, MAGIC.len() / 2, MAGIC.len()];
    let mut prev = MAGIC.len();
    for &b in &bounds {
        kills.push(prev + (b - prev) / 2);
        kills.push(b);
        prev = b;
    }
    kills.sort_unstable();
    kills.dedup();

    for cut in kills {
        let dir = fresh_dir("cut");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(JOURNAL_FILE), &bytes[..cut]).expect("write prefix");
        let resumed = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                journal: Some(JournalConfig::new(&dir)),
                ..config.clone()
            },
        )
        .resume(&db, &dict)
        .unwrap_or_else(|e| panic!("resume from cut {cut} failed: {e}"));
        assert_eq!(
            transcript(&resumed),
            reference,
            "divergent outcome after kill at byte {cut}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&full_dir);
}

/// Resume under 4 risk threads from a journal written single-threaded:
/// thread count must stay invisible across the crash boundary too.
#[test]
fn batched_resume_is_thread_count_independent() {
    let (db, dict) = multi_action_table();
    let risk = KAnonymity::new(2);
    let anon = LocalSuppression::default();
    let config = batched_config(BatchStrategy::TopN(4), 1);
    let reference = transcript(
        &AnonymizationCycle::new(&risk, &anon, config.clone())
            .run(&db, &dict)
            .expect("reference run"),
    );

    let full_dir = fresh_dir("t1");
    AnonymizationCycle::new(
        &risk,
        &anon,
        CycleConfig {
            journal: Some(JournalConfig::new(&full_dir)),
            ..config.clone()
        },
    )
    .run(&db, &dict)
    .expect("journaled run");
    let bytes = fs::read(full_dir.join(JOURNAL_FILE)).expect("read journal");
    let bounds = record::frame_boundaries(&bytes);
    let cut = bounds[bounds.len() / 2];

    let dir = fresh_dir("t4");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), &bytes[..cut]).expect("write prefix");
    let resumed = AnonymizationCycle::new(
        &risk,
        &anon,
        CycleConfig {
            journal: Some(JournalConfig::new(&dir)),
            ..batched_config(BatchStrategy::TopN(4), 4)
        },
    )
    .resume(&db, &dict)
    .expect("resume under 4 threads");
    assert_eq!(transcript(&resumed), reference);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&full_dir);
}
