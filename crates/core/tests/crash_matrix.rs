//! The crash matrix: kill the journaled anonymization cycle at **every**
//! record boundary and mid-record, resume, and require the outcome to be
//! bit-identical to a run that was never interrupted.
//!
//! Four layers of coverage:
//!
//! 1. **Kill-point sweep** — truncate a completed run's journal at every
//!    frame boundary (and every midpoint inside a frame, and inside the
//!    magic header) and resume each prefix.
//! 2. **Injected-crash sweep** — re-run with a `CrashAfterBytes` fault in
//!    the I/O layer, so the torn file is produced by the writer itself
//!    (short write + dead sink), then resume with clean I/O.
//! 3. **Fault policies** — `IoErrorPolicy::Fail` surfaces structured
//!    errors; `IoErrorPolicy::Disable` finishes the run in memory with
//!    the same outcome, leaving a torn-but-resumable journal behind.
//! 4. **Hostile files** — alien bytes, wrong format version, fingerprint
//!    mismatches, corrupt or missing snapshots, and a mutation property
//!    test (random truncate/flip/insert): recovery is `Ok` with an
//!    identical transcript or a structured `CycleError::Journal`, never
//!    a panic.

use proptest::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use vadalog::Value;
use vadasa_core::cycle::{
    AnonymizationCycle, CycleConfig, CycleError, CycleOutcome, StepGranularity,
};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::faults::{faulty_io_factory, JournalFault};
use vadasa_core::journal::record::{self, JournalRecord, MAGIC};
use vadasa_core::journal::{IoErrorPolicy, JournalConfig, JournalError, JOURNAL_FILE};
use vadasa_core::model::MicrodataDb;
use vadasa_core::prelude::{KAnonymity, LocalSuppression};
use vadasa_core::risk::RiskMeasure;
use vadasa_datagen::generate_households;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique, initially-empty temp directory (tests run in parallel).
fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vadasa-crash-{}-{n}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every observable output of a run, rendered canonically: if two
/// transcripts are equal, the runs were indistinguishable — same table,
/// same (bitwise) risks, same audit trail, same termination.
fn transcript(o: &CycleOutcome) -> String {
    let mut t = String::new();
    let _ = writeln!(
        t,
        "iterations={} nulls={} recodings={} initial_risky={} final_risky={}",
        o.iterations, o.nulls_injected, o.recodings, o.initial_risky, o.final_risky
    );
    let _ = writeln!(
        t,
        "termination={:?} loss_bits={:016x}",
        o.termination,
        o.information_loss.to_bits()
    );
    for (i, r) in o.final_report.risks.iter().enumerate() {
        let _ = writeln!(t, "risk[{i}]={:016x}", r.to_bits());
    }
    for d in &o.final_report.details {
        let _ = writeln!(t, "detail: {d:?}");
    }
    for d in &o.audit.decisions {
        let _ = writeln!(
            t,
            "audit iter={} row={} measure={} risk={:016x} action={:?}",
            d.iteration,
            d.row,
            d.measure,
            d.risk.to_bits(),
            d.action
        );
    }
    for r in 0..o.db.len() {
        let _ = writeln!(t, "row[{r}]={:?}", o.db.row(r).expect("row in range"));
    }
    t
}

/// The Fig. 5 table from the paper: 7 rows, one-tuple-per-iteration, so
/// the journal carries several iterations of single actions.
fn fig5() -> (MicrodataDb, MetadataDictionary) {
    let mut db =
        MicrodataDb::new("fig5", ["Id", "Area", "Sector", "Employees", "ResRev", "W"]).unwrap();
    let rows = [
        ("099876", "Roma", "Textiles", "1000+", "0-30", 10),
        ("765389", "Roma", "Commerce", "1000+", "0-30", 20),
        ("231654", "Roma", "Commerce", "1000+", "0-30", 20),
        ("097302", "Roma", "Financial", "1000+", "0-30", 30),
        ("120967", "Roma", "Financial", "1000+", "0-30", 30),
        ("232498", "Milano", "Construction", "0-200", "60-90", 5),
        ("340901", "Torino", "Construction", "0-200", "60-90", 5),
    ];
    for (id, a, s, e, r, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(a),
            Value::str(s),
            Value::str(e),
            Value::str(r),
            Value::Int(w),
        ])
        .unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for a in ["Id", "Area", "Sector", "Employees", "ResRev", "W"] {
        dict.register_attr("fig5", a, "");
    }
    dict.set_category("fig5", "Id", Category::Identifier)
        .unwrap();
    for a in ["Area", "Sector", "Employees", "ResRev"] {
        dict.set_category("fig5", a, Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("fig5", "W", Category::Weight).unwrap();
    (db, dict)
}

fn fig5_config() -> CycleConfig {
    CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        ..CycleConfig::default()
    }
}

/// Run once with `journal: None` — the uninterrupted reference.
fn reference_run(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: None,
            ..config.clone()
        },
    )
    .run(db, dict)
    .expect("reference run")
}

fn run_journaled(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
    jcfg: JournalConfig,
) -> Result<CycleOutcome, CycleError> {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: Some(jcfg),
            ..config.clone()
        },
    )
    .run(db, dict)
}

fn resume_journaled(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
    jcfg: JournalConfig,
) -> Result<CycleOutcome, CycleError> {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: Some(jcfg),
            ..config.clone()
        },
    )
    .resume(db, dict)
}

/// Every kill point of a journal byte buffer: offsets inside the magic
/// header, every frame boundary, and the midpoint of every frame.
fn kill_points(bytes: &[u8]) -> Vec<usize> {
    let bounds = record::frame_boundaries(bytes);
    let mut kills = vec![0, MAGIC.len() / 2, MAGIC.len()];
    let mut prev = MAGIC.len();
    for &b in &bounds {
        kills.push(prev + (b - prev) / 2); // mid-record
        kills.push(b); // record boundary
        prev = b;
    }
    kills.sort_unstable();
    kills.dedup();
    kills
}

/// Copy `dir`'s snapshot files (if any) next to a truncated journal, so
/// recovery exercises the snapshot fast-path wherever the journal prefix
/// still references one.
fn copy_snapshots(from: &Path, to: &Path) {
    let Ok(entries) = fs::read_dir(from) else {
        return;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        if name.to_string_lossy().ends_with(".vsnap") {
            fs::copy(e.path(), to.join(&name)).expect("copy snapshot");
        }
    }
}

#[test]
fn fig5_killed_at_every_boundary_and_midpoint_resumes_identically() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = fig5_config();
    let reference = transcript(&reference_run(&db, &dict, &risk, &config));

    // The uninterrupted journaled run is itself equivalent — journaling
    // is an observer, not an intervention.
    let ref_dir = fresh_dir("fig5-ref");
    let jcfg = JournalConfig {
        snapshot_every: Some(2),
        ..JournalConfig::new(&ref_dir)
    };
    let journaled = run_journaled(&db, &dict, &risk, &config, jcfg).expect("journaled run");
    assert_eq!(
        transcript(&journaled),
        reference,
        "journaling changed the run"
    );
    assert!(journaled.profile.journal.records_written > 2);
    assert!(journaled.profile.journal.snapshots_written >= 1);
    assert!(journaled.profile.journal.fsyncs > 0);

    let bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal on disk");
    let kills = kill_points(&bytes);
    assert!(kills.len() >= 7, "workload too small to matter: {kills:?}");

    for &k in &kills {
        let dir = fresh_dir(&format!("fig5-kill-{k}"));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(JOURNAL_FILE), &bytes[..k]).expect("write prefix");
        copy_snapshots(&ref_dir, &dir);
        let resumed = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
            .unwrap_or_else(|e| panic!("kill at byte {k}: resume failed: {e}"));
        assert_eq!(
            transcript(&resumed),
            reference,
            "kill at byte {k} of {} diverged",
            bytes.len()
        );
        // A mid-record kill always leaves a torn tail to truncate; a kill
        // at a clean boundary may legitimately have no recovery work
        // (e.g. exactly after `Begin`).
        if k > MAGIC.len() && !record::frame_boundaries(&bytes).contains(&k) {
            assert!(
                resumed.profile.journal.truncated_bytes > 0,
                "kill at byte {k}: torn tail was not truncated"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // A resumed journal is itself resumable: crash-after-resume is just
    // another kill point.
    let dir = fresh_dir("fig5-rekill");
    fs::create_dir_all(&dir).expect("mkdir");
    let mid = kills[kills.len() / 2];
    fs::write(dir.join(JOURNAL_FILE), &bytes[..mid]).expect("write prefix");
    let once = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
        .expect("first resume");
    let twice = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
        .expect("second resume");
    assert_eq!(transcript(&once), reference);
    assert_eq!(transcript(&twice), reference);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn households_kill_sweep_with_snapshots_and_warm_cold_cross_resume() {
    // A bigger workload: 24 households, all-risky granularity, snapshot
    // every iteration. The journal was written by a *warm* run and each
    // prefix is resumed by a *cold* run (and one the other way round) —
    // the fingerprint deliberately ignores the evaluation strategy.
    let survey = generate_households(24, 0xC4A5);
    let risk = KAnonymity::new(3);
    let config = CycleConfig {
        granularity: StepGranularity::AllRiskyPerIteration,
        warm_start: true,
        ..CycleConfig::default()
    };
    let cold_config = CycleConfig {
        warm_start: false,
        ..config.clone()
    };
    let reference = transcript(&reference_run(&survey.db, &survey.dict, &risk, &config));
    assert_eq!(
        reference,
        transcript(&reference_run(
            &survey.db,
            &survey.dict,
            &risk,
            &cold_config
        )),
        "warm/cold reference runs must agree before crash testing means anything"
    );

    let ref_dir = fresh_dir("hh-ref");
    let jcfg = JournalConfig {
        snapshot_every: Some(1),
        ..JournalConfig::new(&ref_dir)
    };
    let journaled =
        run_journaled(&survey.db, &survey.dict, &risk, &config, jcfg).expect("journaled run");
    assert_eq!(transcript(&journaled), reference);
    assert!(journaled.profile.journal.snapshots_written >= 1);

    let bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal on disk");
    for (i, &k) in kill_points(&bytes).iter().enumerate() {
        let dir = fresh_dir(&format!("hh-kill-{k}"));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(JOURNAL_FILE), &bytes[..k]).expect("write prefix");
        copy_snapshots(&ref_dir, &dir);
        // alternate the resuming strategy: warm journal, cold resume and
        // warm resume must both land on the reference transcript
        let resume_cfg = if i % 2 == 0 { &cold_config } else { &config };
        let resumed = resume_journaled(
            &survey.db,
            &survey.dict,
            &risk,
            resume_cfg,
            JournalConfig::new(&dir),
        )
        .unwrap_or_else(|e| panic!("kill at byte {k}: resume failed: {e}"));
        assert_eq!(transcript(&resumed), reference, "kill at byte {k} diverged");
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn injected_crash_at_every_byte_budget_then_clean_resume() {
    // The writer itself produces the torn file: a CrashAfterBytes fault
    // persists exactly k bytes (tearing mid-record where k falls inside
    // one) and then fails every later operation, like a dying disk.
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = fig5_config();
    let reference = transcript(&reference_run(&db, &dict, &risk, &config));

    // Byte budgets from an uninterrupted journal of the same run; no
    // snapshots so the budget maps 1:1 onto journal-file offsets.
    let ref_dir = fresh_dir("crash-ref");
    let jcfg = JournalConfig {
        snapshot_every: None,
        ..JournalConfig::new(&ref_dir)
    };
    run_journaled(&db, &dict, &risk, &config, jcfg).expect("journaled run");
    let bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal on disk");
    let _ = fs::remove_dir_all(&ref_dir);

    for &k in kill_points(&bytes).iter().filter(|&&k| k < bytes.len()) {
        let dir = fresh_dir(&format!("crash-{k}"));
        let faulty = JournalConfig {
            snapshot_every: None,
            io_factory: Some(faulty_io_factory(JournalFault::CrashAfterBytes {
                bytes: k,
            })),
            ..JournalConfig::new(&dir)
        };
        match run_journaled(&db, &dict, &risk, &config, faulty) {
            Err(CycleError::Journal(_)) => {}
            Ok(_) => panic!("crash after {k} bytes: run should not have completed"),
            Err(other) => panic!("crash after {k} bytes: wrong error kind: {other}"),
        }
        let on_disk = fs::read(dir.join(JOURNAL_FILE)).expect("torn journal exists");
        assert!(
            on_disk.len() <= k,
            "crash after {k} bytes left {} bytes",
            on_disk.len()
        );
        let resumed = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
            .unwrap_or_else(|e| panic!("crash after {k} bytes: resume failed: {e}"));
        assert_eq!(
            transcript(&resumed),
            reference,
            "crash after {k} bytes diverged"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn io_error_policy_fail_surfaces_structured_errors() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = fig5_config();
    let faults = [
        JournalFault::WriteError { at_append: 4 },
        JournalFault::ShortWriteThenError {
            at_append: 4,
            keep_bytes: 5,
        },
        JournalFault::SyncError { at_sync: 2 },
        JournalFault::FullDisk { from_append: 3 },
    ];
    for fault in faults {
        let dir = fresh_dir("fail-policy");
        let jcfg = JournalConfig {
            on_io_error: IoErrorPolicy::Fail,
            io_factory: Some(faulty_io_factory(fault)),
            ..JournalConfig::new(&dir)
        };
        match run_journaled(&db, &dict, &risk, &config, jcfg) {
            Err(CycleError::Journal(JournalError::Io { .. })) => {}
            Err(other) => panic!("{fault}: expected a journal i/o error, got {other}"),
            Ok(_) => panic!("{fault}: run should have failed under IoErrorPolicy::Fail"),
        }
        // Whatever the fault left behind (torn record, missing tail) is
        // recoverable with healthy I/O.
        let reference = transcript(&reference_run(&db, &dict, &risk, &config));
        let resumed = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
            .unwrap_or_else(|e| panic!("{fault}: resume after failure: {e}"));
        assert_eq!(transcript(&resumed), reference, "{fault}: resume diverged");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn io_error_policy_disable_finishes_in_memory_with_identical_outcome() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = fig5_config();
    let reference = transcript(&reference_run(&db, &dict, &risk, &config));
    let faults = [
        JournalFault::WriteError { at_append: 4 },
        JournalFault::ShortWriteThenError {
            at_append: 4,
            keep_bytes: 5,
        },
        JournalFault::SyncError { at_sync: 2 },
        JournalFault::FullDisk { from_append: 3 },
    ];
    for fault in faults {
        let dir = fresh_dir("disable-policy");
        let jcfg = JournalConfig {
            on_io_error: IoErrorPolicy::Disable,
            io_factory: Some(faulty_io_factory(fault)),
            ..JournalConfig::new(&dir)
        };
        let outcome = run_journaled(&db, &dict, &risk, &config, jcfg)
            .unwrap_or_else(|e| panic!("{fault}: Disable policy must not error: {e}"));
        assert_eq!(transcript(&outcome), reference, "{fault}: outcome changed");
        assert!(
            outcome.profile.journal.io_errors >= 1,
            "{fault}: absorbed error not counted"
        );
        // The truncated journal the dead writer left behind still resumes.
        let resumed = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
            .unwrap_or_else(|e| panic!("{fault}: torn journal resume: {e}"));
        assert_eq!(transcript(&resumed), reference, "{fault}: resume diverged");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn hostile_journals_are_structured_errors_never_panics() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = fig5_config();
    let reference = transcript(&reference_run(&db, &dict, &risk, &config));
    let expect_journal_err = |r: Result<CycleOutcome, CycleError>, what: &str| match r {
        Err(CycleError::Journal(e)) => e,
        Err(other) => panic!("{what}: wrong error kind: {other}"),
        Ok(_) => panic!("{what}: should not have resumed"),
    };

    // Missing directory / missing file.
    let dir = fresh_dir("hostile-missing");
    let e = expect_journal_err(
        resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir)),
        "missing journal",
    );
    assert!(matches!(e, JournalError::Missing(_)), "{e}");

    // Resume without journal configured at all.
    let anon = LocalSuppression::default();
    let e = match AnonymizationCycle::new(&risk, &anon, config.clone()).resume(&db, &dict) {
        Err(CycleError::Journal(e)) => e,
        other => panic!("unconfigured resume must fail, got {other:?}"),
    };
    assert!(matches!(e, JournalError::NotConfigured), "{e}");

    // An empty file is a crash during creation: resume restarts cleanly.
    let dir = fresh_dir("hostile-empty");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), b"").expect("write");
    let resumed = resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir))
        .expect("empty journal restarts");
    assert_eq!(transcript(&resumed), reference);
    let _ = fs::remove_dir_all(&dir);

    // Alien bytes under the journal's name are not ours to touch.
    let dir = fresh_dir("hostile-alien");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), b"\x89PNG\r\n\x1a\nnot a journal").expect("write");
    let e = expect_journal_err(
        resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir)),
        "alien file",
    );
    assert!(matches!(e, JournalError::Mismatch(_)), "{e}");
    let _ = fs::remove_dir_all(&dir);

    // A future format version is refused, not misread.
    let dir = fresh_dir("hostile-version");
    fs::create_dir_all(&dir).expect("mkdir");
    let begin = JournalRecord::Begin {
        version: record::FORMAT_VERSION + 1,
        fingerprint: 0,
        measure: "k-anonymity".into(),
        anonymizer: "local-suppression".into(),
        rows: db.len() as u64,
    };
    let mut alien = MAGIC.to_vec();
    alien.extend_from_slice(&begin.encode());
    fs::write(dir.join(JOURNAL_FILE), &alien).expect("write");
    let e = expect_journal_err(
        resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir)),
        "future version",
    );
    assert!(matches!(e, JournalError::Mismatch(_)), "{e}");
    let _ = fs::remove_dir_all(&dir);

    // A real journal resumed under a different configuration or table.
    let dir = fresh_dir("hostile-fingerprint");
    run_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir)).expect("seed journal");
    let other_threshold = CycleConfig {
        threshold: 0.25,
        ..config.clone()
    };
    let e = expect_journal_err(
        resume_journaled(
            &db,
            &dict,
            &risk,
            &other_threshold,
            JournalConfig::new(&dir),
        ),
        "changed threshold",
    );
    assert!(matches!(e, JournalError::Mismatch(_)), "{e}");
    let mut grown = db.clone();
    grown
        .push_row(vec![
            Value::str("999999"),
            Value::str("Bari"),
            Value::str("Textiles"),
            Value::str("0-200"),
            Value::str("0-30"),
            Value::Int(1),
        ])
        .expect("push");
    let e = expect_journal_err(
        resume_journaled(&grown, &dict, &risk, &config, JournalConfig::new(&dir)),
        "changed table",
    );
    assert!(matches!(e, JournalError::Mismatch(_)), "{e}");

    // And `run` refuses to silently overwrite it.
    let e = match run_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir)) {
        Err(CycleError::Journal(e)) => e,
        other => panic!("re-run over a journal must fail, got {other:?}"),
    };
    assert!(matches!(e, JournalError::AlreadyExists(_)), "{e}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_missing_snapshots_fall_back_without_changing_the_outcome() {
    let survey = generate_households(24, 0xC4A5);
    let risk = KAnonymity::new(3);
    let config = CycleConfig {
        granularity: StepGranularity::AllRiskyPerIteration,
        ..CycleConfig::default()
    };
    let reference = transcript(&reference_run(&survey.db, &survey.dict, &risk, &config));

    let ref_dir = fresh_dir("snap-ref");
    let jcfg = JournalConfig {
        snapshot_every: Some(1),
        ..JournalConfig::new(&ref_dir)
    };
    run_journaled(&survey.db, &survey.dict, &risk, &config, jcfg).expect("journaled run");
    let bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal");
    let snapshots: Vec<PathBuf> = fs::read_dir(&ref_dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "vsnap"))
        .collect();
    assert!(!snapshots.is_empty(), "workload produced no snapshots");
    // Kill right at the end: the journal references every snapshot.
    let kill = *record::frame_boundaries(&bytes).last().expect("frames");

    // (a) every snapshot byte-corrupted → replay from the original table
    let dir = fresh_dir("snap-corrupt");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), &bytes[..kill]).expect("write");
    for s in &snapshots {
        let mut content = fs::read(s).expect("snapshot");
        let mid = content.len() / 2;
        content[mid] ^= 0x40;
        fs::write(dir.join(s.file_name().expect("name")), &content).expect("write");
    }
    let resumed = resume_journaled(
        &survey.db,
        &survey.dict,
        &risk,
        &config,
        JournalConfig::new(&dir),
    )
    .expect("resume past corrupt snapshots");
    assert_eq!(transcript(&resumed), reference, "corrupt-snapshot fallback");
    let _ = fs::remove_dir_all(&dir);

    // (b) snapshots deleted outright → same fallback
    let dir = fresh_dir("snap-missing");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), &bytes[..kill]).expect("write");
    let resumed = resume_journaled(
        &survey.db,
        &survey.dict,
        &risk,
        &config,
        JournalConfig::new(&dir),
    )
    .expect("resume without snapshots");
    assert_eq!(transcript(&resumed), reference, "missing-snapshot fallback");
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single mutations of a valid journal — truncate anywhere,
    /// flip any byte, insert a byte anywhere — either resume to the
    /// reference transcript or fail with a structured journal error.
    #[test]
    fn mutated_journals_resume_identically_or_error_structurally(seed in 0u64..1_000_000) {
        let (db, dict) = fig5();
        let risk = KAnonymity::new(2);
        let config = fig5_config();
        let reference = transcript(&reference_run(&db, &dict, &risk, &config));

        let ref_dir = fresh_dir(&format!("mut-ref-{seed}"));
        let jcfg = JournalConfig {
            snapshot_every: None,
            ..JournalConfig::new(&ref_dir)
        };
        run_journaled(&db, &dict, &risk, &config, jcfg).expect("journaled run");
        let mut bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal");
        let _ = fs::remove_dir_all(&ref_dir);

        // xorshift for cheap in-test randomness
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        match next() % 3 {
            0 => bytes.truncate((next() as usize) % (bytes.len() + 1)),
            1 => {
                let i = (next() as usize) % bytes.len();
                bytes[i] ^= (next() % 255 + 1) as u8;
            }
            _ => {
                let i = (next() as usize) % (bytes.len() + 1);
                bytes.insert(i, next() as u8);
            }
        }

        let dir = fresh_dir(&format!("mut-{seed}"));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(JOURNAL_FILE), &bytes).expect("write");
        match resume_journaled(&db, &dict, &risk, &config, JournalConfig::new(&dir)) {
            Ok(resumed) => prop_assert_eq!(transcript(&resumed), reference.clone()),
            Err(CycleError::Journal(_)) => {} // structured refusal is fine
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
