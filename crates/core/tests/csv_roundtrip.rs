//! CSV importer totality and round-trip fidelity.
//!
//! Two property suites:
//!
//! 1. **Totality** — `read_csv` over arbitrary character soup (quotes,
//!    commas, newlines, `⊥` markers, digits, control characters) returns
//!    `Ok` or a structured `CsvError`, never panics. This pins the fix
//!    for the second-pass `.expect("inferred int"/"inferred float")`
//!    panic surface.
//! 2. **Round-trip** — `read_csv(write_csv(db))` reproduces random
//!    tables *bit-identically*: every cell equal **and** of the same
//!    `Value` variant (plain equality would let `Int(1)` pass for
//!    `Float(1.0)`), labelled nulls keeping their labels and the
//!    null-mint counter, across mixed column types and hostile strings.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use vadalog::Value;
use vadasa_core::io::{read_csv, write_csv};
use vadasa_core::model::MicrodataDb;

/// Strings that survive a CSV round-trip as strings: they must not parse
/// as `i64`/`f64` (or the column would legitimately re-type) and must not
/// look like a `⊥N` null literal.
const WORDS: &[&str] = &[
    "North",
    "South, deep",
    "he said \"hi\"",
    "line1\nline2",
    "tab\tchar",
    "trailing space ",
    "⊥not-a-null",
    "über-straße",
    "a,b,\"c\"",
    "-",
    "1x2",
];

fn random_soup(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '1', '9', '⊥', ',', '"', '\n', '\r', '.', '-', '+', ' ', '\t', 'é', '\u{0}',
    ];
    let len = rng.gen_range(0..200usize);
    (0..len)
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum ColKind {
    Int,
    Float,
    Str,
}

/// A random table mixing int, float and string columns, labelled nulls
/// sprinkled anywhere, plus a header that itself needs quoting.
fn random_db(rng: &mut StdRng) -> MicrodataDb {
    let cols = rng.gen_range(1..=5usize);
    let rows = rng.gen_range(0..=12usize);
    let kinds: Vec<ColKind> = (0..cols)
        .map(|_| match rng.gen_range(0..3u8) {
            0 => ColKind::Int,
            1 => ColKind::Float,
            _ => ColKind::Str,
        })
        .collect();
    let names: Vec<String> = (0..cols)
        .map(|c| {
            if c == 0 && rng.gen_range(0..2u8) == 0 {
                // a header with separator characters exercises quoting
                format!("weird,\"{c}\"")
            } else {
                format!("col{c}")
            }
        })
        .collect();
    let mut db = MicrodataDb::new("rt", names).expect("unique names");
    let mut null_id = 0u64;
    for _ in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for kind in &kinds {
            if rng.gen_range(0..5u8) == 0 {
                row.push(Value::Null(null_id));
                null_id += 1;
                continue;
            }
            row.push(match kind {
                ColKind::Int => Value::Int(rng.gen_range(-1_000_000..1_000_000i64)),
                // non-integral so the reimported column stays Float
                ColKind::Float => Value::Float(rng.gen_range(-5_000..5_000i64) as f64 + 0.5),
                ColKind::Str => Value::str(WORDS[rng.gen_range(0..WORDS.len())]),
            });
        }
        db.push_row(row).expect("arity matches");
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `read_csv` is total: arbitrary input never panics.
    #[test]
    fn read_csv_never_panics_on_soup(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let soup = random_soup(&mut rng);
        let _ = read_csv("soup", &soup);
    }

    /// A parsed table re-serializes to re-parseable text (write∘read is
    /// closed on whatever soup happens to parse).
    #[test]
    fn parsed_soup_reserializes(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed + 7_000_000);
        let soup = random_soup(&mut rng);
        if let Ok(db) = read_csv("soup", &soup) {
            let text = write_csv(&db);
            prop_assert!(read_csv("soup", &text).is_ok());
        }
    }

    /// Bit-identical round-trip: values, variants, null labels, counter.
    #[test]
    fn roundtrip_is_bit_identical(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let db = random_db(&mut rng);
        let text = write_csv(&db);
        let back = read_csv("rt", &text).expect("own output parses");
        prop_assert_eq!(back.attributes(), db.attributes());
        prop_assert_eq!(back.len(), db.len());
        for r in 0..db.len() {
            let a = db.row(r).expect("row");
            let b = back.row(r).expect("row");
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x, y);
                // equality is necessary but not sufficient: Int(1) ==
                // Float(1.0), so the variant must match too
                prop_assert_eq!(
                    std::mem::discriminant(x),
                    std::mem::discriminant(y)
                );
            }
        }
        prop_assert_eq!(back.nulls_minted(), db.nulls_minted());
    }
}
