//! The safe-fallback invariant: after `degrade::suppress_all_risky` the
//! re-evaluated risk of **every** tuple is at or below the threshold —
//! under maybe-match semantics unconditionally, and under standard
//! semantics whenever the fallback claims `residual_risky == 0`. Checked
//! on the synthetic household survey across measures, thresholds and
//! seeds, with an *independent* re-evaluation rather than trusting the
//! summary's own report.

use vadasa_core::degrade::suppress_all_risky;
use vadasa_core::prelude::*;
use vadasa_datagen::generate_households;

fn assert_invariant(
    risk: &dyn RiskMeasure,
    threshold: f64,
    semantics: NullSemantics,
    households: usize,
    seed: u64,
) {
    let survey = generate_households(households, seed);
    let mut db = survey.db.clone();
    let dict = &survey.dict;

    let summary = suppress_all_risky(&mut db, dict, risk, threshold, semantics, None);

    // independent re-evaluation over the released table
    let view = MicrodataView::from_db_with(&db, dict, semantics, None).expect("view");
    let report = risk.evaluate(&view).expect("re-evaluation");
    let over: Vec<usize> = report.risky_tuples(threshold);

    let ctx = format!(
        "measure={} T={threshold} semantics={semantics:?} households={households} seed={seed}",
        risk.name()
    );
    assert_eq!(
        over.len(),
        summary.residual_risky,
        "{ctx}: summary disagrees with independent re-evaluation"
    );
    if semantics == NullSemantics::MaybeMatch {
        // maybe-match: a fully suppressed tuple joins the maximal group,
        // so the fallback must always reach the bound
        assert!(
            over.is_empty(),
            "{ctx}: {} tuples above threshold after fallback",
            over.len()
        );
    }
    // the summary's own verification must agree with ours
    let own = summary.final_report.expect("fallback verified");
    assert_eq!(own.risky_tuples(threshold).len(), summary.residual_risky);
}

#[test]
fn fallback_invariant_holds_on_households_maybe_match() {
    for seed in [3u64, 17, 99] {
        for threshold in [0.2, 0.5] {
            let k = KAnonymity::new(3);
            assert_invariant(&k, threshold, NullSemantics::MaybeMatch, 30, seed);
            let reid = ReIdentification;
            assert_invariant(&reid, threshold, NullSemantics::MaybeMatch, 30, seed);
        }
    }
}

#[test]
fn fallback_invariant_reports_honestly_under_standard_semantics() {
    // Standard semantics cannot always reach the bound (fresh nulls keep
    // suppressed singletons unique); what it must do is terminate and
    // report a residual that an independent evaluation confirms.
    for seed in [3u64, 17] {
        let k = KAnonymity::new(3);
        assert_invariant(&k, 0.5, NullSemantics::Standard, 30, seed);
    }
}

#[test]
fn fallback_only_touches_quasi_identifiers() {
    let survey = generate_households(25, 11);
    let mut db = survey.db.clone();
    let k = KAnonymity::new(4);
    suppress_all_risky(
        &mut db,
        &survey.dict,
        &k,
        0.3,
        NullSemantics::MaybeMatch,
        None,
    );
    for row in 0..db.len() {
        // identifiers and weights survive suppression untouched
        assert_eq!(
            db.value(row, "PersonId").unwrap(),
            survey.db.value(row, "PersonId").unwrap()
        );
        assert_eq!(
            db.value(row, "Weight").unwrap(),
            survey.db.value(row, "Weight").unwrap()
        );
    }
}

#[test]
fn cycle_end_to_end_degrades_to_safe_release() {
    // The same invariant through the cycle's public API: a capped run
    // must still release a table that independently verifies safe.
    let survey = generate_households(30, 5);
    let risk = KAnonymity::new(3);
    let anon = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(
        &risk,
        &anon,
        CycleConfig {
            threshold: 0.5,
            max_iterations: 1,
            ..CycleConfig::default()
        },
    );
    let out = cycle.run(&survey.db, &survey.dict).unwrap();
    if !out.termination.is_converged() {
        let view =
            MicrodataView::from_db_with(&out.db, &survey.dict, NullSemantics::MaybeMatch, None)
                .unwrap();
        let report = risk.evaluate(&view).unwrap();
        assert!(report.risky_tuples(0.5).is_empty());
    }
    assert_eq!(out.final_risky, 0);
}
