//! The fault matrix: every deterministic fault scenario must end in a
//! *graceful* degradation — an `Ok(CycleOutcome)` whose released table
//! honours the risk bound (or honestly reports it unverifiable), with the
//! degradation recorded in the profile, the audit log, and the telemetry
//! stream. No scenario may abort the process or fail open.

use std::sync::Arc;
use std::time::Duration;
use vadalog::CancelToken;
use vadasa_core::cycle::{AnonymizationCycle, CycleConfig, CycleTermination};
use vadasa_core::faults::{Fault, FaultPlan, FaultyAnonymizer, FaultyRisk};
use vadasa_core::journal::JournalConfig;
use vadasa_core::obs::Recorder;
use vadasa_core::prelude::*;
use vadasa_datagen::generate_households;

const THRESHOLD: f64 = 0.5;

/// Run one scenario on the household fixture and return the outcome with
/// the telemetry recorder that watched it.
fn run_scenario(plan: &FaultPlan) -> (CycleOutcome, Arc<Recorder>, usize) {
    let survey = generate_households(40, 0xFA17);
    let inner_risk = KAnonymity::new(2);
    let inner_anon = LocalSuppression::default();
    let recorder = Arc::new(Recorder::default());

    let mut config = CycleConfig {
        threshold: THRESHOLD,
        ..CycleConfig::default()
    };
    let mut risk = FaultyRisk::new(&inner_risk);
    let mut anon = FaultyAnonymizer::new(&inner_anon);
    let mut cancel: Option<CancelToken> = None;

    match &plan.fault {
        Fault::IterationCap(n) => config.max_iterations = *n,
        Fault::ImmediateDeadline => config.deadline = Some(Duration::ZERO),
        Fault::PanicInRisk { at_eval } => risk = risk.panic_at(*at_eval),
        Fault::PanicInAnonymizer { at_step } => anon = anon.panic_at(*at_step),
        Fault::CancelAfterEvals(n) => {
            let token = CancelToken::new();
            risk = risk.cancel_after(*n, token.clone());
            cancel = Some(token);
        }
    }

    let mut cycle = AnonymizationCycle::new(&risk, &anon, config).with_collector(recorder.clone());
    if let Some(token) = cancel {
        cycle = cycle.with_cancel(token);
    }
    let outcome = cycle
        .run(&survey.db, &survey.dict)
        .unwrap_or_else(|e| panic!("scenario {} must degrade, not error: {e}", plan.name));
    let rows = survey.db.len();
    (outcome, recorder, rows)
}

#[test]
fn every_scenario_degrades_gracefully() {
    for seed in [1u64, 7, 42] {
        for plan in FaultPlan::scenarios(seed) {
            let (outcome, recorder, rows) = run_scenario(&plan);
            let ctx = format!("scenario {} (seed {seed})", plan.name);

            // 1. the degradation is first-class, not an error
            let CycleTermination::Degraded { trigger } = &outcome.termination else {
                panic!("{ctx}: expected degraded termination, got convergence");
            };
            let fallback = outcome
                .profile
                .fallback
                .as_ref()
                .unwrap_or_else(|| panic!("{ctx}: fallback not recorded in profile"));
            assert_eq!(&fallback.trigger, trigger, "{ctx}: trigger mismatch");

            // 2. the risk bound holds — or is honestly reported unverified
            //    (fail-closed: every tuple counted risky, QIs suppressed)
            if outcome.final_report.measure.contains("risk-unavailable") {
                assert_eq!(
                    outcome.final_risky, rows,
                    "{ctx}: fail-closed must count all"
                );
                assert!(
                    outcome.db.null_cells(&[]) > 0,
                    "{ctx}: fail-closed must have suppressed"
                );
            } else {
                assert_eq!(outcome.final_risky, 0, "{ctx}: risk bound violated");
                assert!(
                    outcome.final_report.risky_tuples(THRESHOLD).is_empty(),
                    "{ctx}: report disagrees with final_risky"
                );
            }

            // 3. the fallback's work is audited (audit defaults to on)
            assert_eq!(
                outcome.audit.suppressions(),
                outcome.nulls_injected,
                "{ctx}: audit log out of sync with suppressions"
            );

            // 4. telemetry saw the degradation as a first-class event
            let events = recorder.events_named("cycle.fallback");
            assert_eq!(events.len(), 1, "{ctx}: expected one cycle.fallback event");
        }
    }
}

#[test]
fn unfaulted_wrappers_are_transparent() {
    // The same wrappers with no fault armed must not change the outcome:
    // the harness itself is not an intervention.
    let survey = generate_households(40, 0xFA17);
    let inner_risk = KAnonymity::new(2);
    let inner_anon = LocalSuppression::default();
    let config = CycleConfig {
        threshold: THRESHOLD,
        ..CycleConfig::default()
    };

    let plain = AnonymizationCycle::new(&inner_risk, &inner_anon, config.clone())
        .run(&survey.db, &survey.dict)
        .expect("plain run");

    let risk = FaultyRisk::new(&inner_risk);
    let anon = FaultyAnonymizer::new(&inner_anon);
    let wrapped = AnonymizationCycle::new(&risk, &anon, config)
        .run(&survey.db, &survey.dict)
        .expect("wrapped run");

    assert!(wrapped.termination.is_converged());
    assert_eq!(plain.iterations, wrapped.iterations);
    assert_eq!(plain.nulls_injected, wrapped.nulls_injected);
    assert_eq!(plain.final_risky, wrapped.final_risky);
    assert!(risk.evals() > 0);
    assert!(anon.steps() > 0);
}

#[test]
fn governor_terminations_leave_resumable_journals() {
    // The governor (iteration cap, deadline, cancellation) and the
    // journal compose: a run the governor cuts short leaves a journal
    // that — resumed under an *unbounded* configuration — lands on the
    // exact outcome of a run that was never bounded. The fallback
    // suppressions a degraded run applies are deliberately not journaled
    // and its `Degraded` marker is truncated on recovery, so resume
    // continues toward convergence instead of replaying the bail-out.
    let survey = generate_households(40, 0xFA17);
    let inner_risk = KAnonymity::new(2);
    let inner_anon = LocalSuppression::default();
    let unbounded = CycleConfig {
        threshold: THRESHOLD,
        ..CycleConfig::default()
    };
    let plain = AnonymizationCycle::new(&inner_risk, &inner_anon, unbounded.clone())
        .run(&survey.db, &survey.dict)
        .expect("plain unbounded run");
    assert!(plain.termination.is_converged());

    let cases = [
        ("iteration-cap", Fault::IterationCap(1)),
        ("immediate-deadline", Fault::ImmediateDeadline),
        ("cancel-after-1-eval", Fault::CancelAfterEvals(1)),
    ];
    for (name, fault) in cases {
        let dir = std::env::temp_dir().join(format!(
            "vadasa-governor-journal-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut config = CycleConfig {
            journal: Some(JournalConfig::new(&dir)),
            ..unbounded.clone()
        };
        let mut risk = FaultyRisk::new(&inner_risk);
        let mut cancel: Option<CancelToken> = None;
        match fault {
            Fault::IterationCap(n) => config.max_iterations = n,
            Fault::ImmediateDeadline => config.deadline = Some(Duration::ZERO),
            Fault::CancelAfterEvals(n) => {
                let token = CancelToken::new();
                risk = risk.cancel_after(n, token.clone());
                cancel = Some(token);
            }
            _ => unreachable!("not a governor fault"),
        }
        let mut cycle = AnonymizationCycle::new(&risk, &inner_anon, config);
        if let Some(token) = cancel {
            cycle = cycle.with_cancel(token);
        }
        let bounded = cycle
            .run(&survey.db, &survey.dict)
            .unwrap_or_else(|e| panic!("{name}: bounded run must degrade, not error: {e}"));
        assert!(
            matches!(bounded.termination, CycleTermination::Degraded { .. }),
            "{name}: governor did not fire"
        );

        let resumed = AnonymizationCycle::new(
            &inner_risk,
            &inner_anon,
            CycleConfig {
                journal: Some(JournalConfig::new(&dir)),
                ..unbounded.clone()
            },
        )
        .resume(&survey.db, &survey.dict)
        .unwrap_or_else(|e| panic!("{name}: resume failed: {e}"));

        assert!(resumed.termination.is_converged(), "{name}: not converged");
        assert_eq!(resumed.iterations, plain.iterations, "{name}: iterations");
        assert_eq!(
            resumed.nulls_injected, plain.nulls_injected,
            "{name}: nulls"
        );
        assert_eq!(resumed.recodings, plain.recodings, "{name}: recodings");
        assert_eq!(
            resumed.initial_risky, plain.initial_risky,
            "{name}: initial risky"
        );
        assert_eq!(
            resumed.final_risky, plain.final_risky,
            "{name}: final risky"
        );
        assert_eq!(
            resumed.information_loss.to_bits(),
            plain.information_loss.to_bits(),
            "{name}: information loss"
        );
        assert_eq!(
            resumed.final_report.risks, plain.final_report.risks,
            "{name}: final risks"
        );
        assert_eq!(
            resumed.audit.decisions.len(),
            plain.audit.decisions.len(),
            "{name}: audit length"
        );
        for i in 0..survey.db.len() {
            assert_eq!(
                resumed.db.row(i).unwrap(),
                plain.db.row(i).unwrap(),
                "{name}: row {i} of the released table"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn cancellation_preserves_partial_work() {
    // Cancelling after the first evaluation must keep the suppressions
    // performed so far — degradation adds protection on top, it never
    // rolls protection back.
    let survey = generate_households(40, 0xFA17);
    let inner_risk = KAnonymity::new(2);
    let inner_anon = LocalSuppression::default();
    let token = CancelToken::new();
    let risk = FaultyRisk::new(&inner_risk).cancel_after(2, token.clone());
    let anon = FaultyAnonymizer::new(&inner_anon);
    let config = CycleConfig {
        threshold: THRESHOLD,
        ..CycleConfig::default()
    };
    let outcome = AnonymizationCycle::new(&risk, &anon, config)
        .with_cancel(token)
        .run(&survey.db, &survey.dict)
        .expect("cancelled run degrades");
    assert_eq!(
        outcome.termination,
        CycleTermination::Degraded {
            trigger: DegradeTrigger::Cancelled
        }
    );
    assert!(outcome.nulls_injected > 0, "partial work preserved");
    assert_eq!(outcome.final_risky, 0);
}
