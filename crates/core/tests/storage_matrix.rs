//! The storage fault matrix: the file-backed warm-artifact store under
//! every injected [`StorageFault`], plus a kill-point sweep pinning
//! disk-resumed warm state bit-identical to uninterrupted warm runs.
//!
//! The contract under test (DESIGN.md §15): persisted warm artifacts are
//! strictly *caches*. Every injected fault — torn write, disk full,
//! crash-after-k-bytes, corrupt page, reopen denied, alien magic, future
//! version — must surface as a structured error (counted in
//! `warm.persist_errors`) or a documented cold fallback that converges
//! to the identical transcript. Never a panic, never silent divergence.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vadalog::backend::{ArtifactIo, StorageEngine};
use vadalog::Value;
use vadasa_core::cycle::{
    AnonymizationCycle, CycleConfig, CycleOutcome, StepGranularity, StorageOptions,
};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::faults::{faulty_artifact_io, StorageFault};
use vadasa_core::journal::record;
use vadasa_core::journal::{JournalConfig, JOURNAL_FILE};
use vadasa_core::model::MicrodataDb;
use vadasa_core::prelude::{KAnonymity, LocalSuppression};
use vadasa_core::risk::RiskMeasure;
use vadasa_datagen::generate_households;

/// The on-disk file name of the persisted warm-statistics artifact.
const WARM_FILE: &str = "cycle.warmstats.vart";

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vadasa-storage-{}-{n}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Canonical rendering of every observable output of a run (same shape
/// as the crash matrix): equal transcripts ⇔ indistinguishable runs.
fn transcript(o: &CycleOutcome) -> String {
    let mut t = String::new();
    let _ = writeln!(
        t,
        "iterations={} nulls={} recodings={} initial_risky={} final_risky={}",
        o.iterations, o.nulls_injected, o.recodings, o.initial_risky, o.final_risky
    );
    let _ = writeln!(
        t,
        "termination={:?} loss_bits={:016x}",
        o.termination,
        o.information_loss.to_bits()
    );
    for (i, r) in o.final_report.risks.iter().enumerate() {
        let _ = writeln!(t, "risk[{i}]={:016x}", r.to_bits());
    }
    for d in &o.audit.decisions {
        let _ = writeln!(
            t,
            "audit iter={} row={} measure={} risk={:016x} action={:?}",
            d.iteration,
            d.row,
            d.measure,
            d.risk.to_bits(),
            d.action
        );
    }
    for r in 0..o.db.len() {
        let _ = writeln!(t, "row[{r}]={:?}", o.db.row(r).expect("row in range"));
    }
    t
}

/// The Fig. 5 table: small enough that a full per-byte artifact sweep is
/// cheap, with several one-tuple iterations so the artifact is rewritten
/// more than once.
fn fig5() -> (MicrodataDb, MetadataDictionary) {
    let mut db =
        MicrodataDb::new("fig5", ["Id", "Area", "Sector", "Employees", "ResRev", "W"]).unwrap();
    let rows = [
        ("099876", "Roma", "Textiles", "1000+", "0-30", 10),
        ("765389", "Roma", "Commerce", "1000+", "0-30", 20),
        ("231654", "Roma", "Commerce", "1000+", "0-30", 20),
        ("097302", "Roma", "Financial", "1000+", "0-30", 30),
        ("120967", "Roma", "Financial", "1000+", "0-30", 30),
        ("232498", "Milano", "Construction", "0-200", "60-90", 5),
        ("340901", "Torino", "Construction", "0-200", "60-90", 5),
    ];
    for (id, a, s, e, r, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(a),
            Value::str(s),
            Value::str(e),
            Value::str(r),
            Value::Int(w),
        ])
        .unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for a in ["Id", "Area", "Sector", "Employees", "ResRev", "W"] {
        dict.register_attr("fig5", a, "");
    }
    dict.set_category("fig5", "Id", Category::Identifier)
        .unwrap();
    for a in ["Area", "Sector", "Employees", "ResRev"] {
        dict.set_category("fig5", a, Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("fig5", "W", Category::Weight).unwrap();
    (db, dict)
}

fn fig5_config() -> CycleConfig {
    CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        ..CycleConfig::default()
    }
}

fn file_storage(io: Option<Arc<dyn ArtifactIo>>) -> StorageOptions {
    StorageOptions {
        engine: StorageEngine::File,
        artifact_io: io,
    }
}

fn reference_run(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: None,
            storage: StorageOptions::default(),
            ..config.clone()
        },
    )
    .run(db, dict)
    .expect("reference run")
}

fn run_journaled(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
    jcfg: JournalConfig,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: Some(jcfg),
            ..config.clone()
        },
    )
    .run(db, dict)
    .expect("journaled run")
}

fn resume_journaled(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: &CycleConfig,
    jcfg: JournalConfig,
) -> CycleOutcome {
    let anon = LocalSuppression::default();
    AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            journal: Some(jcfg),
            ..config.clone()
        },
    )
    .resume(db, dict)
    .expect("resume")
}

/// Number of risk-evaluation worker threads each test sweeps; CI runs
/// the suite at both values via `VADASA_RISK_THREADS`.
fn risk_threads() -> usize {
    std::env::var("VADASA_RISK_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[test]
fn file_engine_persists_warm_stats_and_kill_sweep_restores_them() {
    let survey = generate_households(24, 0x5707);
    let risk = KAnonymity::new(3);
    let config = CycleConfig {
        granularity: StepGranularity::AllRiskyPerIteration,
        storage: file_storage(None),
        risk_threads: risk_threads(),
        ..CycleConfig::default()
    };
    let reference = transcript(&reference_run(&survey.db, &survey.dict, &risk, &config));

    let ref_dir = fresh_dir("warm-ref");
    let jcfg = JournalConfig {
        snapshot_every: Some(1),
        ..JournalConfig::new(&ref_dir)
    };
    let journaled = run_journaled(&survey.db, &survey.dict, &risk, &config, jcfg);
    assert_eq!(
        transcript(&journaled),
        reference,
        "file-backed journaling changed the run"
    );
    assert_eq!(journaled.profile.warm.persist_errors, 0);
    let warm_artifact = ref_dir.join(WARM_FILE);
    assert!(
        warm_artifact.exists(),
        "file engine must persist {WARM_FILE}"
    );
    let artifact_bytes = fs::read(&warm_artifact).expect("read warm artifact");

    // Kill-point sweep: truncate the journal at every frame boundary,
    // copy the snapshots and the persisted warm artifact next to it, and
    // resume. Every prefix must land on the reference transcript, and at
    // least one kill point (the post-final-snapshot ones) must actually
    // seed from disk.
    let bytes = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal on disk");
    let bounds = record::frame_boundaries(&bytes);
    assert!(bounds.len() >= 4, "workload too small: {bounds:?}");
    let mut restores = 0u64;
    for &k in &bounds {
        let dir = fresh_dir(&format!("warm-kill-{k}"));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(JOURNAL_FILE), &bytes[..k]).expect("write prefix");
        for e in fs::read_dir(&ref_dir).expect("read dir").flatten() {
            let name = e.file_name();
            let s = name.to_string_lossy().to_string();
            if s.ends_with(".vsnap") || s.ends_with(".vart") {
                fs::copy(e.path(), dir.join(&name)).expect("copy artifact");
            }
        }
        let resumed = resume_journaled(
            &survey.db,
            &survey.dict,
            &risk,
            &config,
            JournalConfig::new(&dir),
        );
        assert_eq!(transcript(&resumed), reference, "kill at byte {k} diverged");
        restores += resumed.profile.warm.disk_restores;
        let _ = fs::remove_dir_all(&dir);
    }
    assert!(
        restores >= 1,
        "no kill point ever re-warmed from the persisted artifact"
    );

    // The same prefix resumed under the in-memory engine ignores the
    // artifact entirely — and still agrees.
    let dir = fresh_dir("warm-mem-resume");
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join(JOURNAL_FILE), &bytes).expect("write journal");
    fs::write(dir.join(WARM_FILE), &artifact_bytes).expect("write artifact");
    let mem_config = CycleConfig {
        storage: StorageOptions::default(),
        ..config.clone()
    };
    let resumed = resume_journaled(
        &survey.db,
        &survey.dict,
        &risk,
        &mem_config,
        JournalConfig::new(&dir),
    );
    assert_eq!(transcript(&resumed), reference);
    assert_eq!(resumed.profile.warm.disk_restores, 0);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&ref_dir);
}

#[test]
fn in_memory_engine_writes_no_artifacts() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let config = fig5_config(); // default storage: in-memory
    let dir = fresh_dir("mem-engine");
    let jcfg = JournalConfig {
        snapshot_every: Some(1),
        ..JournalConfig::new(&dir)
    };
    let outcome = run_journaled(&db, &dict, &risk, &config, jcfg);
    assert_eq!(outcome.profile.warm.disk_restores, 0);
    assert_eq!(outcome.profile.warm.persist_errors, 0);
    let arts: Vec<String> = fs::read_dir(&dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|n| n.ends_with(".vart"))
        .collect();
    assert!(arts.is_empty(), "mem engine wrote artifacts: {arts:?}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn storage_fault_matrix_never_panics_and_never_diverges() {
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let base = CycleConfig {
        risk_threads: risk_threads(),
        ..fig5_config()
    };
    let reference = transcript(&reference_run(&db, &dict, &risk, &base));

    for fault in StorageFault::matrix() {
        let dir = fresh_dir("fault");
        let config = CycleConfig {
            storage: file_storage(Some(faulty_artifact_io(fault))),
            ..base.clone()
        };
        let jcfg = JournalConfig {
            snapshot_every: Some(1),
            ..JournalConfig::new(&dir)
        };
        // The faulted run must complete — artifact persistence is a
        // cache write, never load-bearing — and match the reference.
        let anon = LocalSuppression::default();
        let outcome = AnonymizationCycle::new(
            &risk,
            &anon,
            CycleConfig {
                journal: Some(jcfg),
                ..config.clone()
            },
        )
        .run(&db, &dict)
        .unwrap_or_else(|e| panic!("{fault}: faulted run failed: {e}"));
        assert_eq!(transcript(&outcome), reference, "{fault}: run diverged");
        let write_side = matches!(
            fault,
            StorageFault::TornWrite { .. }
                | StorageFault::FullDisk { .. }
                | StorageFault::CrashAfterBytes { .. }
        );
        if write_side {
            assert!(
                outcome.profile.warm.persist_errors >= 1,
                "{fault}: write fault was not surfaced in persist_errors"
            );
        } else {
            assert_eq!(
                outcome.profile.warm.persist_errors, 0,
                "{fault}: read fault counted as a persist error"
            );
        }

        // Resume through the same fault plan (fresh ordinals): read-side
        // faults now hit the artifact load and must degrade to the cold
        // regroup; write-side faults leave at worst a stale-but-valid or
        // absent artifact behind the atomic-replace protocol. Either
        // way: identical transcript.
        let resumed = resume_journaled(
            &db,
            &dict,
            &risk,
            &CycleConfig {
                storage: file_storage(Some(faulty_artifact_io(fault))),
                ..base.clone()
            },
            JournalConfig::new(&dir),
        );
        assert_eq!(transcript(&resumed), reference, "{fault}: resume diverged");
        if !write_side {
            assert_eq!(
                resumed.profile.warm.disk_restores, 0,
                "{fault}: a faulted read must not seed warm state"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_after_every_artifact_byte_then_clean_resume() {
    // Byte-granular kill points inside the artifact writer itself: the
    // k-th cumulative byte is the last to reach disk. The tmp+rename
    // protocol means a torn tmp file is never visible under the artifact
    // name, so every k must resume to the reference transcript.
    let (db, dict) = fig5();
    let risk = KAnonymity::new(2);
    let base = fig5_config();
    let reference = transcript(&reference_run(&db, &dict, &risk, &base));

    // Length of one healthy artifact, from an unfaulted file-backed run.
    let ref_dir = fresh_dir("bytes-ref");
    run_journaled(
        &db,
        &dict,
        &risk,
        &CycleConfig {
            storage: file_storage(None),
            ..base.clone()
        },
        JournalConfig {
            snapshot_every: Some(1),
            ..JournalConfig::new(&ref_dir)
        },
    );
    let artifact_len = fs::read(ref_dir.join(WARM_FILE))
        .expect("warm artifact")
        .len();
    let _ = fs::remove_dir_all(&ref_dir);
    assert!(artifact_len > 28, "artifact suspiciously small");

    for k in 0..=artifact_len {
        let dir = fresh_dir(&format!("bytes-{k}"));
        let outcome = run_journaled(
            &db,
            &dict,
            &risk,
            &CycleConfig {
                storage: file_storage(Some(faulty_artifact_io(StorageFault::CrashAfterBytes {
                    bytes: k,
                }))),
                ..base.clone()
            },
            JournalConfig {
                snapshot_every: Some(1),
                ..JournalConfig::new(&dir)
            },
        );
        assert_eq!(
            transcript(&outcome),
            reference,
            "crash after {k} artifact bytes diverged"
        );
        assert!(outcome.profile.warm.persist_errors >= 1);
        // Clean-I/O resume over whatever the dying writer left behind.
        let resumed = resume_journaled(
            &db,
            &dict,
            &risk,
            &CycleConfig {
                storage: file_storage(None),
                ..base.clone()
            },
            JournalConfig::new(&dir),
        );
        assert_eq!(
            transcript(&resumed),
            reference,
            "resume after {k}-byte artifact crash diverged"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn hostile_warm_artifacts_fall_back_cold_to_the_same_result() {
    // Mutate the persisted artifact directly — truncations, bit flips,
    // insertions, emptiness, alien magic, a future version — and resume.
    // Every mutant must be refused by the framed decoder and the session
    // must converge cold to the reference transcript.
    let survey = generate_households(24, 0x5707);
    let risk = KAnonymity::new(3);
    let config = CycleConfig {
        granularity: StepGranularity::AllRiskyPerIteration,
        storage: file_storage(None),
        ..CycleConfig::default()
    };
    let reference = transcript(&reference_run(&survey.db, &survey.dict, &risk, &config));

    let ref_dir = fresh_dir("hostile-ref");
    run_journaled(
        &survey.db,
        &survey.dict,
        &risk,
        &config,
        JournalConfig {
            snapshot_every: Some(1),
            ..JournalConfig::new(&ref_dir)
        },
    );
    let journal = fs::read(ref_dir.join(JOURNAL_FILE)).expect("journal");
    let artifact = fs::read(ref_dir.join(WARM_FILE)).expect("artifact");
    let snapshots: Vec<(String, Vec<u8>)> = fs::read_dir(&ref_dir)
        .expect("read dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".vsnap"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().to_string(),
                fs::read(e.path()).expect("snapshot"),
            )
        })
        .collect();
    let _ = fs::remove_dir_all(&ref_dir);

    // Deterministic xorshift mutations plus the canonical hostile shapes.
    let mut mutants: Vec<Vec<u8>> = vec![
        Vec::new(),                              // empty file
        b"NOTAVADAxxxxyyyyzzzz".to_vec(),        // alien magic, alien body
        artifact[..artifact.len() / 2].to_vec(), // half the file
    ];
    let mut future = artifact.clone();
    future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    mutants.push(future);
    let mut s = 0x5707_2026_u64 | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..24 {
        let mut m = artifact.clone();
        match next() % 3 {
            0 => m.truncate((next() as usize) % (m.len() + 1)),
            1 => {
                let i = (next() as usize) % m.len();
                m[i] ^= (next() % 255 + 1) as u8;
            }
            _ => {
                let i = (next() as usize) % (m.len() + 1);
                m.insert(i, next() as u8);
            }
        }
        mutants.push(m);
    }

    for (mi, mutant) in mutants.iter().enumerate() {
        let dir = fresh_dir(&format!("hostile-{mi}"));
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(JOURNAL_FILE), &journal).expect("write journal");
        fs::write(dir.join(WARM_FILE), mutant).expect("write mutant");
        for (name, bytes) in &snapshots {
            fs::write(dir.join(name), bytes).expect("write snapshot");
        }
        let resumed = resume_journaled(
            &survey.db,
            &survey.dict,
            &risk,
            &config,
            JournalConfig::new(&dir),
        );
        assert_eq!(transcript(&resumed), reference, "mutant {mi} diverged");
        // One mutation always breaks the CRC/length/magic framing, so a
        // hostile artifact can never be mistaken for a warm seed.
        assert_eq!(
            resumed.profile.warm.disk_restores, 0,
            "mutant {mi} was accepted as a warm seed"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
