//! Warm-start ≡ cold-start for the anonymization cycle (PR-4 pin).
//!
//! [`CycleConfig::warm_start`] swaps the per-iteration `MicrodataView`
//! rebuild + full regroup for an incrementally patched view and
//! incrementally repaired group statistics. That is an *evaluation
//! strategy*, not a semantics: on every input the warm cycle must produce
//! the same anonymized table, the same (bitwise) final risk report, the
//! same iteration count, audit trail and termination as a cold run.
//!
//! Random tables use categorical string columns and integer-valued
//! weights — the regime the exact-summability gate admits to the fast
//! path, so these cases genuinely exercise the incremental statistics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use vadalog::Value;
use vadasa_core::cycle::{
    AnonymizationCycle, CycleConfig, CycleOutcome, StepGranularity, TupleOrder,
};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::model::MicrodataDb;
use vadasa_core::prelude::{KAnonymity, LocalSuppression, ReIdentification};
use vadasa_core::risk::RiskMeasure;

/// A random categorical microdata table: 2–4 QI columns over small value
/// domains (so equivalence classes collide), integer weights 1..40.
fn random_table(rng: &mut StdRng) -> (MicrodataDb, MetadataDictionary) {
    let cols = rng.gen_range(2..=4usize);
    let rows = rng.gen_range(4..=14usize);
    let mut names: Vec<String> = vec!["id".into()];
    for c in 0..cols {
        names.push(format!("q{c}"));
    }
    names.push("w".into());
    let mut db = MicrodataDb::new("rand", names.clone()).unwrap();
    for r in 0..rows {
        let mut row = vec![Value::Int(r as i64)];
        for _ in 0..cols {
            let v = rng.gen_range(0..4u8);
            row.push(Value::str(["alpha", "beta", "gamma", "delta"][v as usize]));
        }
        row.push(Value::Int(rng.gen_range(1..40i64)));
        db.push_row(row).unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for n in &names {
        dict.register_attr("rand", n, "");
    }
    dict.set_category("rand", "id", Category::Identifier)
        .unwrap();
    for c in 0..cols {
        dict.set_category("rand", &format!("q{c}"), Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("rand", "w", Category::Weight).unwrap();
    (db, dict)
}

/// Run the cycle warm and cold and require identical observable outcomes.
fn assert_warm_equals_cold(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    risk: &dyn RiskMeasure,
    config: CycleConfig,
) -> (CycleOutcome, CycleOutcome) {
    let anon = LocalSuppression::default();
    let warm = AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            warm_start: true,
            ..config.clone()
        },
    )
    .run(db, dict)
    .expect("warm cycle runs");
    let cold = AnonymizationCycle::new(
        risk,
        &anon,
        CycleConfig {
            warm_start: false,
            ..config
        },
    )
    .run(db, dict)
    .expect("cold cycle runs");

    assert_eq!(warm.iterations, cold.iterations, "iterations");
    assert_eq!(warm.nulls_injected, cold.nulls_injected, "nulls injected");
    assert_eq!(warm.recodings, cold.recodings, "recodings");
    assert_eq!(warm.initial_risky, cold.initial_risky, "initial risky");
    assert_eq!(warm.final_risky, cold.final_risky, "final risky");
    assert_eq!(warm.termination, cold.termination, "termination");
    assert_eq!(
        warm.information_loss, cold.information_loss,
        "information loss"
    );
    assert_eq!(warm.final_report.risks, cold.final_report.risks, "risks");
    assert_eq!(
        warm.final_report.details, cold.final_report.details,
        "report details"
    );
    assert_eq!(
        warm.audit.decisions.len(),
        cold.audit.decisions.len(),
        "audit length"
    );
    for (w, c) in warm.audit.decisions.iter().zip(cold.audit.decisions.iter()) {
        assert_eq!(w.iteration, c.iteration, "audited iteration");
        assert_eq!(w.row, c.row, "audited row");
        assert_eq!(w.risk, c.risk, "audited risk");
    }
    for i in 0..db.len() {
        assert_eq!(
            warm.db.row(i).unwrap(),
            cold.db.row(i).unwrap(),
            "row {i} of the anonymized table"
        );
    }
    (warm, cold)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// k-anonymity over random categorical tables, both granularities.
    #[test]
    fn warm_kanon_matches_cold(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (db, dict) = random_table(&mut rng);
        let granularity = if seed % 2 == 0 {
            StepGranularity::AllRiskyPerIteration
        } else {
            StepGranularity::OneTuplePerIteration
        };
        assert_warm_equals_cold(
            &db,
            &dict,
            &KAnonymity::new(2),
            CycleConfig { granularity, ..CycleConfig::default() },
        );
    }

    /// Re-identification risk (weight-sum reciprocal) over random tables:
    /// exercises the exact integer weight sums through many patches.
    #[test]
    fn warm_reident_matches_cold(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (db, dict) = random_table(&mut rng);
        assert_warm_equals_cold(
            &db,
            &dict,
            &ReIdentification,
            CycleConfig {
                threshold: 0.2,
                tuple_order: TupleOrder::MostRiskyFirst,
                granularity: StepGranularity::OneTuplePerIteration,
                ..CycleConfig::default()
            },
        );
    }
}

/// Multi-iteration Fig-5-style workload: one-tuple granularity forces one
/// risk evaluation per suppression, so a converging run serves most
/// evaluations from the patched statistics.
#[test]
fn fig5_workload_is_warm_served() {
    let mut db =
        MicrodataDb::new("fig5", ["Id", "Area", "Sector", "Employees", "ResRev", "W"]).unwrap();
    let rows = [
        ("099876", "Roma", "Textiles", "1000+", "0-30", 10),
        ("765389", "Roma", "Commerce", "1000+", "0-30", 20),
        ("231654", "Roma", "Commerce", "1000+", "0-30", 20),
        ("097302", "Roma", "Financial", "1000+", "0-30", 30),
        ("120967", "Roma", "Financial", "1000+", "0-30", 30),
        ("232498", "Milano", "Construction", "0-200", "60-90", 5),
        ("340901", "Torino", "Construction", "0-200", "60-90", 5),
    ];
    for (id, a, s, e, r, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(a),
            Value::str(s),
            Value::str(e),
            Value::str(r),
            Value::Int(w),
        ])
        .unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for a in ["Id", "Area", "Sector", "Employees", "ResRev", "W"] {
        dict.register_attr("fig5", a, "");
    }
    dict.set_category("fig5", "Id", Category::Identifier)
        .unwrap();
    for a in ["Area", "Sector", "Employees", "ResRev"] {
        dict.set_category("fig5", a, Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("fig5", "W", Category::Weight).unwrap();

    let (warm, _cold) = assert_warm_equals_cold(
        &db,
        &dict,
        &KAnonymity::new(2),
        CycleConfig {
            granularity: StepGranularity::OneTuplePerIteration,
            ..CycleConfig::default()
        },
    );
    assert!(warm.iterations >= 2, "workload must actually iterate");
    let w = &warm.profile.warm;
    assert!(w.warm_evals >= warm.iterations as u64 - 1, "{w:?}");
    assert_eq!(w.cold_evals, 1, "only the first evaluation groups cold");
    assert_eq!(w.fallback_to_cold, 0);
    assert!(w.patched_facts >= 1);
}
