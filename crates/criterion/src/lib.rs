//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and prints min / mean /
//! max wall-clock time per iteration. When invoked by `cargo test` (which
//! passes `--test` to `harness = false` bench binaries), every benchmark
//! runs a single iteration so the test suite stays fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { quick }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            quick: self.quick,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.quick { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            warmup: !self.quick,
            times_ns: Vec::new(),
        };
        f(&mut bencher, input);
        let times = &bencher.times_ns;
        if times.is_empty() {
            println!("{}/{}: no measurements", self.name, id.label);
            return self;
        }
        let min = *times.iter().min().unwrap();
        let max = *times.iter().max().unwrap();
        let mean = times.iter().sum::<u128>() / times.len() as u128;
        println!(
            "{}/{}: time [{} {} {}]",
            self.name,
            id.label,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        self
    }

    /// Run one benchmark without a distinguished input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &()),
    {
        self.bench_with_input(BenchmarkId::from_parameter(id.into()), &(), f)
    }

    /// Finish the group (output is already printed; kept for API parity).
    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times a closure over the configured number of samples.
pub struct Bencher {
    samples: usize,
    warmup: bool,
    times_ns: Vec<u128>,
}

impl Bencher {
    /// Run `f` once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.warmup {
            black_box(f());
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times_ns.push(t0.elapsed().as_nanos());
        }
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert_eq!(runs, 1, "quick mode runs exactly one iteration");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
