//! The Figure 6 dataset catalogue.
//!
//! Twelve named datasets used throughout Section 5. The paper's `R25A4W`
//! is real Bank of Italy survey data; here every entry is synthesized (see
//! DESIGN.md for the substitution argument), with the "W" regime fitted to
//! a real-world-like frequency spectrum.

use crate::generator::{generate, DatasetSpec, Regime};
use vadasa_core::dictionary::MetadataDictionary;
use vadasa_core::model::MicrodataDb;

/// Default seed used for catalogue datasets (fixed for reproducibility).
pub const CATALOG_SEED: u64 = 20210323; // EDBT 2021 opening day

/// All twelve specs of Figure 6, in the paper's order.
pub fn figure6_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::new(6_000, 4, Regime::U),
        DatasetSpec::new(12_000, 4, Regime::U),
        DatasetSpec::new(25_000, 4, Regime::W),
        DatasetSpec::new(25_000, 4, Regime::U),
        DatasetSpec::new(25_000, 4, Regime::V),
        DatasetSpec::new(50_000, 4, Regime::W),
        DatasetSpec::new(50_000, 4, Regime::U),
        DatasetSpec::new(50_000, 5, Regime::W),
        DatasetSpec::new(50_000, 6, Regime::W),
        DatasetSpec::new(50_000, 8, Regime::W),
        DatasetSpec::new(50_000, 9, Regime::W),
        DatasetSpec::new(100_000, 4, Regime::U),
    ]
}

/// Generate a catalogue dataset by its Figure 6 name (e.g. `"R25A4W"`).
/// Names outside the fixed twelve are synthesized on the fly via
/// [`DatasetSpec::parse`] (e.g. `"R2A5V"`); `None` for unparsable names.
pub fn by_name(name: &str) -> Option<(MicrodataDb, MetadataDictionary)> {
    figure6_specs()
        .into_iter()
        .find(|s| s.name == name)
        .or_else(|| DatasetSpec::parse(name))
        .map(|s| generate(&s, CATALOG_SEED))
}

macro_rules! catalog_fn {
    ($fn_name:ident, $name:literal) => {
        /// Generate the catalogue dataset of the same name (Figure 6).
        pub fn $fn_name() -> (MicrodataDb, MetadataDictionary) {
            by_name($name).expect("catalogue name is registered")
        }
    };
}

catalog_fn!(r6a4u, "R6A4U");
catalog_fn!(r12a4u, "R12A4U");
catalog_fn!(r25a4w, "R25A4W");
catalog_fn!(r25a4u, "R25A4U");
catalog_fn!(r25a4v, "R25A4V");
catalog_fn!(r50a4w, "R50A4W");
catalog_fn!(r50a4u, "R50A4U");
catalog_fn!(r50a5w, "R50A5W");
catalog_fn!(r50a6w, "R50A6W");
catalog_fn!(r50a8w, "R50A8W");
catalog_fn!(r50a9w, "R50A9W");
catalog_fn!(r100a4u, "R100A4U");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_specs_with_paper_names() {
        let specs = figure6_specs();
        assert_eq!(specs.len(), 12);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "R6A4U", "R12A4U", "R25A4W", "R25A4U", "R25A4V", "R50A4W", "R50A4U", "R50A5W",
                "R50A6W", "R50A8W", "R50A9W", "R100A4U"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        let (db, dict) = by_name("R6A4U").unwrap();
        assert_eq!(db.len(), 6_000);
        assert_eq!(dict.quasi_identifiers(&db.name).unwrap().len(), 4);
        assert!(by_name("R1A1X").is_none());
        // off-catalogue names synthesize on demand
        let (db, _) = by_name("R2A5V").unwrap();
        assert_eq!(db.len(), 2_000);
    }

    #[test]
    fn named_helper_matches_lookup() {
        let (a, _) = r6a4u();
        let (b, _) = by_name("R6A4U").unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.row(0).unwrap(), b.row(0).unwrap());
    }
}
