//! Attribute domains of the Inflation & Growth survey schema (Figure 1).
//!
//! The synthetic generator reuses the paper's survey vocabulary: geographic
//! areas, product sectors, employee bands and revenue bands, extended with
//! additional banded attributes (legal form, firm age, size class, export
//! destination) so that catalogue entries with up to 9 quasi-identifiers
//! (R50A9W) can be produced.

/// Geographic areas (quasi-identifier `Area`).
pub const AREAS: &[&str] = &["North", "Center", "South"];

/// Product sectors (quasi-identifier `Sector`).
pub const SECTORS: &[&str] = &[
    "Public Service",
    "Commerce",
    "Textiles",
    "Construction",
    "Financial",
    "Agriculture",
    "Energy",
    "Transport",
    "Tourism",
    "Other",
];

/// Employee count bands (quasi-identifier `Employees`).
pub const EMPLOYEES: &[&str] = &["0-49", "50-200", "201-1000", "1000+"];

/// Percentage bands used for revenue shares (`Residential Rev.`,
/// `Export Rev.`, `Exp. to DE`).
pub const REV_BANDS: &[&str] = &["0-30", "30-60", "60-90", "90+"];

/// Legal forms (extra quasi-identifier for wide schemas).
pub const LEGAL_FORMS: &[&str] = &["SpA", "Srl", "Sas", "Snc", "Coop", "Branch"];

/// Firm age bands (extra quasi-identifier).
pub const AGE_BANDS: &[&str] = &["0-5", "6-15", "16-30", "31-60", "60+"];

/// Balance-sheet size classes (extra quasi-identifier).
pub const SIZE_BANDS: &[&str] = &["micro", "small", "medium", "large", "very-large"];

/// Main export destination (extra quasi-identifier).
pub const EXPORT_DEST: &[&str] = &["DE", "FR", "US", "CN", "UK", "ES", "none"];

/// The quasi-identifier columns available to the generator, in the order
/// they are enabled as the requested QI count grows (4 → 9).
pub const QI_COLUMNS: &[(&str, &[&str])] = &[
    ("Area", AREAS),
    ("Sector", SECTORS),
    ("Employees", EMPLOYEES),
    ("ResidentialRev", REV_BANDS),
    ("ExportRev", REV_BANDS),
    ("ExportToDE", REV_BANDS),
    ("LegalForm", LEGAL_FORMS),
    ("AgeBand", AGE_BANDS),
    ("SizeBand", SIZE_BANDS),
];

/// Maximum number of quasi-identifiers the generator supports.
pub const MAX_QI: usize = QI_COLUMNS.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_qi_columns_available() {
        assert_eq!(MAX_QI, 9);
        // all domains non-trivial
        for (name, domain) in QI_COLUMNS {
            assert!(domain.len() >= 3, "{name} domain too small");
        }
    }

    #[test]
    fn domains_have_no_duplicates() {
        for (name, domain) in QI_COLUMNS {
            let set: std::collections::HashSet<_> = domain.iter().collect();
            assert_eq!(set.len(), domain.len(), "{name} has duplicate values");
        }
    }
}
