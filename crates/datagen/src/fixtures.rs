//! Exact fixtures transcribed from the paper: the Figure 1 microdata
//! fragment (Inflation & Growth survey) and the Figure 5a local-suppression
//! example.

use vadalog::Value;
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::model::MicrodataDb;

/// The 20-row Inflation & Growth fragment of Figure 1, with the paper's
/// categorization: `Id` identifier; `Area`, `Sector`, `Employees`,
/// `ResidentialRev`, `ExportRev` quasi-identifiers; `ExportToDE`,
/// `Growth6mos` non-identifying; `Weight` sampling weight.
pub fn inflation_growth_fig1() -> (MicrodataDb, MetadataDictionary) {
    let attrs = [
        "Id",
        "Area",
        "Sector",
        "Employees",
        "ResidentialRev",
        "ExportRev",
        "ExportToDE",
        "Growth6mos",
        "Weight",
    ];
    let mut db = MicrodataDb::new("I&G", attrs).expect("unique attrs");

    // (Id, Area, Sector, Employees, ResRev, ExpRev, ExpToDE, Growth, Weight)
    #[allow(clippy::type_complexity)]
    let rows: [(&str, &str, &str, &str, &str, &str, &str, i64, i64); 20] = [
        (
            "612276",
            "North",
            "Public Service",
            "50-200",
            "0-30",
            "0-30",
            "30-60",
            2,
            230,
        ),
        (
            "737536", "South", "Commerce", "201-1000", "0-30", "90+", "0-30", -1, 190,
        ),
        (
            "971906", "Center", "Commerce", "1000+", "0-30", "30-60", "0-30", 4, 70,
        ),
        (
            "589681", "North", "Textiles", "1000+", "90+", "0-30", "0-30", 30, 60,
        ),
        (
            "419410",
            "North",
            "Construction",
            "1000+",
            "90+",
            "0-30",
            "0-30",
            300,
            50,
        ),
        (
            "972915", "North", "Other", "1000+", "0-30", "0-30", "30-60", 50, 70,
        ),
        (
            "501118", "North", "Other", "201-1000", "60-90", "90+", "90+", -20, 300,
        ),
        (
            "815363", "North", "Textiles", "201-1000", "60-90", "30-60", "90+", 2, 230,
        ),
        (
            "490065",
            "South",
            "Public Service",
            "50-200",
            "0-30",
            "0-30",
            "0-30",
            12,
            123,
        ),
        (
            "415487", "South", "Commerce", "1000+", "0-30", "0-30", "90+", 3, 145,
        ),
        (
            "399087", "South", "Commerce", "50-200", "30-60", "0-30", "30-60", 2, 70,
        ),
        (
            "170034", "Center", "Commerce", "1000+", "60-90", "0-30", "0-30", 45, 90,
        ),
        (
            "724905",
            "Center",
            "Construction",
            "201-1000",
            "0-30",
            "30-60",
            "0-30",
            2,
            200,
        ),
        (
            "554475", "Center", "Other", "50-200", "0-30", "90+", "0-30", 0, 104,
        ),
        (
            "946251",
            "Center",
            "Public Service",
            "201-1000",
            "30-60",
            "90+",
            "90+",
            150,
            30,
        ),
        (
            "581077", "North", "Textiles", "50-200", "0-30", "60-90", "30-60", -20, 160,
        ),
        (
            "765562", "South", "Textiles", "50-200", "0-30", "60-90", "0-30", -7, 200,
        ),
        (
            "154840", "Center", "Commerce", "201-1000", "0-30", "60-90", "0-30", 4, 220,
        ),
        (
            "600837",
            "Center",
            "Construction",
            "50-200",
            "0-30",
            "60-90",
            "0-30",
            20,
            190,
        ),
        (
            "220712",
            "Center",
            "Financial",
            "1000+",
            "30-60",
            "60-90",
            "30-60",
            -30,
            90,
        ),
    ];
    for (id, area, sector, emp, res, exp, de, growth, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(area),
            Value::str(sector),
            Value::str(emp),
            Value::str(res),
            Value::str(exp),
            Value::str(de),
            Value::Int(growth),
            Value::Int(w),
        ])
        .expect("arity");
    }

    let mut dict = MetadataDictionary::new();
    let descriptions = [
        ("Id", "Company Identifier"),
        ("Area", "Geographic Area"),
        ("Sector", "Product Sector"),
        ("Employees", "Num. of employees"),
        ("ResidentialRev", "Rev. from internal market"),
        ("ExportRev", "Rev. from external market"),
        ("ExportToDE", "Rev. from DE market"),
        ("Growth6mos", "Rev. growth last 6 mths"),
        ("Weight", "Sampling Weight"),
    ];
    for (a, d) in descriptions {
        dict.register_attr("I&G", a, d);
    }
    dict.set_category("I&G", "Id", Category::Identifier)
        .unwrap();
    for a in ["Area", "Sector", "Employees", "ResidentialRev", "ExportRev"] {
        dict.set_category("I&G", a, Category::QuasiIdentifier)
            .unwrap();
    }
    for a in ["ExportToDE", "Growth6mos"] {
        dict.set_category("I&G", a, Category::NonIdentifying)
            .unwrap();
    }
    dict.set_category("I&G", "Weight", Category::Weight)
        .unwrap();
    (db, dict)
}

/// The 7-row Figure 5a table (all four attributes quasi-identifiers; the
/// paper omits the weight, so a unit weight column is added for measures
/// that need one).
pub fn local_suppression_fig5a() -> (MicrodataDb, MetadataDictionary) {
    let attrs = [
        "Id",
        "Area",
        "Sector",
        "Employees",
        "ResidentialRev",
        "Weight",
    ];
    let mut db = MicrodataDb::new("fig5", attrs).expect("unique attrs");
    let rows: [(&str, &str, &str, &str, &str); 7] = [
        ("099876", "Roma", "Textiles", "1000+", "0-30"),
        ("765389", "Roma", "Commerce", "1000+", "0-30"),
        ("231654", "Roma", "Commerce", "1000+", "0-30"),
        ("097302", "Roma", "Financial", "1000+", "0-30"),
        ("120967", "Roma", "Financial", "1000+", "0-30"),
        ("232498", "Milano", "Construction", "0-200", "60-90"),
        ("340901", "Torino", "Construction", "0-200", "60-90"),
    ];
    for (id, area, sector, emp, res) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(area),
            Value::str(sector),
            Value::str(emp),
            Value::str(res),
            Value::Int(1),
        ])
        .expect("arity");
    }
    let mut dict = MetadataDictionary::new();
    for a in attrs {
        dict.register_attr("fig5", a, "");
    }
    dict.set_category("fig5", "Id", Category::Identifier)
        .unwrap();
    for a in ["Area", "Sector", "Employees", "ResidentialRev"] {
        dict.set_category("fig5", a, Category::QuasiIdentifier)
            .unwrap();
    }
    dict.set_category("fig5", "Weight", Category::Weight)
        .unwrap();
    (db, dict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::maybe_match::NullSemantics;
    use vadasa_core::risk::{MicrodataView, ReIdentification, RiskMeasure};

    #[test]
    fn figure1_has_twenty_rows_and_paper_categories() {
        let (db, dict) = inflation_growth_fig1();
        assert_eq!(db.len(), 20);
        assert_eq!(dict.quasi_identifiers("I&G").unwrap().len(), 5);
        assert_eq!(dict.weight_attr("I&G").unwrap(), "Weight");
    }

    #[test]
    fn figure1_extreme_risks_match_paper() {
        // §2.2: "Re-identification risk is highest for tuple 15 (0.03) and
        // lowest for tuple 7 (0.003)" — 1/30 ≈ 0.033 and 1/300 ≈ 0.0033.
        let (db, dict) = inflation_growth_fig1();
        let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
        let report = ReIdentification.evaluate(&view).unwrap();
        let max_at = report
            .risks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let min_at = report
            .risks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_at, 14, "tuple 15 (index 14) should be riskiest");
        assert_eq!(min_at, 6, "tuple 7 (index 6) should be safest");
        assert!((report.risks[14] - 1.0 / 30.0).abs() < 1e-9);
        assert!((report.risks[6] - 1.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_tuple4_risk_is_one_sixtieth() {
        // §2.2: tuple 4 is the only North/Textiles/1000+ company → 1/60.
        let (db, dict) = inflation_growth_fig1();
        let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
        let report = ReIdentification.evaluate(&view).unwrap();
        assert_eq!(report.details[3].frequency, 1);
        assert!((report.risks[3] - 1.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn figure5a_frequencies_match_paper() {
        let (db, dict) = local_suppression_fig5a();
        let view =
            MicrodataView::from_db_with(&db, &dict, NullSemantics::MaybeMatch, None).unwrap();
        let stats = view.group_stats_with(None, NullSemantics::MaybeMatch);
        assert_eq!(stats.count, vec![1, 2, 2, 2, 2, 1, 1]);
    }
}
