//! Synthetic microdata generation for the three distribution regimes of
//! the paper's evaluation (Figure 6).
//!
//! Every experiment of Section 5 depends only on the *frequency spectrum*
//! of quasi-identifier combinations and on the sampling weights, so the
//! generator uses a mixture model that controls that spectrum directly:
//!
//! - with probability `1 − p_rare`, a row instantiates one of `K`
//!   *prototype* combinations (Zipf-weighted), producing the large
//!   equivalence classes of real survey data;
//! - with probability `p_rare`, a row is an *outlier*: every
//!   quasi-identifier is drawn independently and uniformly, making the
//!   combination almost surely (near-)unique — a risky tuple.
//!
//! A third mixture component, *minor rows*, perturbs one attribute of a
//! major prototype: these form the small equivalence classes (size 1-6)
//! that become risky as the k-anonymity threshold grows, and their shared
//! structure is what lets one suppression defuse several of them (the
//! sub-linear information loss of Figure 7b). The regimes differ in the
//! outlier and minor rates and in the prototype count:
//!
//! | regime | meaning          | outliers | minors | prototypes |
//! |--------|------------------|----------|--------|------------|
//! | `W`    | real-world-like  | 0.0003   | 0.0035 | 60         |
//! | `U`    | unbalanced       | 0.0025   | 0.015  | 120        |
//! | `V`    | very unbalanced  | 0.008    | 0.05   | 240        |
//!
//! Sampling weights follow the paper's §2.1 definition: the weight of a
//! tuple estimates how many population entities share its combination, so
//! prototype rows (frequent, well-represented) receive large weights and
//! outliers small ones — which is what makes the "less significant first"
//! heuristic meaningful.

use crate::domains::{MAX_QI, QI_COLUMNS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::Value;
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::model::MicrodataDb;

/// The three distribution regimes of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Real-world-like ("W"): few risky tuples.
    W,
    /// Unbalanced ("U"): many selective combinations.
    U,
    /// Very unbalanced ("V"): heavy-tailed, many sample uniques.
    V,
}

impl Regime {
    /// Regime letter as used in dataset names.
    pub fn letter(&self) -> char {
        match self {
            Regime::W => 'W',
            Regime::U => 'U',
            Regime::V => 'V',
        }
    }

    /// Outlier probability of the mixture (rows that are almost surely
    /// sample-unique).
    pub fn outlier_rate(&self) -> f64 {
        match self {
            Regime::W => 0.0003,
            Regime::U => 0.0025,
            Regime::V => 0.008,
        }
    }

    /// Minor-row probability: rows that perturb one attribute of a major
    /// prototype, forming the small equivalence classes (size 1–6) that
    /// become risky as the k-anonymity threshold grows.
    pub fn minor_rate(&self) -> f64 {
        match self {
            Regime::W => 0.0035,
            Regime::U => 0.015,
            Regime::V => 0.05,
        }
    }

    /// Number of prototype combinations.
    pub fn prototypes(&self) -> usize {
        match self {
            Regime::W => 60,
            Regime::U => 120,
            Regime::V => 240,
        }
    }
}

/// A dataset specification (one row of Figure 6).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Catalogue name, e.g. `"R25A4W"`.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of quasi-identifier attributes (4–9).
    pub qi_count: usize,
    /// Distribution regime.
    pub regime: Regime,
}

impl DatasetSpec {
    /// Parse a Figure 6 style name (`R25A4W` → 25k rows, 4 QIs, regime W),
    /// accepting arbitrary sizes and widths beyond the fixed catalogue.
    pub fn parse(name: &str) -> Option<Self> {
        let rest = name.strip_prefix('R')?;
        let a_pos = rest.find('A')?;
        let rows_k: usize = rest[..a_pos].parse().ok()?;
        let tail = &rest[a_pos + 1..];
        if tail.len() < 2 {
            return None;
        }
        let (qi_str, regime_str) = tail.split_at(tail.len() - 1);
        let qi_count: usize = qi_str.parse().ok()?;
        if !(1..=MAX_QI).contains(&qi_count) || rows_k == 0 {
            return None;
        }
        let regime = match regime_str {
            "W" => Regime::W,
            "U" => Regime::U,
            "V" => Regime::V,
            _ => return None,
        };
        Some(DatasetSpec::new(rows_k * 1000, qi_count, regime))
    }

    /// Build a spec; the name is derived as `R{rows/1000}A{qi}{regime}`.
    pub fn new(rows: usize, qi_count: usize, regime: Regime) -> Self {
        assert!(
            (1..=MAX_QI).contains(&qi_count),
            "qi_count must be between 1 and {MAX_QI}"
        );
        DatasetSpec {
            name: format!("R{}A{}{}", rows / 1000, qi_count, regime.letter()),
            rows,
            qi_count,
            regime,
        }
    }
}

/// Deterministically generate a microdata DB and its categorized
/// dictionary from a spec and a seed.
pub fn generate(spec: &DatasetSpec, seed: u64) -> (MicrodataDb, MetadataDictionary) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A_6E6E);
    let qis: Vec<(&str, &[&str])> = QI_COLUMNS[..spec.qi_count].to_vec();

    // --- prototypes: Zipf-weighted common combinations ---
    let proto_count = spec.regime.prototypes();
    let mut prototypes: Vec<Vec<usize>> = Vec::with_capacity(proto_count);
    for _ in 0..proto_count {
        prototypes.push(
            qis.iter()
                .map(|(_, domain)| rng.gen_range(0..domain.len()))
                .collect(),
        );
    }
    // Zipf-ish prototype mass: p_i ∝ 1 / (i + 1)
    let zipf: Vec<f64> = (0..proto_count).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let zipf_total: f64 = zipf.iter().sum();

    // --- schema: Id | QIs... | Growth (non-identifying) | Weight ---
    let mut attrs: Vec<String> = vec!["Id".to_string()];
    attrs.extend(qis.iter().map(|(n, _)| n.to_string()));
    attrs.push("Growth".to_string());
    attrs.push("Weight".to_string());
    let mut db = MicrodataDb::new(&spec.name, attrs.clone()).expect("unique attr names");

    // scale factor between sample and (synthetic) population
    let pop_scale = 10.0;

    // Outliers need a combination space far larger than the cross product
    // of the base domains, otherwise they collide with each other at scale
    // and stop being risky. Each column gets a pool of `RARE_PER_COLUMN`
    // synthetic rare variants ("Textiles·r17"-style specializations) that
    // prototypes never use; outlier rows mix base values and rare variants
    // so their combinations are unique with overwhelming probability.
    const RARE_PER_COLUMN: usize = 40;
    let pick_prototype = |rng: &mut StdRng| -> usize {
        let mut u = rng.gen_range(0.0..zipf_total);
        for (i, z) in zipf.iter().enumerate() {
            if u < *z {
                return i;
            }
            u -= z;
        }
        0
    };
    let mut combos: Vec<Vec<usize>> = Vec::with_capacity(spec.rows);
    let mut is_outlier: Vec<bool> = Vec::with_capacity(spec.rows);
    for _ in 0..spec.rows {
        let dice: f64 = rng.gen_range(0.0..1.0);
        is_outlier.push(dice < spec.regime.outlier_rate());
        if dice < spec.regime.outlier_rate() {
            // outlier: each attribute is either a uniform base value or a
            // rare variant (encoded as index ≥ domain.len()); the combo
            // space is huge, so outliers are almost surely unique
            combos.push(
                qis.iter()
                    .map(|(_, domain)| {
                        if rng.gen_bool(0.5) {
                            rng.gen_range(0..domain.len())
                        } else {
                            domain.len() + rng.gen_range(0..RARE_PER_COLUMN)
                        }
                    })
                    .collect(),
            );
        } else if dice < spec.regime.outlier_rate() + spec.regime.minor_rate() {
            // minor row: a major prototype with ONE attribute flipped to a
            // different base value. Minor rows sharing (prototype, column)
            // agree on every other attribute, so suppressing the flipped
            // column of one lifts its siblings — the structure behind the
            // paper's sub-linear information loss (Figure 7b).
            let p = pick_prototype(&mut rng);
            let mut combo = prototypes[p].clone();
            let j = rng.gen_range(0..combo.len());
            let domain_len = qis[j].1.len();
            if domain_len > 1 {
                let mut v = rng.gen_range(0..domain_len);
                while v == prototypes[p][j] {
                    v = rng.gen_range(0..domain_len);
                }
                combo[j] = v;
            }
            combos.push(combo);
        } else {
            combos.push(prototypes[pick_prototype(&mut rng)].clone());
        }
    }

    // sample frequency of each combination → weight synthesis
    use std::collections::HashMap;
    let mut freq: HashMap<&[usize], usize> = HashMap::new();
    for c in &combos {
        *freq.entry(c.as_slice()).or_insert(0) += 1;
    }

    for (i, combo) in combos.iter().enumerate() {
        let mut row: Vec<Value> = Vec::with_capacity(attrs.len());
        row.push(Value::Int(100_000 + i as i64)); // Id
        for ((_, domain), &vi) in qis.iter().zip(combo.iter()) {
            if vi < domain.len() {
                row.push(Value::str(domain[vi]));
            } else {
                // rare variant: a specialization of a base value
                let base = domain[vi % domain.len()];
                row.push(Value::str(format!("{base}·r{}", vi - domain.len())));
            }
        }
        // Growth: non-identifying numeric payload
        row.push(Value::Int(rng.gen_range(-30..300)));
        // Weight: population look-alikes. Regular rows: sample frequency ×
        // scale with multiplicative noise. Outliers: their combination is
        // rare in the *population* too, so the weight is 1–2 — which is
        // what makes them dangerous under the individual-risk posterior
        // (p̂ = f/Σw near 1).
        let w = if is_outlier[i] {
            rng.gen_range(1..=2) as f64
        } else {
            let f = freq[combo.as_slice()] as f64;
            let noise = 0.5 + rng.gen_range(0.0..1.0);
            (f * pop_scale * noise).round().max(2.0)
        };
        row.push(Value::Int(w as i64));
        db.push_row(row).expect("arity matches schema");
    }

    // --- dictionary ---
    let mut dict = MetadataDictionary::new();
    dict.register_attr(&spec.name, "Id", "Synthetic company identifier");
    dict.set_category(&spec.name, "Id", Category::Identifier)
        .expect("registered");
    for (n, _) in &qis {
        dict.register_attr(&spec.name, *n, "Synthetic survey attribute");
        dict.set_category(&spec.name, n, Category::QuasiIdentifier)
            .expect("registered");
    }
    dict.register_attr(&spec.name, "Growth", "Revenue growth, last 6 months");
    dict.set_category(&spec.name, "Growth", Category::NonIdentifying)
        .expect("registered");
    dict.register_attr(&spec.name, "Weight", "Sampling weight");
    dict.set_category(&spec.name, "Weight", Category::Weight)
        .expect("registered");

    (db, dict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::maybe_match::NullSemantics;
    use vadasa_core::risk::MicrodataView;

    fn uniques(db: &MicrodataDb, dict: &MetadataDictionary) -> usize {
        let view = MicrodataView::from_db_with(db, dict, NullSemantics::Standard, None).unwrap();
        let stats = view.group_stats_with(None, NullSemantics::Standard);
        stats.count.iter().filter(|&&c| c == 1).count()
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::new(2000, 4, Regime::U);
        let (a, _) = generate(&spec, 7);
        let (b, _) = generate(&spec, 7);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.row(i).unwrap(), b.row(i).unwrap());
        }
        let (c, _) = generate(&spec, 8);
        let differs = (0..a.len()).any(|i| a.row(i).unwrap() != c.row(i).unwrap());
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn spec_parse_roundtrips_names() {
        for name in ["R6A4U", "R25A4W", "R50A9W", "R100A4U", "R3A2V"] {
            let spec = DatasetSpec::parse(name).unwrap();
            assert_eq!(spec.name, name);
        }
        for bad in ["X25A4W", "R25A4Z", "R25B4W", "RA4W", "R25A99W", "R0A4W", ""] {
            assert!(DatasetSpec::parse(bad).is_none(), "{bad} should not parse");
        }
    }

    #[test]
    fn spec_names_follow_figure6_convention() {
        assert_eq!(DatasetSpec::new(25_000, 4, Regime::W).name, "R25A4W");
        assert_eq!(DatasetSpec::new(100_000, 4, Regime::U).name, "R100A4U");
        assert_eq!(DatasetSpec::new(50_000, 9, Regime::W).name, "R50A9W");
    }

    #[test]
    fn regimes_order_risky_tuples() {
        // more unbalanced ⇒ more sample uniques, at equal size
        let n = 5000;
        let w = {
            let (db, dict) = generate(&DatasetSpec::new(n, 4, Regime::W), 42);
            uniques(&db, &dict)
        };
        let u = {
            let (db, dict) = generate(&DatasetSpec::new(n, 4, Regime::U), 42);
            uniques(&db, &dict)
        };
        let v = {
            let (db, dict) = generate(&DatasetSpec::new(n, 4, Regime::V), 42);
            uniques(&db, &dict)
        };
        assert!(w < u, "W={w} should have fewer uniques than U={u}");
        assert!(u < v, "U={u} should have fewer uniques than V={v}");
        // and W is genuinely mild
        assert!(w <= n / 100, "W regime too risky: {w} uniques in {n}");
    }

    #[test]
    fn weights_are_positive_and_weight_column_numeric() {
        let (db, dict) = generate(&DatasetSpec::new(1000, 5, Regime::V), 3);
        let w = db.numeric_column("Weight").unwrap();
        assert!(w.iter().all(|&x| x >= 1.0));
        // non-outlier rows keep the >= 2 floor, so some weights are larger
        assert!(w.iter().any(|&x| x >= 2.0));
        assert_eq!(dict.weight_attr(&db.name).unwrap(), "Weight");
        assert_eq!(dict.quasi_identifiers(&db.name).unwrap().len(), 5);
    }

    #[test]
    fn qi_width_matches_spec() {
        for width in [4usize, 6, 9] {
            let (db, dict) = generate(&DatasetSpec::new(500, width, Regime::W), 1);
            assert_eq!(dict.quasi_identifiers(&db.name).unwrap().len(), width);
            assert_eq!(db.attributes().len(), width + 3); // Id, Growth, Weight
        }
    }

    #[test]
    #[should_panic(expected = "qi_count")]
    fn too_many_qis_panics() {
        DatasetSpec::new(10, 99, Regime::W);
    }
}
