//! Household microdata generation (paper §4.4 / Hundepool et al. \[26\]).
//!
//! Risk propagation over linked respondents is not only about company
//! groups: "finding members of the same family" is the paper's other
//! canonical link type, and the SDC literature treats household risk as
//! the probability that *any* member of the household is re-identified.
//! This generator produces a person-level survey where rows carry a
//! household identifier, plus the `rel(X, Y)` link facts connecting
//! members — ready for [`ClusterRisk`](vadasa_core::business::ClusterRisk).

use crate::domains::AREAS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::Value;
use vadasa_core::business::ClusterMap;
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::model::MicrodataDb;

/// Age bands used for household members.
const AGE_BANDS: &[&str] = &["0-17", "18-34", "35-49", "50-64", "65+"];

/// Occupations (head-of-household skewed).
const OCCUPATIONS: &[&str] = &[
    "employee",
    "self-employed",
    "retired",
    "student",
    "homemaker",
    "unemployed",
    "manager",
    "farmer",
];

/// A generated household survey: the person-level microdata plus the
/// household membership structure.
#[derive(Debug)]
pub struct HouseholdSurvey {
    /// Person-level microdata (`PersonId`, QIs…, `Weight`).
    pub db: MicrodataDb,
    /// Categorized dictionary for `db`.
    pub dict: MetadataDictionary,
    /// Row indices grouped by household.
    pub households: Vec<Vec<usize>>,
}

impl HouseholdSurvey {
    /// Row → household cluster map for [`ClusterRisk`](vadasa_core::business::ClusterRisk).
    pub fn cluster_map(&self) -> ClusterMap {
        let mut row_cluster = vec![0usize; self.db.len()];
        for (h, members) in self.households.iter().enumerate() {
            for &m in members {
                row_cluster[m] = h;
            }
        }
        ClusterMap {
            row_cluster,
            cluster_count: self.households.len(),
        }
    }
}

/// Generate a survey of `household_count` households (1–6 members each).
/// Members of one household share the area — which is what makes household
/// linkage dangerous: re-identifying the head (often a distinctive
/// occupation/age combination) exposes everyone at the same address.
pub fn generate_households(household_count: usize, seed: u64) -> HouseholdSurvey {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4055_E401D);
    let mut db = MicrodataDb::new(
        "household-survey",
        [
            "PersonId",
            "Area",
            "AgeBand",
            "Occupation",
            "HouseholdSize",
            "Weight",
        ],
    )
    .expect("schema");
    let mut households = Vec::with_capacity(household_count);
    let mut person = 0i64;

    for _ in 0..household_count {
        let size = 1 + rng.gen_range(0..6usize).min(rng.gen_range(0..6)); // skew small
        let size = size.max(1);
        let area = AREAS[rng.gen_range(0..AREAS.len())];
        let mut members = Vec::with_capacity(size);
        for m in 0..size {
            person += 1;
            // the head (m == 0) gets an adult age band and any occupation;
            // later members skew younger
            let age = if m == 0 {
                AGE_BANDS[1 + rng.gen_range(0..4usize)]
            } else {
                AGE_BANDS[rng.gen_range(0..AGE_BANDS.len())]
            };
            let occupation = if m == 0 && rng.gen_bool(0.02) {
                "lighthouse-keeper" // a rare, risky occupation
            } else {
                OCCUPATIONS[rng.gen_range(0..OCCUPATIONS.len())]
            };
            let weight = rng.gen_range(20..200);
            let row = db
                .push_row(vec![
                    Value::Int(person),
                    Value::str(area),
                    Value::str(age),
                    Value::str(occupation),
                    Value::Int(size as i64),
                    Value::Int(weight),
                ])
                .expect("row");
            members.push(row);
        }
        households.push(members);
    }

    let mut dict = MetadataDictionary::new();
    let name = db.name.clone();
    dict.register_attr(&name, "PersonId", "Person identifier");
    dict.set_category(&name, "PersonId", Category::Identifier)
        .expect("registered");
    for a in ["Area", "AgeBand", "Occupation", "HouseholdSize"] {
        dict.register_attr(&name, a, "Household survey attribute");
        dict.set_category(&name, a, Category::QuasiIdentifier)
            .expect("registered");
    }
    dict.register_attr(&name, "Weight", "Sampling weight");
    dict.set_category(&name, "Weight", Category::Weight)
        .expect("registered");

    HouseholdSurvey {
        db,
        dict,
        households,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::business::ClusterRisk;
    use vadasa_core::prelude::*;

    #[test]
    fn households_partition_the_rows() {
        let survey = generate_households(100, 9);
        let total: usize = survey.households.iter().map(|h| h.len()).sum();
        assert_eq!(total, survey.db.len());
        let map = survey.cluster_map();
        assert_eq!(map.cluster_count, 100);
        assert_eq!(map.row_cluster.len(), survey.db.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_households(50, 3);
        let b = generate_households(50, 3);
        assert_eq!(a.db.len(), b.db.len());
        for i in 0..a.db.len() {
            assert_eq!(a.db.row(i).unwrap(), b.db.row(i).unwrap());
        }
    }

    #[test]
    fn household_risk_lifts_whole_families() {
        let survey = generate_households(400, 7);
        let base = KAnonymity::new(2);
        let view = MicrodataView::from_db(&survey.db, &survey.dict).unwrap();
        let solo = base.evaluate(&view).unwrap();
        let wrapped = ClusterRisk::new(&base, survey.cluster_map());
        let lifted = wrapped.evaluate(&view).unwrap();

        // risk only goes up, never down
        for (s, l) in solo.risks.iter().zip(lifted.risks.iter()) {
            assert!(l >= s);
        }
        // at least one household has a risky member whose family gets lifted
        let mut lifted_extra = 0usize;
        for members in &survey.households {
            let any_risky = members.iter().any(|&m| solo.risks[m] > 0.5);
            if any_risky {
                for &m in members {
                    assert!(lifted.risks[m] > 0.5, "member {m} should inherit risk");
                    if solo.risks[m] <= 0.5 {
                        lifted_extra += 1;
                    }
                }
            }
        }
        assert!(
            lifted_extra > 0,
            "some safe member should be exposed through their household"
        );
    }

    #[test]
    fn household_cycle_converges() {
        let survey = generate_households(200, 11);
        let base = KAnonymity::new(2);
        let risk = ClusterRisk::new(&base, survey.cluster_map());
        let anonymizer = LocalSuppression::default();
        let out = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default())
            .run(&survey.db, &survey.dict)
            .unwrap();
        assert_eq!(out.final_risky, 0);
    }
}
