//! # vadasa-datagen — synthetic microdata for the Vada-SA reproduction
//!
//! The paper evaluates Vada-SA on Bank of Italy survey data (proprietary)
//! plus synthetic datasets. This crate substitutes both with controlled
//! synthesis (see DESIGN.md):
//!
//! - [`fixtures`] — the exact Figure 1 (Inflation & Growth fragment) and
//!   Figure 5a tables transcribed from the paper;
//! - [`generator`] — the W/U/V distribution regimes, a mixture model over
//!   quasi-identifier combination frequencies;
//! - [`catalog`] — the twelve named datasets of Figure 6 (`R6A4U` …
//!   `R100A4U`), deterministically seeded;
//! - [`oracle`] — identity-oracle simulation honouring sampling weights,
//!   for the record-linkage attack experiments;
//! - [`domains`] — the survey attribute vocabulary.

#![warn(missing_docs)]

pub mod catalog;
pub mod domains;
pub mod fixtures;
pub mod generator;
pub mod households;
pub mod oracle;
pub mod scale;

pub use catalog::{by_name, figure6_specs, CATALOG_SEED};
pub use fixtures::{inflation_growth_fig1, local_suppression_fig5a};
pub use generator::{generate, DatasetSpec, Regime};
pub use households::{generate_households, HouseholdSurvey};
pub use oracle::{IdentityOracle, OracleRecord};
pub use scale::{generate_scale, ScaleSpec};
