//! Identity-oracle simulation (paper §2.1).
//!
//! The re-identification model assumes an external database — the *identity
//! oracle* `O(i′, q′, I)` — holding the identities of all respondents. The
//! paper cannot ship the real one; this module synthesizes it from a
//! microdata sample, honouring the semantics of sampling weights: a tuple
//! of weight `W_t` has (approximately) `W_t` population look-alikes sharing
//! its quasi-identifier combination, of which the respondent itself is one.
//!
//! The oracle powers the record-linkage attacker in `vadasa-linkage` and
//! the weight-estimation path of `vadasa-core::weights`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::Value;
use vadasa_core::dictionary::MetadataDictionary;
use vadasa_core::model::MicrodataDb;

/// One oracle record: direct identifier, quasi-identifier values, identity.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleRecord {
    /// Direct identifier (matches the microdata's `Id` for respondents).
    pub id: Value,
    /// Quasi-identifier values, same order as the microdata view.
    pub qi: Vec<Value>,
    /// The respondent's universally recognized identity.
    pub identity: String,
}

/// A simulated identity oracle.
#[derive(Debug, Clone, Default)]
pub struct IdentityOracle {
    /// All records (respondents first, then background population).
    pub records: Vec<OracleRecord>,
    /// Names of the quasi-identifier columns.
    pub qi_names: Vec<String>,
}

impl IdentityOracle {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the oracle empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Projected quasi-identifier matrix of the oracle.
    pub fn qi_matrix(&self) -> Vec<Vec<Value>> {
        self.records.iter().map(|r| r.qi.clone()).collect()
    }

    /// Build an oracle from a microdata DB: every sample row becomes a
    /// respondent record (with its true `Id` and a synthetic identity), and
    /// for each row `round(weight) − 1` background look-alikes with the
    /// same quasi-identifiers but different identities are added, capped at
    /// `max_lookalikes` per row.
    pub fn from_microdata(
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        id_attr: &str,
        seed: u64,
        max_lookalikes: usize,
    ) -> Result<Self, vadasa_core::risk::RiskError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0AC1_E000);
        let qi_names = dict.quasi_identifiers(&db.name)?;
        let qi_rows = db
            .project(&qi_names)
            .map_err(vadasa_core::risk::RiskError::Model)?;
        let weight_attr = dict.weight_attr(&db.name).ok();
        let weights: Option<Vec<f64>> = match &weight_attr {
            Some(w) => Some(
                db.numeric_column(w)
                    .map_err(vadasa_core::risk::RiskError::Model)?,
            ),
            None => None,
        };
        let ids = db
            .column(id_attr)
            .map_err(vadasa_core::risk::RiskError::Model)?;

        let mut records = Vec::new();
        let mut identity_counter = 0u64;
        for i in 0..qi_rows.len() {
            let qi: Vec<Value> = qi_rows.row(i).into_iter().cloned().collect();
            identity_counter += 1;
            records.push(OracleRecord {
                id: ids[i].clone(),
                qi: qi.clone(),
                identity: format!("IDENT-{identity_counter:08}"),
            });
            let w: f64 = weights.as_ref().map(|w| w[i]).unwrap_or(1.0);
            let lookalikes = ((w.round() as usize).saturating_sub(1)).min(max_lookalikes);
            for _ in 0..lookalikes {
                identity_counter += 1;
                records.push(OracleRecord {
                    id: Value::Int(-(identity_counter as i64)), // not in the sample
                    qi: qi.clone(),
                    identity: format!("IDENT-{identity_counter:08}"),
                });
            }
        }
        // light shuffle so respondents are not trivially first in a block
        for i in (1..records.len()).rev() {
            let j = rng.gen_range(0..=i);
            records.swap(i, j);
        }
        Ok(IdentityOracle { records, qi_names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::inflation_growth_fig1;

    #[test]
    fn oracle_expands_by_weights() {
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 9, 1_000).unwrap();
        // total ≈ sum of weights (capped) — Figure 1 weights sum to 2822
        let expected: f64 = db.numeric_column("Weight").unwrap().iter().sum();
        assert_eq!(oracle.len() as f64, expected);
        assert_eq!(oracle.qi_names.len(), 5);
    }

    #[test]
    fn every_sample_row_is_represented() {
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 9, 10).unwrap();
        for i in 0..db.len() {
            let id = db.value(i, "Id").unwrap();
            assert!(
                oracle.records.iter().any(|r| r.id == *id),
                "sample row {i} missing from oracle"
            );
        }
    }

    #[test]
    fn lookalike_cap_is_respected() {
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 9, 3).unwrap();
        // each of 20 rows contributes at most 1 + 3 records
        assert!(oracle.len() <= 20 * 4);
    }

    #[test]
    fn identities_are_unique() {
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 9, 50).unwrap();
        let set: std::collections::HashSet<&str> =
            oracle.records.iter().map(|r| r.identity.as_str()).collect();
        assert_eq!(set.len(), oracle.len());
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let (db, dict) = inflation_growth_fig1();
        let a = IdentityOracle::from_microdata(&db, &dict, "Id", 9, 10).unwrap();
        let b = IdentityOracle::from_microdata(&db, &dict, "Id", 9, 10).unwrap();
        assert_eq!(a.records, b.records);
    }
}
