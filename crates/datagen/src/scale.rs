//! Streaming million-row generation for the `cycle.scale` benchmarks.
//!
//! The Figure 6 generator ([`crate::generator`]) materializes an
//! intermediate combination table and then takes a frequency pass to
//! synthesize weights — fine at 100k rows, wasteful at 10^6. This regime
//! streams rows straight into the [`MicrodataDb`]: equivalence-class sizes
//! are fixed up front in a small ledger (heavy-tailed, harmonic decay with
//! a floor of 3), so each row's weight is known analytically and no
//! whole-table clone or second pass ever happens.
//!
//! The risk structure is deliberately simple and *scale-independent*:
//!
//! - **heavy classes** — every non-risky row belongs to a class of size
//!   ≥ 3, so it is safe under k-anonymity with `k = 2`;
//! - **risky singletons** — `risky` rows (default 256) are each
//!   sample-unique: they copy a heavy *donor* class on three of the four
//!   quasi-identifiers and carry a globally unique rare value in the
//!   first column. Suppressing that one cell maybe-matches the row into
//!   its donor class, so exactly one suppression defuses each singleton.
//!
//! That makes the dataset an honest yardstick for the batched cycle: the
//! one-tuple path needs `risky` full risk evaluations, while the batched
//! path clears the same table in a handful of iterations — the work ratio
//! is the heuristic overhead, not an artifact of the data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vadalog::Value;
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::model::MicrodataDb;

/// Quasi-identifier columns of the scale regime.
pub const SCALE_QI_NAMES: [&str; 4] = ["Area", "Sector", "Employees", "ResRev"];

/// Distinct base values per quasi-identifier column (prime, so mixed-radix
/// class digits spread evenly); the combination space is `97^4 ≈ 8.9·10^7`,
/// far above any realistic class count.
const CARD: usize = 97;

/// Population look-alikes per sample row in a heavy class.
const POP_SCALE: usize = 10;

/// A scale-regime specification.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Total number of rows to stream.
    pub rows: usize,
    /// Number of risky sample-unique singletons among them.
    pub risky: usize,
    /// Deterministic seed (only the non-identifying payload is random).
    pub seed: u64,
}

impl ScaleSpec {
    /// Default spec: 256 risky singletons (fewer on tiny tables).
    pub fn new(rows: usize) -> Self {
        ScaleSpec {
            rows,
            risky: 256.min(rows / 64).max(1),
            seed: 0x5CA1_AB1E,
        }
    }
}

/// Mixed-radix digits of a class index: four column-value indices,
/// distinct for every `k < CARD^4`. The index is first scrambled by a
/// multiplier coprime to `CARD^4` (a bijection on the combination space)
/// so consecutive classes differ in *every* column — without it, classes
/// 0..96 would all share the last three digits and a suppressed singleton
/// would maybe-match siblings from other donors.
fn class_digits(k: usize) -> [usize; 4] {
    const SPACE: usize = CARD * CARD * CARD * CARD;
    let k = k.wrapping_mul(48_271) % SPACE;
    [
        k % CARD,
        (k / CARD) % CARD,
        (k / (CARD * CARD)) % CARD,
        (k / (CARD * CARD * CARD)) % CARD,
    ]
}

/// Stream a heavy-tailed table with `spec.risky` sample-unique rows.
///
/// Deterministic for a given spec; runs in O(rows) time and O(classes)
/// auxiliary memory (the class-size ledger and the per-column value pools).
pub fn generate_scale(spec: &ScaleSpec) -> (MicrodataDb, MetadataDictionary) {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x05CA_1E00);
    let name = format!("S{}k", spec.rows / 1000);
    let mut attrs: Vec<String> = vec!["Id".to_string()];
    attrs.extend(SCALE_QI_NAMES.iter().map(|n| n.to_string()));
    attrs.push("Growth".to_string());
    attrs.push("Weight".to_string());
    let mut db = MicrodataDb::new(&name, attrs).expect("unique attr names");

    // class ledger: harmonic sizes with a floor of 3, absorbing the tail
    // so no heavy class ends up accidentally risky
    let normal_rows = spec.rows.saturating_sub(spec.risky);
    let base = (normal_rows / 20).max(3);
    let mut class_sizes: Vec<usize> = Vec::new();
    let mut remaining = normal_rows;
    while remaining > 0 {
        let mut size = (base / (class_sizes.len() + 1)).max(3);
        if size + 3 > remaining {
            size = remaining;
        }
        class_sizes.push(size);
        remaining -= size;
    }

    // per-column value pools, cloned per cell (no per-row formatting)
    let pools: Vec<Vec<Value>> = SCALE_QI_NAMES
        .iter()
        .map(|col| {
            (0..CARD)
                .map(|d| Value::str(format!("{col}-{d}")))
                .collect()
        })
        .collect();

    let risky_interval = (spec.rows / spec.risky.max(1)).max(1);
    let mut risky_emitted = 0usize;
    let mut row_id = 0usize;
    for (class, &size) in class_sizes.iter().enumerate() {
        let digits = class_digits(class);
        for _ in 0..size {
            let mut row: Vec<Value> = Vec::with_capacity(7);
            row.push(Value::Int(100_000 + row_id as i64));
            for (c, &d) in digits.iter().enumerate() {
                row.push(pools[c][d].clone());
            }
            row.push(Value::Int(rng.gen_range(-30..300)));
            row.push(Value::Int((size * POP_SCALE) as i64));
            db.push_row(row).expect("arity matches schema");
            row_id += 1;
        }
        // interleave risky singletons so they are spread through the
        // stream rather than clustered at the end
        while risky_emitted < spec.risky
            && (row_id + risky_emitted) >= (risky_emitted + 1) * risky_interval
        {
            let donor = risky_emitted % class_sizes.len();
            let digits = class_digits(donor);
            let mut row: Vec<Value> = Vec::with_capacity(7);
            row.push(Value::Int(900_000_000 + risky_emitted as i64));
            row.push(Value::str(format!("Rare-{risky_emitted}")));
            for (c, &d) in digits.iter().enumerate().skip(1) {
                row.push(pools[c][d].clone());
            }
            row.push(Value::Int(0));
            row.push(Value::Int(1));
            db.push_row(row).expect("arity matches schema");
            risky_emitted += 1;
        }
    }
    // any singletons the interleaving did not reach (tiny tables)
    while risky_emitted < spec.risky {
        let donor = risky_emitted % class_sizes.len().max(1);
        let digits = class_digits(donor);
        let mut row: Vec<Value> = Vec::with_capacity(7);
        row.push(Value::Int(900_000_000 + risky_emitted as i64));
        row.push(Value::str(format!("Rare-{risky_emitted}")));
        for (c, &d) in digits.iter().enumerate().skip(1) {
            row.push(pools[c][d].clone());
        }
        row.push(Value::Int(0));
        row.push(Value::Int(1));
        db.push_row(row).expect("arity matches schema");
        risky_emitted += 1;
    }

    let mut dict = MetadataDictionary::new();
    dict.register_attr(&name, "Id", "Synthetic company identifier");
    dict.set_category(&name, "Id", Category::Identifier)
        .expect("registered");
    for col in SCALE_QI_NAMES {
        dict.register_attr(&name, col, "Synthetic survey attribute");
        dict.set_category(&name, col, Category::QuasiIdentifier)
            .expect("registered");
    }
    dict.register_attr(&name, "Growth", "Revenue growth, last 6 months");
    dict.set_category(&name, "Growth", Category::NonIdentifying)
        .expect("registered");
    dict.register_attr(&name, "Weight", "Sampling weight");
    dict.set_category(&name, "Weight", Category::Weight)
        .expect("registered");

    (db, dict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::maybe_match::NullSemantics;
    use vadasa_core::prelude::*;
    use vadasa_core::risk::MicrodataView;

    #[test]
    fn generation_is_deterministic() {
        let spec = ScaleSpec::new(5_000);
        let (a, _) = generate_scale(&spec);
        let (b, _) = generate_scale(&spec);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.row(i).unwrap(), b.row(i).unwrap());
        }
    }

    #[test]
    fn sample_uniques_are_exactly_the_risky_singletons() {
        let spec = ScaleSpec {
            rows: 20_000,
            risky: 16,
            seed: 1,
        };
        let (db, dict) = generate_scale(&spec);
        assert_eq!(db.len(), 20_000);
        let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
        let stats = view.group_stats_with(None, NullSemantics::Standard);
        let uniques = stats.count.iter().filter(|&&c| c == 1).count();
        assert_eq!(uniques, 16);
        // every non-risky row sits in a class of size >= 3
        assert!(stats.count.iter().all(|&c| c == 1 || c >= 3));
    }

    #[test]
    fn weights_are_integral_and_positive() {
        let (db, _) = generate_scale(&ScaleSpec::new(3_000));
        let w = db.numeric_column("Weight").unwrap();
        assert!(w.iter().all(|&x| x >= 1.0 && x.fract() == 0.0));
    }

    #[test]
    fn one_suppression_defuses_each_singleton() {
        let spec = ScaleSpec {
            rows: 5_000,
            risky: 8,
            seed: 2,
        };
        let (db, dict) = generate_scale(&spec);
        let risk = KAnonymity::new(2);
        let anonymizer = LocalSuppression::new(AttributeOrder::SchemaOrder);
        let config = CycleConfig {
            threshold: 0.5,
            ..CycleConfig::default()
        };
        let outcome = AnonymizationCycle::new(&risk, &anonymizer, config)
            .run(&db, &dict)
            .unwrap();
        assert_eq!(outcome.final_risky, 0);
        assert_eq!(outcome.nulls_injected, 8, "one suppression per singleton");
    }
}
