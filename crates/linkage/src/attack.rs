//! The end-to-end re-identification attack (paper §2.2, Figure 2).
//!
//! For each microdata tuple: **block** the oracle on the quasi-identifier
//! values, **match** within the block, and return the best guess with a
//! confidence score. The attack on a candidate set of size `c` containing
//! the true respondent succeeds with probability `1/c` (the matcher has no
//! further signal once non-identifying attributes are excluded from the
//! release), which is exactly the re-identification risk model the paper
//! builds on — so the simulator doubles as an empirical validation of the
//! risk measures: anonymization should push success probabilities down.

use crate::blocking::BlockingIndex;
use vadalog::Value;
use vadasa_core::dictionary::MetadataDictionary;
use vadasa_core::model::MicrodataDb;
use vadasa_core::risk::RiskError;
use vadasa_datagen::oracle::IdentityOracle;

/// The attack's verdict on one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleAttack {
    /// Target row index in the microdata DB.
    pub row: usize,
    /// Candidate-set size after blocking.
    pub candidates: usize,
    /// The guessed identity (a uniform pick is modelled by taking the
    /// first candidate; the success probability accounts for uniformity).
    pub guessed_identity: Option<String>,
    /// Probability that a uniform guess over the block hits the true
    /// respondent: `1/candidates` if the respondent is in the block, 0
    /// otherwise.
    pub success_probability: f64,
    /// Whether the block pinned the respondent uniquely.
    pub certain: bool,
}

/// Aggregate attack statistics over a whole microdata DB.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Per-tuple verdicts, in row order.
    pub tuples: Vec<TupleAttack>,
    /// Mean success probability.
    pub mean_success: f64,
    /// Number of tuples re-identified with certainty (block size 1 and
    /// respondent inside).
    pub certain_reidentifications: usize,
    /// Median candidate-set size.
    pub median_block_size: usize,
}

/// Run the attack: for every microdata row, block the oracle on the QI
/// values (null-tolerant) and score the guess. `id_attr` names the direct
/// identifier used to decide whether the true respondent is in the block.
pub fn attack(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    oracle: &IdentityOracle,
    id_attr: &str,
) -> Result<AttackReport, RiskError> {
    let qi_names = dict.quasi_identifiers(&db.name)?;
    if qi_names != oracle.qi_names {
        return Err(RiskError::View(format!(
            "oracle quasi-identifiers {:?} do not match microdata {:?}",
            oracle.qi_names, qi_names
        )));
    }
    let qi_rows = db.project(&qi_names).map_err(RiskError::Model)?;
    let ids = db.column(id_attr).map_err(RiskError::Model)?;

    let mut index = BlockingIndex::new(oracle);
    let mut tuples = Vec::with_capacity(db.len());
    let mut block_sizes = Vec::with_capacity(db.len());
    let mut total_success = 0.0f64;
    let mut certain = 0usize;

    for (row, target) in qi_rows.iter_rows().enumerate() {
        let target: Vec<Value> = target.into_iter().cloned().collect();
        let block = index.candidates(&target);
        let respondent_inside = block.iter().any(|&i| oracle.records[i].id == *ids[row]);
        let success = if respondent_inside && !block.is_empty() {
            1.0 / block.len() as f64
        } else {
            0.0
        };
        let is_certain = respondent_inside && block.len() == 1;
        if is_certain {
            certain += 1;
        }
        total_success += success;
        block_sizes.push(block.len());
        tuples.push(TupleAttack {
            row,
            candidates: block.len(),
            guessed_identity: block.first().map(|&i| oracle.records[i].identity.clone()),
            success_probability: success,
            certain: is_certain,
        });
    }

    block_sizes.sort_unstable();
    let median_block_size = if block_sizes.is_empty() {
        0
    } else {
        block_sizes[block_sizes.len() / 2]
    };
    let mean_success = if tuples.is_empty() {
        0.0
    } else {
        total_success / tuples.len() as f64
    };
    Ok(AttackReport {
        tuples,
        mean_success,
        certain_reidentifications: certain,
        median_block_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::prelude::*;
    use vadasa_datagen::fixtures::inflation_growth_fig1;
    use vadasa_datagen::oracle::IdentityOracle;

    fn setup() -> (MicrodataDb, MetadataDictionary, IdentityOracle) {
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 7, 400).unwrap();
        (db, dict, oracle)
    }

    #[test]
    fn success_probability_is_reciprocal_weight() {
        // Each Figure 1 tuple is sample-unique on the 5 QIs and the oracle
        // holds `weight` look-alikes, so the attack succeeds with 1/W.
        let (db, dict, oracle) = setup();
        let report = attack(&db, &dict, &oracle, "Id").unwrap();
        let weights = db.numeric_column("Weight").unwrap();
        for (t, w) in report.tuples.iter().zip(weights.iter()) {
            assert_eq!(t.candidates as f64, *w);
            assert!((t.success_probability - 1.0 / w).abs() < 1e-12);
        }
        assert_eq!(report.certain_reidentifications, 0);
    }

    #[test]
    fn suppression_reduces_attack_success() {
        let (db, dict, oracle) = setup();
        let before = attack(&db, &dict, &oracle, "Id").unwrap();

        // anonymize with local suppression against re-identification risk
        let risk = ReIdentification;
        let anonymizer = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(
            &risk,
            &anonymizer,
            CycleConfig {
                threshold: 0.02, // flag the weight-30 and weight-50 tuples
                ..CycleConfig::default()
            },
        );
        let outcome = cycle.run(&db, &dict).unwrap();
        assert!(outcome.nulls_injected > 0);

        let after = attack(&outcome.db, &dict, &oracle, "Id").unwrap();
        assert!(
            after.mean_success < before.mean_success,
            "attack got easier: {} -> {}",
            before.mean_success,
            after.mean_success
        );
        assert!(after.median_block_size >= before.median_block_size);
    }

    #[test]
    fn certain_reidentification_without_lookalikes() {
        // an oracle with zero look-alikes pins every tuple exactly
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 7, 0).unwrap();
        let report = attack(&db, &dict, &oracle, "Id").unwrap();
        assert_eq!(report.certain_reidentifications, db.len());
        assert!((report.mean_success - 1.0).abs() < 1e-12);
        assert_eq!(report.median_block_size, 1);
    }

    #[test]
    fn mismatched_oracle_schema_is_an_error() {
        let (db, dict, _) = setup();
        let bad = IdentityOracle {
            records: vec![],
            qi_names: vec!["Other".into()],
        };
        assert!(attack(&db, &dict, &bad, "Id").is_err());
    }
}
