//! Blocking: restrict the cohort of candidate matches (paper §2.2, step 1
//! of the attack strategy).
//!
//! Given a target tuple from the (possibly anonymized) microdata DB, the
//! attacker filters the identity oracle down to the records that agree
//! with the target on every quasi-identifier. A labelled null in the
//! target matches anything — precisely why local suppression makes
//! blocking ineffective: the candidate cluster blows up, and "with large
//! clusters, exhaustive comparison is both computationally expensive and
//! yields an overly uncertain result".

use std::collections::HashMap;
use vadalog::Value;
use vadasa_datagen::oracle::IdentityOracle;

/// An index over the oracle for fast candidate retrieval.
pub struct BlockingIndex<'a> {
    oracle: &'a IdentityOracle,
    /// per null-mask index: constant positions → (key → record indices)
    masked: HashMap<u64, HashMap<Vec<Value>, Vec<usize>>>,
    width: usize,
}

impl<'a> BlockingIndex<'a> {
    /// Build an (initially empty) index over the oracle.
    pub fn new(oracle: &'a IdentityOracle) -> Self {
        let width = oracle.qi_names.len();
        BlockingIndex {
            oracle,
            masked: HashMap::new(),
            width,
        }
    }

    /// Candidate record indices matching `target` on its non-null
    /// quasi-identifiers. An all-null target matches the whole oracle.
    pub fn candidates(&mut self, target: &[Value]) -> Vec<usize> {
        assert_eq!(target.len(), self.width, "target arity mismatch");
        let mut mask = 0u64;
        for (c, v) in target.iter().enumerate() {
            if v.is_null() {
                mask |= 1 << c;
            }
        }
        if mask == (1u64 << self.width) - 1 && self.width > 0 {
            return (0..self.oracle.len()).collect();
        }
        let width = self.width;
        let oracle = self.oracle;
        let index = self.masked.entry(mask).or_insert_with(|| {
            let const_cols: Vec<usize> = (0..width).filter(|c| mask & (1 << c) == 0).collect();
            let mut idx: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, rec) in oracle.records.iter().enumerate() {
                let key: Vec<Value> = const_cols.iter().map(|&c| rec.qi[c].clone()).collect();
                idx.entry(key).or_default().push(i);
            }
            idx
        });
        let const_cols: Vec<usize> = (0..width).filter(|c| mask & (1 << c) == 0).collect();
        let key: Vec<Value> = const_cols.iter().map(|&c| target[c].clone()).collect();
        index.get(&key).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_datagen::oracle::OracleRecord;

    fn oracle() -> IdentityOracle {
        let mk = |id: i64, qi: &[&str], ident: &str| OracleRecord {
            id: Value::Int(id),
            qi: qi.iter().map(Value::str).collect(),
            identity: ident.to_string(),
        };
        IdentityOracle {
            records: vec![
                mk(1, &["North", "Textiles"], "A"),
                mk(2, &["North", "Commerce"], "B"),
                mk(3, &["North", "Commerce"], "C"),
                mk(4, &["South", "Textiles"], "D"),
            ],
            qi_names: vec!["Area".into(), "Sector".into()],
        }
    }

    #[test]
    fn exact_blocking_selects_matching_records() {
        let o = oracle();
        let mut idx = BlockingIndex::new(&o);
        let c = idx.candidates(&[Value::str("North"), Value::str("Commerce")]);
        assert_eq!(c.len(), 2);
        let c = idx.candidates(&[Value::str("North"), Value::str("Textiles")]);
        assert_eq!(c.len(), 1);
        let c = idx.candidates(&[Value::str("East"), Value::str("Textiles")]);
        assert!(c.is_empty());
    }

    #[test]
    fn null_in_target_widens_the_block() {
        let o = oracle();
        let mut idx = BlockingIndex::new(&o);
        let c = idx.candidates(&[Value::str("North"), Value::Null(0)]);
        assert_eq!(c.len(), 3);
        let c = idx.candidates(&[Value::Null(0), Value::str("Textiles")]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn all_null_target_matches_everything() {
        let o = oracle();
        let mut idx = BlockingIndex::new(&o);
        let c = idx.candidates(&[Value::Null(0), Value::Null(1)]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let o = oracle();
        let mut idx = BlockingIndex::new(&o);
        idx.candidates(&[Value::str("North")]);
    }
}
