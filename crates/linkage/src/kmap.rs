//! k-map estimation: population-side anonymity against the identity
//! oracle.
//!
//! k-anonymity counts look-alikes *within the sample*; what actually
//! protects a respondent is the number of look-alikes in the **population**
//! the attacker searches — the k-map criterion. The sampling weight is the
//! paper's *estimator* of that count (§2.2: "the sampling weight W_t is an
//! estimator for the cardinality of the join |σ_t(M) ⋈ O|"); with the
//! simulated oracle in hand we can compute the true join cardinality and
//! quantify how good the estimate is.

use crate::blocking::BlockingIndex;
use vadalog::Value;
use vadasa_core::dictionary::MetadataDictionary;
use vadasa_core::model::MicrodataDb;
use vadasa_core::risk::RiskError;
use vadasa_datagen::oracle::IdentityOracle;

/// Per-tuple population frequencies and the k-map verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct KMapReport {
    /// For each microdata row, the number of oracle records matching its
    /// quasi-identifiers (null-tolerantly).
    pub population_frequencies: Vec<usize>,
}

impl KMapReport {
    /// Rows with fewer than `k` population look-alikes.
    pub fn violations(&self, k: usize) -> Vec<usize> {
        self.population_frequencies
            .iter()
            .enumerate()
            .filter(|(_, &f)| f < k)
            .map(|(i, _)| i)
            .collect()
    }

    /// Is the whole table k-map anonymous?
    pub fn satisfies(&self, k: usize) -> bool {
        self.population_frequencies.iter().all(|&f| f >= k)
    }
}

/// Compute the k-map frequencies of `db` against the oracle.
pub fn kmap(
    db: &MicrodataDb,
    dict: &MetadataDictionary,
    oracle: &IdentityOracle,
) -> Result<KMapReport, RiskError> {
    let qi_names = dict.quasi_identifiers(&db.name)?;
    if qi_names != oracle.qi_names {
        return Err(RiskError::View(format!(
            "oracle quasi-identifiers {:?} do not match microdata {:?}",
            oracle.qi_names, qi_names
        )));
    }
    let qi_rows = db.project(&qi_names).map_err(RiskError::Model)?;
    let mut index = BlockingIndex::new(oracle);
    Ok(KMapReport {
        population_frequencies: qi_rows
            .iter_rows()
            .map(|r| {
                let r: Vec<Value> = r.into_iter().cloned().collect();
                index.candidates(&r).len()
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::prelude::*;
    use vadasa_datagen::fixtures::inflation_growth_fig1;

    #[test]
    fn kmap_equals_weights_on_figure1() {
        // the oracle is built to hold `weight` look-alikes per tuple, so
        // the true k-map frequency equals the paper's weight estimator
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 3, 1_000).unwrap();
        let report = kmap(&db, &dict, &oracle).unwrap();
        let weights = db.numeric_column("Weight").unwrap();
        for (f, w) in report.population_frequencies.iter().zip(weights.iter()) {
            assert_eq!(*f as f64, *w);
        }
        // Figure 1's smallest weight is 30 → 30-map holds, 31-map fails
        assert!(report.satisfies(30));
        assert!(!report.satisfies(31));
        assert_eq!(report.violations(31), vec![14]); // tuple 15
    }

    #[test]
    fn suppression_increases_population_frequencies() {
        let (db, dict) = inflation_growth_fig1();
        let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 3, 1_000).unwrap();
        let before = kmap(&db, &dict, &oracle).unwrap();

        let risk = ReIdentification;
        let anonymizer = LocalSuppression::default();
        let outcome = AnonymizationCycle::new(
            &risk,
            &anonymizer,
            CycleConfig {
                threshold: 0.02,
                ..CycleConfig::default()
            },
        )
        .run(&db, &dict)
        .unwrap();
        let after = kmap(&outcome.db, &dict, &oracle).unwrap();
        for (b, a) in before
            .population_frequencies
            .iter()
            .zip(after.population_frequencies.iter())
        {
            assert!(a >= b, "suppression must not shrink oracle blocks");
        }
        // the previously weakest tuples are now better covered
        assert!(after.violations(31).len() < before.violations(31).len() + 1);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let (db, dict) = inflation_growth_fig1();
        let bad = IdentityOracle {
            records: vec![],
            qi_names: vec!["other".into()],
        };
        assert!(kmap(&db, &dict, &bad).is_err());
    }
}
