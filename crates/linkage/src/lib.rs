//! # vadasa-linkage — the record-linkage attacker
//!
//! The attack model Vada-SA defends against (paper §2.2, Figure 2): an
//! adversary holding the identity oracle blocks it on a target tuple's
//! quasi-identifier values, matches within the block and guesses the
//! respondent's identity. This crate implements that attacker so the
//! effectiveness of anonymization can be validated empirically — the
//! candidate cluster grows and the success probability drops after local
//! suppression, which is the system's stated purpose.

#![warn(missing_docs)]

pub mod attack;
pub mod blocking;
pub mod kmap;

pub use attack::{attack, AttackReport, TupleAttack};
pub use blocking::BlockingIndex;
pub use kmap::{kmap, KMapReport};
