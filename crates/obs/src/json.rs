//! A minimal JSON encoder and parser — just enough for the JSON-lines
//! telemetry sinks and their round-trip tests. No external dependencies.
//!
//! Numbers are held as `f64`; integers up to 2^53 round-trip exactly,
//! which covers every counter and nanosecond duration this workspace
//! emits within a run.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escape a string into a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float the way JSON expects (integral values without `.0`,
/// non-finite values as `null` since JSON has no representation for them).
pub fn number_into(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.encode_into(&mut buf);
        f.write_str(&buf)
    }
}

impl Json {
    /// Serialize into `out`.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => number_into(out, *n),
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            message: "trailing input".into(),
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        at,
        message: message.into(),
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for telemetry names;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 character
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    if start == *pos {
        return Err(err(start, "expected value"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"type":"span","name":"engine.stratum","ns":12345,"fields":{"stratum":0,"ok":true,"note":"a\"b\n"},"arr":[1,2.5,null]}"#;
        let v = parse(src).unwrap();
        let re = parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
        assert_eq!(v.get("name").unwrap().as_str(), Some("engine.stratum"));
        assert_eq!(v.get("ns").unwrap().as_f64(), Some(12345.0));
        assert_eq!(
            v.get("fields").unwrap().get("note").unwrap().as_str(),
            Some("a\"b\n")
        );
    }

    #[test]
    fn integers_encode_without_decimal_point() {
        let mut s = String::new();
        Json::Num(42.0).encode_into(&mut s);
        assert_eq!(s, "42");
        let mut s = String::new();
        Json::Num(0.5).encode_into(&mut s);
        assert_eq!(s, "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = Json::Str("\u{0001}".into());
        assert_eq!(v.to_string(), "\"\\u0001\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
